//===- support/Json.h - Dependency-free JSON value/writer/parser *- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON layer for the telemetry pipeline: benches serialize
/// their metrics to `BENCH_<name>.json`, flattenc dumps RunStats and
/// pipeline reports, and tools/perf_compare reads the files back to
/// gate regressions. Deliberately tiny - insertion-ordered objects,
/// int64/double distinction preserved, strict parsing - and free of
/// third-party dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_JSON_H
#define SIMDFLAT_SUPPORT_JSON_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace simdflat {
namespace json {

/// A parse/IO failure with position information.
struct JsonError {
  std::string Message;
  /// Byte offset into the input (parse errors only; 0 for IO errors).
  size_t Offset = 0;

  std::string render() const;
};

/// One JSON value. Objects preserve insertion order so emitted files
/// diff cleanly across runs.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolV(B) {}
  Value(int64_t I) : K(Kind::Int), IntV(I) {}
  Value(int I) : K(Kind::Int), IntV(I) {}
  Value(double D) : K(Kind::Double), DoubleV(D) {}
  Value(std::string S) : K(Kind::String), StringV(std::move(S)) {}
  Value(const char *S) : K(Kind::String), StringV(S) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const;
  int64_t asInt() const;
  /// Numeric value as double (works for Int and Double kinds).
  double asDouble() const;
  const std::string &asString() const;

  /// \name Array access
  /// @{
  size_t size() const;
  const Value &at(size_t I) const;
  Value &push(Value V);
  /// @}

  /// \name Object access
  /// @{
  /// Sets (or overwrites) a member; returns a reference to the stored
  /// value so nested structures can be built in place.
  Value &set(const std::string &Key, Value V);
  /// Member lookup; nullptr when absent (or not an object).
  const Value *get(std::string_view Key) const;
  /// Members in insertion order (empty unless an object).
  const std::vector<std::pair<std::string, Value>> &members() const;
  /// @}

  /// Serializes with 2-space indentation and a trailing newline at the
  /// top level (\p Indent is the current depth; callers use 0).
  std::string dump(int Indent = 0) const;

  /// Strict parse of a complete JSON document (trailing junk rejected).
  static Expected<Value, JsonError> parse(std::string_view Text);

private:
  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  double DoubleV = 0.0;
  std::string StringV;
  std::vector<Value> ArrayV;
  std::vector<std::pair<std::string, Value>> ObjectV;
};

/// Escapes \p S for embedding in a JSON string literal (no quotes).
std::string escapeString(std::string_view S);

/// Writes \p V to \p Path (dump() form). Returns false on IO failure.
bool writeFile(const std::string &Path, const Value &V);

/// Reads and parses \p Path.
Expected<Value, JsonError> parseFile(const std::string &Path);

} // namespace json
} // namespace simdflat

#endif // SIMDFLAT_SUPPORT_JSON_H
