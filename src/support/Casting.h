//===- support/Casting.h - isa/cast/dyn_cast helpers -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style opt-in RTTI. A class hierarchy participates by giving each
/// concrete class a `static bool classof(const Base *)` predicate keyed on
/// a kind discriminator stored in the base.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_CASTING_H
#define SIMDFLAT_SUPPORT_CASTING_H

#include <cassert>

namespace simdflat {

/// Returns true if \p Val is an instance of \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const); asserts on kind mismatch.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast returning null on kind mismatch.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Downcast returning null on kind mismatch (const).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace simdflat

#endif // SIMDFLAT_SUPPORT_CASTING_H
