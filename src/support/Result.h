//===- support/Result.h - Expected<T, E> result carrier -------*- C++ -*-===//
//
// Part of simdflat, a reproduction of "Relaxing SIMD Control Flow
// Constraints using Loop Transformations" (v. Hanxleden & Kennedy,
// PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight Expected<T, E>: either a success value or a structured
/// error. Faults caused by *user input* (bad programs, out-of-bounds
/// subscripts, non-uniform control flow, runaway loops) travel through
/// this channel instead of aborting the process; reportFatalError and
/// assert stay reserved for genuine programmer invariants.
///
/// The error type must provide `std::string render() const` so that
/// `value()` can produce a useful fatal message when a caller demands a
/// success value it does not have (the escape hatch tests and benches
/// use when failure is impossible by construction).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_RESULT_H
#define SIMDFLAT_SUPPORT_RESULT_H

#include "support/Error.h"

#include <cassert>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace simdflat {

/// Either a T (success) or an E (failure). E must be distinct from T and
/// renderable. Both move-only and copyable payloads are supported.
template <typename T, typename E> class [[nodiscard]] Expected {
  static_assert(!std::is_same_v<std::decay_t<T>, std::decay_t<E>>,
                "Expected needs distinguishable value and error types");

public:
  Expected(T Value) : Store(std::in_place_index<0>, std::move(Value)) {}
  Expected(E Err) : Store(std::in_place_index<1>, std::move(Err)) {}

  bool ok() const { return Store.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// \name Success access (asserted; call ok() first)
  /// @{
  T &operator*() & {
    assert(ok() && "dereferencing a failed Expected");
    return std::get<0>(Store);
  }
  const T &operator*() const & {
    assert(ok() && "dereferencing a failed Expected");
    return std::get<0>(Store);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }
  /// @}

  /// The error; asserted to exist.
  const E &error() const {
    assert(!ok() && "error() on a successful Expected");
    return std::get<1>(Store);
  }

  /// Returns the success value, or reports a fatal error rendering the
  /// failure. Use only where failure indicates a broken invariant (e.g.
  /// a test running a program known to be well-formed).
  T &value() & {
    if (!ok())
      reportFatalError(std::get<1>(Store).render());
    return std::get<0>(Store);
  }
  const T &value() const & {
    if (!ok())
      reportFatalError(std::get<1>(Store).render());
    return std::get<0>(Store);
  }
  T value() && {
    if (!ok())
      reportFatalError(std::get<1>(Store).render());
    return std::move(std::get<0>(Store));
  }

private:
  std::variant<T, E> Store;
};

} // namespace simdflat

#endif // SIMDFLAT_SUPPORT_RESULT_H
