//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void simdflat::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "simdflat fatal error: %s\n", Message.c_str());
  std::abort();
}
