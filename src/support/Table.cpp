//===- support/Table.cpp --------------------------------------*- C++ -*-===//

#include "support/Table.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace simdflat;

void TextTable::setHeader(const std::vector<std::string> &Cells) {
  Header = Cells;
  Aligns.assign(Cells.size(), Align::Right);
  if (!Aligns.empty())
    Aligns[0] = Align::Left;
}

void TextTable::setAlign(size_t Col, Align A) {
  assert(Col < Aligns.size() && "column out of range");
  Aligns[Col] = A;
}

void TextTable::addRow(const std::vector<std::string> &Cells) {
  assert(Cells.size() <= Header.size() &&
         "row has more cells than the header");
  Rows.push_back({Cells, /*IsSeparator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*IsSeparator=*/true}); }

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const Row &R : Rows)
    for (size_t C = 0; C < R.Cells.size(); ++C)
      Widths[C] = std::max(Widths[C], R.Cells[C].size());

  auto RenderCells = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t C = 0; C < Header.size(); ++C) {
      if (C != 0)
        Line += "  ";
      std::string Cell = C < Cells.size() ? Cells[C] : "";
      Line += Aligns[C] == Align::Left ? padRight(Cell, Widths[C])
                                       : padLeft(Cell, Widths[C]);
    }
    // Trim trailing spaces so rendered tables are whitespace-clean.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  size_t Total = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    Total += Widths[C] + (C == 0 ? 0 : 2);
  std::string Sep = repeat("-", Total) + "\n";

  std::string Out = RenderCells(Header);
  Out += Sep;
  for (const Row &R : Rows)
    Out += R.IsSeparator ? Sep : RenderCells(R.Cells);
  return Out;
}
