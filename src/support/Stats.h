//===- support/Stats.h - Streaming summary statistics ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Welford-style streaming summary (count/min/max/mean/variance) used by
/// the profitability model (Sec. 6 of the paper: the expected benefit of
/// flattening is governed by the spread of inner trip counts) and by the
/// benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_STATS_H
#define SIMDFLAT_SUPPORT_STATS_H

#include <cstddef>

namespace simdflat {

/// Streaming min/max/mean/variance accumulator.
class Summary {
public:
  /// Adds one observation.
  void add(double X);

  size_t count() const { return N; }
  double min() const;
  double max() const;
  double mean() const;
  /// Population variance (0 for fewer than two observations).
  double variance() const;
  double stddev() const;
  double sum() const { return Total; }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Total = 0.0;
};

} // namespace simdflat

#endif // SIMDFLAT_SUPPORT_STATS_H
