//===- support/Random.cpp -------------------------------------*- C++ -*-===//

#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace simdflat;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

int64_t Rng::uniformInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  // Rejection sampling to avoid modulo bias.
  uint64_t Limit = UINT64_MAX - UINT64_MAX % Span;
  uint64_t Draw;
  do {
    Draw = next();
  } while (Draw >= Limit);
  return Lo + static_cast<int64_t>(Draw % Span);
}

double Rng::uniformReal() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double Lo, double Hi) {
  return Lo + (Hi - Lo) * uniformReal();
}

double Rng::normal() {
  if (HasSpareNormal) {
    HasSpareNormal = false;
    return SpareNormal;
  }
  double U1, U2;
  do {
    U1 = uniformReal();
  } while (U1 <= 0.0);
  U2 = uniformReal();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  SpareNormal = R * std::sin(Theta);
  HasSpareNormal = true;
  return R * std::cos(Theta);
}

bool Rng::chance(double P) { return uniformReal() < P; }
