//===- support/Table.h - Fixed-width text table writer ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text-table renderer used by the benchmark harnesses to print
/// paper-style tables (Table 1, Table 2, Figure 18/19 series).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_TABLE_H
#define SIMDFLAT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace simdflat {

/// Accumulates rows of cells and renders them with aligned columns.
///
/// Usage:
/// \code
///   TextTable T;
///   T.setHeader({"Gran", "Lu", "Lf", "Lu/Lf"});
///   T.addRow({"1024", "1512", "906", "1.669"});
///   std::string S = T.render();
/// \endcode
class TextTable {
public:
  enum class Align { Left, Right };

  /// Sets the header row. Columns default to right alignment except the
  /// first, which is left aligned.
  void setHeader(const std::vector<std::string> &Cells);

  /// Overrides the alignment of column \p Col.
  void setAlign(size_t Col, Align A);

  /// Appends a data row; rows may have fewer cells than the header
  /// (missing cells render empty, like the paper's sparse Table 1).
  void addRow(const std::vector<std::string> &Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table with a separator below the header.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::vector<std::string> Header;
  std::vector<Align> Aligns;
  std::vector<Row> Rows;
};

} // namespace simdflat

#endif // SIMDFLAT_SUPPORT_TABLE_H
