//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A splitmix64-based PRNG with convenience draws. All stochastic parts of
/// the reproduction (synthetic molecule, workload generators, property
/// tests) use this generator so results are bit-reproducible across
/// platforms, unlike std::mt19937 distributions.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_RANDOM_H
#define SIMDFLAT_SUPPORT_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace simdflat {

/// Deterministic splitmix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit draw.
  uint64_t next();

  /// Returns a uniform integer in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t uniformInt(int64_t Lo, int64_t Hi);

  /// Returns a uniform real in [0, 1).
  double uniformReal();

  /// Returns a uniform real in [Lo, Hi).
  double uniformReal(double Lo, double Hi);

  /// Returns a standard normal draw (Box-Muller, deterministic).
  double normal();

  /// Returns true with probability \p P.
  bool chance(double P);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (std::size_t I = Values.size(); I > 1; --I) {
      std::size_t J = static_cast<std::size_t>(
          uniformInt(0, static_cast<int64_t>(I) - 1));
      std::swap(Values[I - 1], Values[J]);
    }
  }

private:
  uint64_t State;
  bool HasSpareNormal = false;
  double SpareNormal = 0.0;
};

} // namespace simdflat

#endif // SIMDFLAT_SUPPORT_RANDOM_H
