//===- support/Format.h - printf-style string formatting -------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers: printf-style formatting into std::string, padding,
/// and joining. These back the pretty-printer and the table writer.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_FORMAT_H
#define SIMDFLAT_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace simdflat {

/// Formats like printf but returns a std::string.
std::string formatf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf variant of formatf.
std::string vformatf(const char *Fmt, va_list Args);

/// Pads \p S with spaces on the left to width \p Width (no-op if longer).
std::string padLeft(const std::string &S, size_t Width);

/// Pads \p S with spaces on the right to width \p Width (no-op if longer).
std::string padRight(const std::string &S, size_t Width);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Repeats \p S \p Count times.
std::string repeat(const std::string &S, size_t Count);

} // namespace simdflat

#endif // SIMDFLAT_SUPPORT_FORMAT_H
