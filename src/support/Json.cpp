//===- support/Json.cpp - Dependency-free JSON implementation --*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace simdflat;
using namespace simdflat::json;

std::string JsonError::render() const {
  return formatf("json: %s (at byte %zu)", Message.c_str(), Offset);
}

bool Value::asBool() const {
  assert(K == Kind::Bool && "asBool on a non-bool value");
  return BoolV;
}

int64_t Value::asInt() const {
  assert(K == Kind::Int && "asInt on a non-int value");
  return IntV;
}

double Value::asDouble() const {
  assert(isNumber() && "asDouble on a non-numeric value");
  return K == Kind::Int ? static_cast<double>(IntV) : DoubleV;
}

const std::string &Value::asString() const {
  assert(K == Kind::String && "asString on a non-string value");
  return StringV;
}

size_t Value::size() const {
  return K == Kind::Array ? ArrayV.size()
                          : K == Kind::Object ? ObjectV.size() : 0;
}

const Value &Value::at(size_t I) const {
  assert(K == Kind::Array && I < ArrayV.size() && "bad array index");
  return ArrayV[I];
}

Value &Value::push(Value V) {
  assert(K == Kind::Array && "push on a non-array value");
  ArrayV.push_back(std::move(V));
  return ArrayV.back();
}

Value &Value::set(const std::string &Key, Value V) {
  assert(K == Kind::Object && "set on a non-object value");
  for (auto &[K2, V2] : ObjectV) {
    if (K2 == Key) {
      V2 = std::move(V);
      return V2;
    }
  }
  ObjectV.emplace_back(Key, std::move(V));
  return ObjectV.back().second;
}

const Value *Value::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[K2, V2] : ObjectV)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

const std::vector<std::pair<std::string, Value>> &Value::members() const {
  static const std::vector<std::pair<std::string, Value>> Empty;
  return K == Kind::Object ? ObjectV : Empty;
}

std::string json::escapeString(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatf("\\u%04x", static_cast<unsigned>(
                                      static_cast<unsigned char>(C)));
      else
        Out += C;
    }
  }
  return Out;
}

namespace {

/// Shortest decimal form that round-trips a double; integral-valued
/// doubles keep a ".0" so the reader can tell them from ints.
std::string formatDouble(double D) {
  if (std::isnan(D))
    return "null"; // JSON has no NaN; benches never emit one on purpose.
  if (std::isinf(D))
    return D > 0 ? "1e308" : "-1e308";
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::string S = formatf("%.*g", Prec, D);
    if (std::stod(S) == D) {
      if (S.find_first_of(".eE") == std::string::npos)
        S += ".0";
      return S;
    }
  }
  return formatf("%.17g", D);
}

} // namespace

std::string Value::dump(int Indent) const {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  std::string PadIn(static_cast<size_t>(Indent + 1) * 2, ' ');
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return BoolV ? "true" : "false";
  case Kind::Int:
    return formatf("%lld", static_cast<long long>(IntV));
  case Kind::Double:
    return formatDouble(DoubleV);
  case Kind::String: {
    // Built via append to dodge a GCC 12 -O2 -Wrestrict false positive
    // (PR105651) on const char* + std::string&&.
    std::string Out = "\"";
    Out += escapeString(StringV);
    Out += '"';
    return Out;
  }
  case Kind::Array: {
    if (ArrayV.empty())
      return "[]";
    std::string Out = "[\n";
    for (size_t I = 0; I < ArrayV.size(); ++I) {
      Out += PadIn + ArrayV[I].dump(Indent + 1);
      Out += I + 1 < ArrayV.size() ? ",\n" : "\n";
    }
    return Out + Pad + "]";
  }
  case Kind::Object: {
    if (ObjectV.empty())
      return "{}";
    std::string Out = "{\n";
    for (size_t I = 0; I < ObjectV.size(); ++I) {
      Out += PadIn;
      Out += '"';
      Out += escapeString(ObjectV[I].first);
      Out += "\": ";
      Out += ObjectV[I].second.dump(Indent + 1);
      Out += I + 1 < ObjectV.size() ? ",\n" : "\n";
    }
    return Out + Pad + "}";
  }
  }
  return "null"; // unreachable
}

namespace {

/// Recursive-descent parser over a string_view. Strict: no comments, no
/// trailing commas, full-document consumption enforced by the caller.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value, JsonError> parseDocument() {
    Expected<Value, JsonError> V = parseValue();
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return V;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;

  JsonError fail(const std::string &Msg) { return JsonError{Msg, Pos}; }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) == W) {
      Pos += W.size();
      return true;
    }
    return false;
  }

  Expected<Value, JsonError> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    if (Depth > 128)
      return fail("nesting too deep");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      Expected<std::string, JsonError> S = parseString();
      if (!S)
        return S.error();
      return Value(std::move(*S));
    }
    if (consumeWord("true"))
      return Value(true);
    if (consumeWord("false"))
      return Value(false);
    if (consumeWord("null"))
      return Value();
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    return fail(formatf("unexpected character '%c'", C));
  }

  Expected<Value, JsonError> parseObject() {
    ++Pos; // '{'
    ++Depth;
    Value Out = Value::object();
    skipWs();
    if (consume('}')) {
      --Depth;
      return Out;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected string key in object");
      Expected<std::string, JsonError> Key = parseString();
      if (!Key)
        return Key.error();
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      if (Out.get(*Key))
        return fail("duplicate object key \"" + *Key + "\"");
      Expected<Value, JsonError> V = parseValue();
      if (!V)
        return V;
      Out.set(*Key, std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}')) {
        --Depth;
        return Out;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<Value, JsonError> parseArray() {
    ++Pos; // '['
    ++Depth;
    Value Out = Value::array();
    skipWs();
    if (consume(']')) {
      --Depth;
      return Out;
    }
    while (true) {
      Expected<Value, JsonError> V = parseValue();
      if (!V)
        return V;
      Out.push(std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']')) {
        --Depth;
        return Out;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<std::string, JsonError> parseString() {
    ++Pos; // '"'
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // produced by our writer; decode them as-is).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail(formatf("unknown escape '\\%c'", E));
      }
    }
  }

  Expected<Value, JsonError> parseNumber() {
    size_t Start = Pos;
    consume('-');
    size_t IntStart = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    // JSON forbids leading zeros ("01"); a lone "0" is fine.
    if (Pos - IntStart > 1 && Text[IntStart] == '0')
      return fail("leading zero in number");
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsDouble = true;
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsDouble = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Tok(Text.substr(Start, Pos - Start));
    if (Tok.empty() || Tok == "-")
      return fail("malformed number");
    try {
      if (!IsDouble) {
        size_t Used = 0;
        long long I = std::stoll(Tok, &Used);
        if (Used == Tok.size())
          return Value(static_cast<int64_t>(I));
        return fail("malformed integer");
      }
      size_t Used = 0;
      double D = std::stod(Tok, &Used);
      if (Used != Tok.size())
        return fail("malformed number");
      return Value(D);
    } catch (const std::out_of_range &) {
      // Integer overflow falls back to double (JSON numbers are not
      // bounded); double overflow is a parse error.
      if (!IsDouble) {
        try {
          return Value(std::stod(Tok));
        } catch (...) {
        }
      }
      return fail("number out of range");
    } catch (const std::invalid_argument &) {
      return fail("malformed number");
    }
  }
};

} // namespace

Expected<Value, JsonError> Value::parse(std::string_view Text) {
  return Parser(Text).parseDocument();
}

bool json::writeFile(const std::string &Path, const Value &V) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << V.dump() << "\n";
  return Out.good();
}

Expected<Value, JsonError> json::parseFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return JsonError{"cannot open '" + Path + "'", 0};
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Value::parse(Buf.str());
}
