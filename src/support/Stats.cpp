//===- support/Stats.cpp --------------------------------------*- C++ -*-===//

#include "support/Stats.h"

#include <cassert>
#include <cmath>

using namespace simdflat;

void Summary::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  ++N;
  Total += X;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double Summary::min() const {
  assert(N > 0 && "no observations");
  return Min;
}

double Summary::max() const {
  assert(N > 0 && "no observations");
  return Max;
}

double Summary::mean() const {
  assert(N > 0 && "no observations");
  return Mean;
}

double Summary::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N);
}

double Summary::stddev() const { return std::sqrt(variance()); }
