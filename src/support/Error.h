//===- support/Error.h - Fatal errors and unreachable markers --*- C++ -*-===//
//
// Part of simdflat, a reproduction of "Relaxing SIMD Control Flow
// Constraints using Loop Transformations" (v. Hanxleden & Kennedy,
// PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fatal-error reporting used throughout the library. Programmatic
/// errors (broken invariants) use assert/SIMDFLAT_UNREACHABLE; user-facing
/// recoverable errors are reported through module-specific diagnostics
/// (see frontend/Diagnostics.h).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SUPPORT_ERROR_H
#define SIMDFLAT_SUPPORT_ERROR_H

#include <string>

namespace simdflat {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace simdflat

/// Marks a point in the code that must never be reached. Aborts with a
/// message including the source location.
#define SIMDFLAT_UNREACHABLE(MSG)                                             \
  ::simdflat::reportFatalError(std::string("unreachable reached at ") +       \
                               __FILE__ + ":" + std::to_string(__LINE__) +    \
                               ": " + (MSG))

#endif // SIMDFLAT_SUPPORT_ERROR_H
