//===- native/FlattenedLoop.h - Flattened loops for modern CPUs *- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's transformation packaged as a reusable C++ primitive for
/// today's SIMD hardware (vector units instead of lane arrays; the
/// control-flow economics are the same). Given an irregular nest
///
/// \code
///   for (o = 0; o < N; ++o)
///     for (i = 0; i < trips(o); ++i)
///       body(o, i);
/// \endcode
///
/// * nestedForEach      - the plain nest (scalar reference);
/// * flattenedScalar    - single fused loop with the paper's two extra
///                        flag operations per iteration (for measuring
///                        the Sec. 6 "negligible overhead" claim);
/// * paddedForEach<W>   - the "SIMDized" schedule: W-wide lane groups
///                        padded to each group's max trip count, idle
///                        lanes masked (Eq. 2: sum of maxima);
/// * flattenedForEach<W> - the flattened schedule: each lane advances to
///                        its next (o, i) independently (Eq. 1: max of
///                        sums), full lanes every step.
///
/// All four invoke body on exactly the same (o, i) set; only the order
/// and the number of masked steps differ. LaneStats reports the step
/// and lane-slot counts so harnesses can show utilization.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_NATIVE_FLATTENEDLOOP_H
#define SIMDFLAT_NATIVE_FLATTENEDLOOP_H

#include <algorithm>
#include <cstdint>

namespace simdflat {
namespace native {

/// Step/utilization accounting for the lane-blocked drivers.
struct LaneStats {
  /// Lockstep steps executed (each sweeps W lane slots).
  int64_t Steps = 0;
  /// Lane slots that invoked the body.
  int64_t ActiveLaneSlots = 0;
  /// Steps * W.
  int64_t TotalLaneSlots = 0;

  /// 0.0 for a run with no steps: "perfect utilization" for doing
  /// nothing would skew aggregation over many runs.
  double utilization() const {
    return TotalLaneSlots == 0 ? 0.0
                               : static_cast<double>(ActiveLaneSlots) /
                                     static_cast<double>(TotalLaneSlots);
  }
};

/// The plain nested reference loop.
template <typename TripsFn, typename BodyFn>
void nestedForEach(int64_t N, TripsFn &&Trips, BodyFn &&Body) {
  for (int64_t O = 0; O < N; ++O) {
    int64_t T = Trips(O);
    for (int64_t I = 0; I < T; ++I)
      Body(O, I);
  }
}

/// Fused single loop; per iteration it pays exactly the paper's
/// overhead budget: one compare against the row's trip count and one
/// conditional row advance (Sec. 6: "to manipulate two flags and to
/// perform two conditional jumps").
template <typename TripsFn, typename BodyFn>
void flattenedScalar(int64_t N, TripsFn &&Trips, BodyFn &&Body) {
  int64_t O = 0, I = 0;
  // Skip empty leading rows. A negative trip count is an empty row too
  // (the nested reference's `I < T` test never passes), so the guard is
  // <= 0, not == 0: testing only == 0 would let a negative row reach
  // Body(O, 0) once, breaking the "same (o, i) multiset" invariant.
  while (O < N && Trips(O) <= 0)
    ++O;
  while (O < N) {
    Body(O, I);
    ++I;
    if (I >= Trips(O)) {
      I = 0;
      do {
        ++O;
      } while (O < N && Trips(O) <= 0);
    }
  }
}

/// The unflattened ("SIMDized") schedule: rows grouped W at a time,
/// every group padded to its longest row; short rows idle under a mask.
///
/// \p PadToMachineWidth controls how the final partial group (when
/// N % W != 0) is charged. The default true pads it to the full machine
/// width W - that is what real lane hardware does and what the paper's
/// L2u sweep measures (unoccupied lanes still burn their slots). Pass
/// false to charge only the occupied lanes, i.e. to account a machine
/// that can disable the unused tail outright.
template <int W = 8, typename TripsFn, typename BodyFn>
LaneStats paddedForEach(int64_t N, TripsFn &&Trips, BodyFn &&Body,
                        bool PadToMachineWidth = true) {
  static_assert(W >= 1, "need at least one lane");
  LaneStats Stats;
  for (int64_t Base = 0; Base < N; Base += W) {
    int64_t Lanes = std::min<int64_t>(W, N - Base);
    int64_t RowMax = 0;
    for (int64_t L = 0; L < Lanes; ++L)
      RowMax = std::max(RowMax, Trips(Base + L));
    for (int64_t I = 0; I < RowMax; ++I) {
      Stats.Steps += 1;
      Stats.TotalLaneSlots += PadToMachineWidth ? W : Lanes;
      for (int64_t L = 0; L < Lanes; ++L) {
        if (I < Trips(Base + L)) {
          Body(Base + L, I);
          Stats.ActiveLaneSlots += 1;
        }
      }
    }
  }
  return Stats;
}

/// The flattened schedule: lane l owns rows l, l+W, l+2W, ... and holds
/// an (o, i) cursor it advances independently; every lockstep step runs
/// the body on every lane that still has work (Eq. 1).
template <int W = 8, typename TripsFn, typename BodyFn>
LaneStats flattenedForEach(int64_t N, TripsFn &&Trips, BodyFn &&Body) {
  static_assert(W >= 1, "need at least one lane");
  LaneStats Stats;
  int64_t O[W], I[W];
  bool Live[W];
  int64_t LiveCount = 0;
  for (int64_t L = 0; L < W; ++L) {
    O[L] = L;
    I[L] = 0;
    // Skip empty rows up front (<= 0: negative trips are empty rows,
    // matching nestedForEach - see flattenedScalar).
    while (O[L] < N && Trips(O[L]) <= 0)
      O[L] += W;
    Live[L] = O[L] < N;
    LiveCount += Live[L];
  }
  while (LiveCount > 0) {
    Stats.Steps += 1;
    Stats.TotalLaneSlots += W;
    for (int64_t L = 0; L < W; ++L) {
      if (!Live[L])
        continue;
      Body(O[L], I[L]);
      Stats.ActiveLaneSlots += 1;
      if (++I[L] >= Trips(O[L])) {
        I[L] = 0;
        do {
          O[L] += W;
        } while (O[L] < N && Trips(O[L]) <= 0);
        if (O[L] >= N) {
          Live[L] = false;
          --LiveCount;
        }
      }
    }
  }
  return Stats;
}

} // namespace native
} // namespace simdflat

#endif // SIMDFLAT_NATIVE_FLATTENEDLOOP_H
