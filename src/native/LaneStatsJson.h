//===- native/LaneStatsJson.h - LaneStats <-> JSON -------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON serialization for the native drivers' LaneStats (header-only,
/// like the drivers themselves), mirroring interp/StatsJson.h.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_NATIVE_LANESTATSJSON_H
#define SIMDFLAT_NATIVE_LANESTATSJSON_H

#include "native/FlattenedLoop.h"
#include "support/Json.h"

namespace simdflat {
namespace native {

inline json::Value toJson(const LaneStats &S) {
  json::Value V = json::Value::object();
  V.set("steps", S.Steps);
  V.set("active_lane_slots", S.ActiveLaneSlots);
  V.set("total_lane_slots", S.TotalLaneSlots);
  V.set("utilization", S.utilization());
  return V;
}

inline Expected<LaneStats, json::JsonError>
laneStatsFromJson(const json::Value &V) {
  if (!V.isObject())
    return json::JsonError{"LaneStats must be a JSON object", 0};
  LaneStats S;
  const struct {
    const char *Key;
    int64_t &Out;
  } Fields[] = {{"steps", S.Steps},
                {"active_lane_slots", S.ActiveLaneSlots},
                {"total_lane_slots", S.TotalLaneSlots}};
  for (const auto &F : Fields) {
    const json::Value *M = V.get(F.Key);
    if (!M)
      continue;
    if (!M->isInt())
      return json::JsonError{
          std::string("expected integer for '") + F.Key + "'", 0};
    F.Out = M->asInt();
  }
  return S;
}

} // namespace native
} // namespace simdflat

#endif // SIMDFLAT_NATIVE_LANESTATSJSON_H
