//===- transform/GuardIntro.h - Guard flags (Fig. 9) -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Since we do not know whether the evaluation of test_l has any side
/// effects, we introduce flags t_l to store the results of evaluating
/// the conditions" (Sec. 4, Fig. 9). Rewrites each WHILE loop
///
/// \code
///   WHILE (test) { BODY }
/// \endcode
///
/// into
///
/// \code
///   t = test
///   WHILE (t) { BODY ; t = test }
/// \endcode
///
/// so the guard value is a plain flag and the test expression is
/// evaluated exactly as often, and in the same order, as before - the
/// invariant the flattener then preserves.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_GUARDINTRO_H
#define SIMDFLAT_TRANSFORM_GUARDINTRO_H

#include "ir/Program.h"

namespace simdflat {
namespace transform {

/// Introduces guard flags for every WHILE loop in \p P (innermost
/// first). Returns the number of loops rewritten. Run normalizeLoops
/// first to cover DO and REPEAT loops.
int introduceGuards(ir::Program &P);

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_GUARDINTRO_H
