//===- transform/Normalize.cpp --------------------------------*- C++ -*-===//

#include "transform/Normalize.h"

#include "analysis/NormalForm.h"
#include "ir/Builder.h"
#include "ir/Walk.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::transform;
using namespace simdflat::ir;

namespace {

class Normalizer {
public:
  Normalizer(Program &P, const NormalizeOptions &Opts) : P(P), B(P),
                                                         Opts(Opts) {}

  int Count = 0;
  int Peeled = 0;

  void normalizeBody(Body &Stmts) {
    Body Out;
    for (StmtPtr &SP : Stmts) {
      Stmt &S = *SP;
      switch (S.kind()) {
      case Stmt::Kind::Do: {
        auto *D = cast<DoStmt>(&S);
        normalizeBody(D->body());
        if (D->isParallel() && Opts.SkipParallel) {
          Out.push_back(std::move(SP));
          break;
        }
        auto NF = analysis::normalFormOf(*D, P);
        if (!NF) { // e.g. variable step: leave as-is
          Out.push_back(std::move(SP));
          break;
        }
        ++Count;
        for (StmtPtr &I : NF->Init)
          Out.push_back(std::move(I));
        Body WB = std::move(NF->BodyStmts);
        for (StmtPtr &I : NF->Increment)
          WB.push_back(std::move(I));
        Out.push_back(B.whileLoop(std::move(NF->Test), std::move(WB)));
        break;
      }
      case Stmt::Kind::Repeat: {
        auto *R = cast<RepeatStmt>(&S);
        normalizeBody(R->body());
        ++Count;
        ++Peeled;
        // Peel the first execution: B ; WHILE (.NOT. c) { B }.
        Body First = cloneBody(R->body());
        for (StmtPtr &I : First)
          Out.push_back(std::move(I));
        Out.push_back(B.whileLoop(
            B.lnot(cloneExpr(R->untilCond())), cloneBody(R->body())));
        break;
      }
      case Stmt::Kind::While:
        normalizeBody(cast<WhileStmt>(&S)->body());
        Out.push_back(std::move(SP));
        break;
      case Stmt::Kind::If:
        normalizeBody(cast<IfStmt>(&S)->thenBody());
        normalizeBody(cast<IfStmt>(&S)->elseBody());
        Out.push_back(std::move(SP));
        break;
      case Stmt::Kind::Where:
        normalizeBody(cast<WhereStmt>(&S)->thenBody());
        normalizeBody(cast<WhereStmt>(&S)->elseBody());
        Out.push_back(std::move(SP));
        break;
      case Stmt::Kind::Forall:
        normalizeBody(cast<ForallStmt>(&S)->body());
        Out.push_back(std::move(SP));
        break;
      default:
        Out.push_back(std::move(SP));
        break;
      }
    }
    Stmts = std::move(Out);
  }

private:
  Program &P;
  Builder B;
  const NormalizeOptions &Opts;
};

} // namespace

int transform::normalizeLoops(Program &P, NormalizeOptions Opts,
                              int *PeeledOut) {
  Normalizer N(P, Opts);
  N.normalizeBody(P.body());
  if (PeeledOut)
    *PeeledOut = N.Peeled;
  return N.Count;
}
