//===- transform/Simplify.h - Algebraic cleanup ----------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding and identity elimination over the IR. The
/// SIMDization rewrites generate index arithmetic like
/// `1 + (LANEINDEX() - 1)` and `1 + ((blk - 1) * NUMLANES() +
/// LANEINDEX() - 1)`; this pass folds the literal fringe so the emitted
/// programs read like the paper's figures (and cost fewer vector
/// instructions on the simulated machine). Rules only ever drop
/// *literal* subtrees, so calls and other effects are preserved.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_SIMPLIFY_H
#define SIMDFLAT_TRANSFORM_SIMPLIFY_H

#include "ir/Program.h"

namespace simdflat {
namespace transform {

/// Simplifies one expression tree (consuming it). Applied bottom-up to
/// a fixpoint.
ir::ExprPtr simplifyExpr(ir::ExprPtr E);

/// Simplifies every expression in \p P and folds constant-condition
/// IF/WHERE statements. Returns the number of rewrites applied.
int simplifyProgram(ir::Program &P);

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_SIMPLIFY_H
