//===- transform/Flatten.cpp ----------------------------------*- C++ -*-===//

#include "transform/Flatten.h"

#include "analysis/NormalForm.h"
#include "analysis/Safety.h"
#include "analysis/SideEffects.h"
#include "ir/Builder.h"
#include "ir/Walk.h"
#include "support/Error.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::transform;
using namespace simdflat::analysis;
using namespace simdflat::ir;

const char *transform::flattenLevelName(FlattenLevel L) {
  switch (L) {
  case FlattenLevel::General:
    return "general";
  case FlattenLevel::Optimized:
    return "optimized";
  case FlattenLevel::DoneTest:
    return "done-test";
  }
  SIMDFLAT_UNREACHABLE("bad FlattenLevel");
}

namespace {

/// True if any statement in \p B is a loop or unstructured control.
bool containsLoopOrGoto(const Body &B) {
  bool Found = false;
  forEachStmt(B, [&](const Stmt &S) {
    if (isLoopStmt(S) || S.kind() == Stmt::Kind::Label ||
        S.kind() == Stmt::Kind::Goto)
      Found = true;
  });
  return Found;
}

/// True if any expression in \p B subscripts an array (used to decide
/// whether re-initialization must be guarded against a finished outer
/// induction reading out of bounds).
bool containsArrayRef(const Body &B) {
  bool Found = false;
  forEachStmt(B, [&](const Stmt &S) {
    forEachExprInStmt(S, [&](const Expr &E) {
      if (isa<ArrayRef>(&E))
        Found = true;
    });
  });
  return Found;
}

/// The [Pre..., inner, Post...] decomposition of an outer loop body.
struct NestShape {
  size_t InnerIdx = 0;
  const Stmt *Inner = nullptr;
};

/// Matches the outer body shape: exactly one loop statement at the top
/// level, no loops hidden inside Pre/Post, no GOTOs anywhere.
std::optional<NestShape> matchShape(const Body &OuterBody,
                                    std::string &Reason) {
  NestShape Shape;
  size_t LoopCount = 0;
  for (size_t I = 0; I < OuterBody.size(); ++I) {
    if (isLoopStmt(*OuterBody[I])) {
      ++LoopCount;
      Shape.InnerIdx = I;
      Shape.Inner = OuterBody[I].get();
    }
  }
  if (LoopCount == 0) {
    Reason = "the loop contains no inner loop to flatten";
    return std::nullopt;
  }
  if (LoopCount > 1) {
    Reason = "several inner loops on the same nesting level (the paper "
             "requires loops fully contained in each other)";
    return std::nullopt;
  }
  for (size_t I = 0; I < OuterBody.size(); ++I) {
    if (I == Shape.InnerIdx)
      continue;
    Body One;
    One.push_back(cloneStmt(*OuterBody[I]));
    if (containsLoopOrGoto(One)) {
      Reason = "a loop or GOTO is nested inside the surrounding "
               "straight-line code";
      return std::nullopt;
    }
  }
  return Shape;
}

/// Control phases of the outer loop, possibly rewritten for a
/// lane-distributed induction.
struct OuterControl {
  Body Prelude; ///< one-time statements before init (chunk computation)
  Body Init;
  ExprPtr Test;
  Body Increment;
  std::string IndexVar;
};

class Flattener {
public:
  Flattener(Program &P, const FlattenOptions &Opts) : P(P), B(P),
                                                      Opts(Opts) {}

  FlattenResult run(Body &Parent, size_t OuterIdx, bool RequireParallel) {
    FlattenResult R;
    Stmt &Outer = *Parent[OuterIdx];
    if (!isLoopStmt(Outer)) {
      R.Reason = "statement is not a loop";
      return R;
    }
    if (Outer.kind() == Stmt::Kind::Repeat) {
      R.Reason = "post-test outer loops are not supported";
      return R;
    }
    if (RequireParallel) {
      const auto *D = dyn_cast<DoStmt>(&Outer);
      if (!D || !D->isParallel()) {
        R.Reason = "outer loop is not marked parallel (DOALL)";
        return R;
      }
    }
    if (Opts.CheckSafety) {
      if (const auto *D = dyn_cast<DoStmt>(&Outer)) {
        if (D->isParallel()) {
          SafetyResult SR = checkParallelizable(*D, P);
          if (!SR.Parallelizable) {
            R.Reason = "outer loop is not parallelizable: " + SR.Reason;
            return R;
          }
        }
      }
    }

    const Body &OuterBody = Outer.kind() == Stmt::Kind::Do
                                ? cast<DoStmt>(&Outer)->body()
                                : cast<WhileStmt>(&Outer)->body();
    std::optional<NestShape> Shape = matchShape(OuterBody, R.Reason);
    if (!Shape)
      return R;

    std::optional<LoopNormalForm> InnerNF = normalFormOf(*Shape->Inner, P);
    if (!InnerNF) {
      R.Reason = "inner loop has no normal form (non-literal step?)";
      return R;
    }

    // Pre / Post regions around the inner loop.
    Body Pre, Post;
    for (size_t I = 0; I < Shape->InnerIdx; ++I)
      Pre.push_back(cloneStmt(*OuterBody[I]));
    for (size_t I = Shape->InnerIdx + 1; I < OuterBody.size(); ++I)
      Post.push_back(cloneStmt(*OuterBody[I]));

    OuterControl OC;
    if (!buildOuterControl(Outer, OC, R.Reason))
      return R;

    // init2 of the paper = Pre followed by the inner loop's own init.
    Body Init2 = std::move(Pre);
    for (const StmtPtr &S : InnerNF->Init)
      Init2.push_back(cloneStmt(*S));

    // Condition inventory for level selection (Sec. 4).
    bool Test1Pure = !exprHasSideEffects(*OC.Test, P);
    bool Init2Pure = !bodyCallsImpure(Init2, P);
    bool Test2Pure = !exprHasSideEffects(*InnerNF->Test, P);
    bool ControlPure = Test1Pure && Init2Pure && Test2Pure;
    bool MinOneTrip = InnerNF->ProvablyMinOneTrip ||
                      Opts.AssumeInnerMinOneTrip || InnerNF->PostTest;
    bool HasDone = InnerNF->Done != nullptr;

    FlattenLevel Level;
    if (Opts.Force) {
      Level = *Opts.Force;
      std::string Why;
      if (!levelValid(Level, *InnerNF, ControlPure, MinOneTrip, HasDone,
                      Why)) {
        R.Reason = Why;
        return R;
      }
    } else if (levelValid(FlattenLevel::DoneTest, *InnerNF, ControlPure,
                          MinOneTrip, HasDone, R.Reason)) {
      Level = FlattenLevel::DoneTest;
    } else if (levelValid(FlattenLevel::Optimized, *InnerNF, ControlPure,
                          MinOneTrip, HasDone, R.Reason)) {
      Level = FlattenLevel::Optimized;
    } else if (levelValid(FlattenLevel::General, *InnerNF, ControlPure,
                          MinOneTrip, HasDone, R.Reason)) {
      Level = FlattenLevel::General;
    } else {
      return R; // Reason already set (impure post-test inner).
    }
    R.Reason.clear();

    Body Out = emit(Level, OC, Init2, Post, *InnerNF);

    // Splice the flattened sequence in place of the outer loop.
    Parent.erase(Parent.begin() + static_cast<long>(OuterIdx));
    for (size_t I = 0; I < Out.size(); ++I)
      Parent.insert(Parent.begin() + static_cast<long>(OuterIdx + I),
                    std::move(Out[I]));

    R.Changed = true;
    R.Applied = Level;
    R.OuterIndexVar = OC.IndexVar;
    return R;
  }

private:
  Program &P;
  Builder B;
  const FlattenOptions &Opts;

  static bool levelValid(FlattenLevel L, const LoopNormalForm &InnerNF,
                         bool ControlPure, bool MinOneTrip, bool HasDone,
                         std::string &Why) {
    switch (L) {
    case FlattenLevel::General:
      if (InnerNF.PostTest) {
        Why = "a post-test inner loop with impure control cannot be "
              "flattened conservatively (its first guard evaluation "
              "would move before the body)";
        return false;
      }
      return true;
    case FlattenLevel::Optimized:
      if (!ControlPure) {
        Why = "Fig. 11 requires side-effect-free loop control "
              "(Sec. 4 condition 1)";
        return false;
      }
      if (!MinOneTrip) {
        Why = "Fig. 11 requires at least one inner iteration per outer "
              "iteration (Sec. 4 condition 2); pass "
              "AssumeInnerMinOneTrip if the workload guarantees it";
        return false;
      }
      return true;
    case FlattenLevel::DoneTest:
      if (!ControlPure || !MinOneTrip) {
        Why = "Fig. 12 requires the Fig. 11 conditions";
        return false;
      }
      if (!HasDone) {
        Why = "Fig. 12 requires a last-iteration test (unit-step counted "
              "inner loop; Sec. 4 condition 3)";
        return false;
      }
      return true;
    }
    SIMDFLAT_UNREACHABLE("bad FlattenLevel");
  }

  /// Derives init1/test1/increment1, rewriting for a distributed outer
  /// induction when requested.
  bool buildOuterControl(const Stmt &Outer, OuterControl &OC,
                         std::string &Reason) {
    if (const auto *W = dyn_cast<WhileStmt>(&Outer)) {
      if (Opts.DistributeOuter) {
        Reason = "only counted (DO) outer loops can be distributed "
                 "across lanes";
        return false;
      }
      OC.Test = cloneExpr(W->cond());
      return true;
    }
    const auto *D = cast<DoStmt>(&Outer);
    OC.IndexVar = D->indexVar();
    int64_t Step = 1;
    if (D->step()) {
      const auto *Lit = dyn_cast<IntLit>(D->step());
      if (!Lit || Lit->value() == 0) {
        Reason = "outer loop step must be a non-zero literal";
        return false;
      }
      Step = Lit->value();
    }
    const std::string &IV = OC.IndexVar;
    if (!Opts.DistributeOuter) {
      OC.Init.push_back(B.set(IV, cloneExpr(D->lo())));
      OC.Test = Step > 0 ? B.le(B.var(IV), cloneExpr(D->hi()))
                         : B.ge(B.var(IV), cloneExpr(D->hi()));
      OC.Increment.push_back(
          B.set(IV, B.add(B.var(IV), B.lit(Step))));
      return true;
    }
    if (Step != 1) {
      Reason = "a distributed outer loop must have unit step";
      return false;
    }
    if (*Opts.DistributeOuter == machine::Layout::Cyclic) {
      // Lane p handles lo+p-1, lo+p-1+P, ... ("cut-and-stack").
      OC.Init.push_back(B.set(
          IV, B.add(cloneExpr(D->lo()), B.sub(B.laneIndex(), B.lit(1)))));
      OC.Test = B.le(B.var(IV), cloneExpr(D->hi()));
      OC.Increment.push_back(B.set(IV, B.add(B.var(IV), B.numLanes())));
      return true;
    }
    // Block: lane p handles a contiguous chunk with a per-lane bound.
    // addFreshVar returns a reference into the program's declaration
    // vector; a later addFreshVar may reallocate it, so configure each
    // declaration while its reference is still fresh and keep only the
    // name.
    std::string Chunk, MyHi;
    {
      VarDecl &CD = P.addFreshVar(IV + "chunk", ScalarKind::Int);
      CD.Distribution = Dist::Control;
      Chunk = CD.Name;
    }
    {
      VarDecl &HD = P.addFreshVar(IV + "hi", ScalarKind::Int);
      HD.Distribution = Dist::Control;
      MyHi = HD.Name;
    }
    // chunk = (hi - lo + NUMLANES()) / NUMLANES()   (= ceil(count / P))
    OC.Prelude.push_back(B.set(
        Chunk,
        B.div(B.add(B.sub(cloneExpr(D->hi()), cloneExpr(D->lo())),
                    B.numLanes()),
              B.numLanes())));
    OC.Init.push_back(B.set(
        IV, B.add(cloneExpr(D->lo()),
                  B.mul(B.sub(B.laneIndex(), B.lit(1)),
                        B.var(Chunk)))));
    OC.Init.push_back(B.set(
        MyHi,
        B.min(cloneExpr(D->hi()),
              B.sub(B.add(B.var(IV), B.var(Chunk)), B.lit(1)))));
    OC.Test = B.le(B.var(IV), B.var(MyHi));
    OC.Increment.push_back(B.set(IV, B.add(B.var(IV), B.lit(1))));
    return true;
  }

  /// Assembles the flattened statement sequence.
  Body emit(FlattenLevel Level, OuterControl &OC, const Body &Init2,
            const Body &Post, const LoopNormalForm &InnerNF) {
    switch (Level) {
    case FlattenLevel::General:
      return emitGeneral(OC, Init2, Post, InnerNF);
    case FlattenLevel::Optimized:
    case FlattenLevel::DoneTest:
      return emitOptimized(Level, OC, Init2, Post, InnerNF);
    }
    SIMDFLAT_UNREACHABLE("bad FlattenLevel");
  }

  /// advance := Post; increment1; [IF test1] { init2 } - the [IF] guard
  /// protects array subscripts in init2 from a finished induction.
  Body makeAdvance(const OuterControl &OC, const Body &Init2,
                   const Body &Post, bool GuardReinit) {
    Body Advance = cloneBody(Post);
    for (const StmtPtr &S : OC.Increment)
      Advance.push_back(cloneStmt(*S));
    if (GuardReinit && !Init2.empty()) {
      Advance.push_back(B.ifStmt(cloneExpr(*OC.Test), cloneBody(Init2)));
    } else {
      for (const StmtPtr &S : Init2)
        Advance.push_back(cloneStmt(*S));
    }
    return Advance;
  }

  Body emitOptimized(FlattenLevel Level, OuterControl &OC,
                     const Body &Init2, const Body &Post,
                     const LoopNormalForm &InnerNF) {
    bool GuardReinit = containsArrayRef(Init2);
    Body Out = std::move(OC.Prelude);
    for (StmtPtr &S : OC.Init)
      Out.push_back(std::move(S));
    // The initial init2 needs the same guard as the re-init: with a
    // distributed induction a lane may own no iterations at all and its
    // initial index is already past the bound, so an init2 that touches
    // arrays would read out of range.
    if (GuardReinit && !Init2.empty())
      Out.push_back(B.ifStmt(cloneExpr(*OC.Test), cloneBody(Init2)));
    else
      for (const StmtPtr &S : Init2)
        Out.push_back(cloneStmt(*S));

    Body LoopBody = cloneBody(InnerNF.BodyStmts);
    if (Level == FlattenLevel::DoneTest) {
      // IF (done2) { advance } ELSE { increment2 }
      assert(InnerNF.Done && "DoneTest without a done expression");
      LoopBody.push_back(B.ifStmt(cloneExpr(*InnerNF.Done),
                                  makeAdvance(OC, Init2, Post, GuardReinit),
                                  cloneBody(InnerNF.Increment)));
    } else {
      // increment2; IF (.NOT. test2) { advance }
      for (const StmtPtr &S : InnerNF.Increment)
        LoopBody.push_back(cloneStmt(*S));
      LoopBody.push_back(
          B.ifStmt(B.lnot(cloneExpr(*InnerNF.Test)),
                   makeAdvance(OC, Init2, Post, GuardReinit)));
    }
    Out.push_back(B.whileLoop(std::move(OC.Test), std::move(LoopBody)));
    return Out;
  }

  Body emitGeneral(OuterControl &OC, const Body &Init2, const Body &Post,
                   const LoopNormalForm &InnerNF) {
    // Same reallocation hazard as in the block-layout path above: the
    // second addFreshVar may invalidate the first reference, so take
    // the names, not the VarDecl references.
    const std::string T1 = P.addFreshVar("t1", ScalarKind::Bool).Name;
    const std::string T2 = P.addFreshVar("t2", ScalarKind::Bool).Name;

    Body Out = std::move(OC.Prelude);
    for (StmtPtr &S : OC.Init)
      Out.push_back(std::move(S));
    // t1 = test1 ; IF (t1) init2
    Out.push_back(B.set(T1, cloneExpr(*OC.Test)));
    if (!Init2.empty())
      Out.push_back(B.ifStmt(B.var(T1), cloneBody(Init2)));

    // Catch-up: advance outer control until useful work or exhaustion.
    Body CatchUp = cloneBody(Post);
    for (const StmtPtr &S : OC.Increment)
      CatchUp.push_back(cloneStmt(*S));
    CatchUp.push_back(B.set(T1, cloneExpr(*OC.Test)));
    {
      Body Reinit = cloneBody(Init2);
      Reinit.push_back(B.set(T2, cloneExpr(*InnerNF.Test)));
      CatchUp.push_back(B.ifStmt(B.var(T1), std::move(Reinit)));
    }

    Body WorkStmts = cloneBody(InnerNF.BodyStmts);
    for (const StmtPtr &S : InnerNF.Increment)
      WorkStmts.push_back(cloneStmt(*S));

    Body MainBody;
    MainBody.push_back(B.set(T2, cloneExpr(*InnerNF.Test)));
    MainBody.push_back(B.whileLoop(
        B.land(B.var(T1), B.lnot(B.var(T2))),
        std::move(CatchUp)));
    MainBody.push_back(B.ifStmt(B.var(T1), std::move(WorkStmts)));

    Out.push_back(B.whileLoop(B.var(T1), std::move(MainBody)));
    return Out;
  }
};

/// Recursively looks for the first DOALL loop whose body matches the
/// flattenable shape. Returns the containing body and index.
bool findParallelCandidate(Body &B, Body *&Parent, size_t &Idx) {
  for (size_t I = 0; I < B.size(); ++I) {
    Stmt &S = *B[I];
    if (const auto *D = dyn_cast<DoStmt>(&S); D && D->isParallel()) {
      Parent = &B;
      Idx = I;
      return true;
    }
    switch (S.kind()) {
    case Stmt::Kind::Do:
      if (findParallelCandidate(cast<DoStmt>(&S)->body(), Parent, Idx))
        return true;
      break;
    case Stmt::Kind::While:
      if (findParallelCandidate(cast<WhileStmt>(&S)->body(), Parent, Idx))
        return true;
      break;
    case Stmt::Kind::Repeat:
      if (findParallelCandidate(cast<RepeatStmt>(&S)->body(), Parent, Idx))
        return true;
      break;
    case Stmt::Kind::If:
      if (findParallelCandidate(cast<IfStmt>(&S)->thenBody(), Parent,
                                Idx) ||
          findParallelCandidate(cast<IfStmt>(&S)->elseBody(), Parent, Idx))
        return true;
      break;
    default:
      break;
    }
  }
  return false;
}

/// Flattens inner [Pre, loop, Post] pairs inside \p LoopBody,
/// innermost-first, so a deep nest collapses bottom-up. Returns the
/// number of pairs flattened.
int flattenInnerPairs(Program &P, Body &LoopBody,
                      const FlattenOptions &Opts) {
  // Find the unique inner loop; recurse into it first.
  for (size_t I = 0; I < LoopBody.size(); ++I) {
    Stmt &S = *LoopBody[I];
    if (!isLoopStmt(S))
      continue;
    Body *InnerBody = nullptr;
    if (auto *D = dyn_cast<DoStmt>(&S))
      InnerBody = &D->body();
    else if (auto *W = dyn_cast<WhileStmt>(&S))
      InnerBody = &W->body();
    else if (auto *R = dyn_cast<RepeatStmt>(&S))
      InnerBody = &R->body();
    int N = InnerBody ? flattenInnerPairs(P, *InnerBody, Opts) : 0;
    // Now try to flatten (this loop, its inner loop) as a pair.
    bool HasInnerLoop = false;
    for (const StmtPtr &C : *InnerBody)
      if (isLoopStmt(*C))
        HasInnerLoop = true;
    if (!HasInnerLoop)
      return N;
    FlattenOptions Inner = Opts;
    Inner.DistributeOuter.reset(); // only the outermost is distributed
    Inner.CheckSafety = false;     // sequential restructuring
    Flattener F(P, Inner);
    FlattenResult R = F.run(LoopBody, I, /*RequireParallel=*/false);
    return N + (R.Changed ? 1 : 0);
  }
  return 0;
}

} // namespace

FlattenResult transform::flattenLoopPairAt(Program &P, Body &Parent,
                                           size_t OuterIdx,
                                           FlattenOptions Opts) {
  assert(OuterIdx < Parent.size() && "index out of range");
  Flattener F(P, Opts);
  return F.run(Parent, OuterIdx, /*RequireParallel=*/false);
}

FlattenResult transform::flattenNest(Program &P, FlattenOptions Opts) {
  Body *Parent = nullptr;
  size_t Idx = 0;
  if (!findParallelCandidate(P.body(), Parent, Idx)) {
    FlattenResult R;
    R.Reason = "no parallel (DOALL) loop found";
    return R;
  }
  Flattener F(P, Opts);
  return F.run(*Parent, Idx, /*RequireParallel=*/true);
}

FlattenResult transform::flattenNestDeep(Program &P, FlattenOptions Opts) {
  Body *Parent = nullptr;
  size_t Idx = 0;
  if (!findParallelCandidate(P.body(), Parent, Idx)) {
    FlattenResult R;
    R.Reason = "no parallel (DOALL) loop found";
    return R;
  }
  // Collapse deeper pairs inside the parallel loop first.
  auto *D = cast<DoStmt>((*Parent)[Idx].get());
  flattenInnerPairs(P, D->body(), Opts);
  Flattener F(P, Opts);
  return F.run(*Parent, Idx, /*RequireParallel=*/true);
}
