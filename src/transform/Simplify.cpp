//===- transform/Simplify.cpp ---------------------------------*- C++ -*-===//

#include "transform/Simplify.h"

#include "ir/Walk.h"

#include <cmath>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::transform;

namespace {

// Per-run counter. thread_local because the serving core compiles
// programs from several worker threads concurrently.
thread_local int Rewrites;

bool isIntLit(const Expr &E, int64_t &Out) {
  if (const auto *L = dyn_cast<IntLit>(&E)) {
    Out = L->value();
    return true;
  }
  return false;
}

bool isBoolLit(const Expr &E, bool &Out) {
  if (const auto *L = dyn_cast<BoolLit>(&E)) {
    Out = L->value();
    return true;
  }
  return false;
}

ExprPtr intLit(int64_t V) { return std::make_unique<IntLit>(V); }
ExprPtr boolLit(bool V) { return std::make_unique<BoolLit>(V); }

ExprPtr simplify(ExprPtr E);

/// Folds a binary with two literal operands; null if not applicable.
ExprPtr foldLiterals(const BinaryExpr &B) {
  int64_t L, R;
  bool LB, RB;
  // Integer x integer.
  if (isIntLit(B.lhs(), L) && isIntLit(B.rhs(), R)) {
    switch (B.op()) {
    case BinOp::Add:
      return intLit(L + R);
    case BinOp::Sub:
      return intLit(L - R);
    case BinOp::Mul:
      return intLit(L * R);
    case BinOp::Div:
      return R == 0 ? nullptr : intLit(L / R);
    case BinOp::Mod:
      return R == 0 ? nullptr : intLit(L % R);
    case BinOp::Eq:
      return boolLit(L == R);
    case BinOp::Ne:
      return boolLit(L != R);
    case BinOp::Lt:
      return boolLit(L < R);
    case BinOp::Le:
      return boolLit(L <= R);
    case BinOp::Gt:
      return boolLit(L > R);
    case BinOp::Ge:
      return boolLit(L >= R);
    default:
      return nullptr;
    }
  }
  // Logical x logical.
  if (isBoolLit(B.lhs(), LB) && isBoolLit(B.rhs(), RB)) {
    switch (B.op()) {
    case BinOp::And:
      return boolLit(LB && RB);
    case BinOp::Or:
      return boolLit(LB || RB);
    case BinOp::Eq:
      return boolLit(LB == RB);
    case BinOp::Ne:
      return boolLit(LB != RB);
    default:
      return nullptr;
    }
  }
  return nullptr;
}

/// Identity and literal-absorption rules. Takes ownership of B's
/// operands through the enclosing unique_ptr; returns null if nothing
/// applies.
ExprPtr foldIdentities(BinaryExpr &B) {
  int64_t L = 0, R = 0;
  bool LB = false, RB = false;
  bool LIsInt = isIntLit(B.lhs(), L), RIsInt = isIntLit(B.rhs(), R);
  bool LIsBool = isBoolLit(B.lhs(), LB), RIsBool = isBoolLit(B.rhs(), RB);
  // Only rules that drop a *literal* operand are safe unconditionally.
  switch (B.op()) {
  case BinOp::Add:
    if (RIsInt && R == 0)
      return std::move(B.lhsPtr());
    if (LIsInt && L == 0)
      return std::move(B.rhsPtr());
    // lit + (x - lit) and (x - lit) + lit: fold across.
    if (LIsInt) {
      if (auto *Sub = dyn_cast<BinaryExpr>(B.rhsPtr().get());
          Sub && Sub->op() == BinOp::Sub) {
        int64_t C;
        if (isIntLit(Sub->rhs(), C) &&
            Sub->lhs().type() == ScalarKind::Int) {
          if (L == C)
            return std::move(Sub->lhsPtr());
          return std::make_unique<BinaryExpr>(
              BinOp::Add, std::move(Sub->lhsPtr()), intLit(L - C),
              ScalarKind::Int);
        }
      }
    }
    if (RIsInt) {
      if (auto *Sub = dyn_cast<BinaryExpr>(B.lhsPtr().get());
          Sub && Sub->op() == BinOp::Sub) {
        int64_t C;
        if (isIntLit(Sub->rhs(), C) &&
            Sub->lhs().type() == ScalarKind::Int) {
          if (R == C)
            return std::move(Sub->lhsPtr());
          return std::make_unique<BinaryExpr>(
              BinOp::Add, std::move(Sub->lhsPtr()), intLit(R - C),
              ScalarKind::Int);
        }
      }
      // (x + a) + b -> x + (a+b)
      if (auto *Add = dyn_cast<BinaryExpr>(B.lhsPtr().get());
          Add && Add->op() == BinOp::Add) {
        int64_t C;
        if (isIntLit(Add->rhs(), C) &&
            Add->lhs().type() == ScalarKind::Int)
          return std::make_unique<BinaryExpr>(
              BinOp::Add, std::move(Add->lhsPtr()), intLit(C + R),
              ScalarKind::Int);
      }
    }
    return nullptr;
  case BinOp::Sub:
    if (RIsInt && R == 0)
      return std::move(B.lhsPtr());
    return nullptr;
  case BinOp::Mul:
    if (RIsInt && R == 1)
      return std::move(B.lhsPtr());
    if (LIsInt && L == 1)
      return std::move(B.rhsPtr());
    return nullptr;
  case BinOp::Div:
    if (RIsInt && R == 1)
      return std::move(B.lhsPtr());
    return nullptr;
  case BinOp::And:
    if (RIsBool && RB)
      return std::move(B.lhsPtr());
    if (LIsBool && LB)
      return std::move(B.rhsPtr());
    return nullptr;
  case BinOp::Or:
    if (RIsBool && !RB)
      return std::move(B.lhsPtr());
    if (LIsBool && !LB)
      return std::move(B.rhsPtr());
    return nullptr;
  default:
    return nullptr;
  }
}

ExprPtr simplify(ExprPtr E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::RealLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
    return E;
  case Expr::Kind::ArrayRef: {
    auto *A = cast<ArrayRef>(E.get());
    for (ExprPtr &I : A->indices())
      I = simplify(std::move(I));
    return E;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E.get());
    U->operandPtr() = simplify(std::move(U->operandPtr()));
    if (U->op() == UnOp::Not) {
      bool V;
      if (isBoolLit(U->operand(), V)) {
        ++Rewrites;
        return boolLit(!V);
      }
      // .NOT. .NOT. x -> x
      if (auto *Inner = dyn_cast<UnaryExpr>(U->operandPtr().get());
          Inner && Inner->op() == UnOp::Not) {
        ++Rewrites;
        return std::move(Inner->operandPtr());
      }
      return E;
    }
    int64_t V;
    if (isIntLit(U->operand(), V)) {
      ++Rewrites;
      return intLit(-V);
    }
    if (const auto *RL = dyn_cast<RealLit>(&U->operand())) {
      ++Rewrites;
      return std::make_unique<RealLit>(-RL->value());
    }
    return E;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E.get());
    B->lhsPtr() = simplify(std::move(B->lhsPtr()));
    B->rhsPtr() = simplify(std::move(B->rhsPtr()));
    if (ExprPtr Folded = foldLiterals(*B)) {
      ++Rewrites;
      return Folded;
    }
    if (ExprPtr Folded = foldIdentities(*B)) {
      ++Rewrites;
      return simplify(std::move(Folded));
    }
    return E;
  }
  case Expr::Kind::Intrinsic: {
    auto *I = cast<IntrinsicExpr>(E.get());
    for (ExprPtr &A : I->args())
      A = simplify(std::move(A));
    int64_t A0, A1;
    if (I->op() == IntrinsicOp::Max || I->op() == IntrinsicOp::Min) {
      if (isIntLit(*I->args()[0], A0) && isIntLit(*I->args()[1], A1)) {
        ++Rewrites;
        return intLit(I->op() == IntrinsicOp::Max ? std::max(A0, A1)
                                                  : std::min(A0, A1));
      }
    }
    if (I->op() == IntrinsicOp::Abs && isIntLit(*I->args()[0], A0)) {
      ++Rewrites;
      return intLit(A0 < 0 ? -A0 : A0);
    }
    return E;
  }
  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(E.get());
    for (ExprPtr &A : C->args())
      A = simplify(std::move(A));
    return E;
  }
  }
  return E;
}

void simplifyBody(Body &B);

void simplifyStmt(StmtPtr &SP, Body &Out) {
  Stmt &S = *SP;
  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(&S);
    A->targetPtr() = simplify(std::move(A->targetPtr()));
    A->valuePtr() = simplify(std::move(A->valuePtr()));
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(&S);
    I->condPtr() = simplify(std::move(I->condPtr()));
    simplifyBody(I->thenBody());
    simplifyBody(I->elseBody());
    bool V;
    if (isBoolLit(I->cond(), V)) {
      ++Rewrites;
      Body &Taken = V ? I->thenBody() : I->elseBody();
      for (StmtPtr &T : Taken)
        Out.push_back(std::move(T));
      return;
    }
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::Where: {
    auto *W = cast<WhereStmt>(&S);
    W->condPtr() = simplify(std::move(W->condPtr()));
    simplifyBody(W->thenBody());
    simplifyBody(W->elseBody());
    bool V;
    if (isBoolLit(W->cond(), V)) {
      ++Rewrites;
      Body &Taken = V ? W->thenBody() : W->elseBody();
      for (StmtPtr &T : Taken)
        Out.push_back(std::move(T));
      return;
    }
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::Do: {
    auto *D = cast<DoStmt>(&S);
    D->loPtr() = simplify(std::move(D->loPtr()));
    D->hiPtr() = simplify(std::move(D->hiPtr()));
    if (D->step())
      D->stepPtr() = simplify(std::move(D->stepPtr()));
    simplifyBody(D->body());
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(&S);
    W->condPtr() = simplify(std::move(W->condPtr()));
    simplifyBody(W->body());
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::Repeat: {
    auto *R = cast<RepeatStmt>(&S);
    simplifyBody(R->body());
    R->untilCondPtr() = simplify(std::move(R->untilCondPtr()));
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::Forall: {
    auto *F = cast<ForallStmt>(&S);
    F->loPtr() = simplify(std::move(F->loPtr()));
    F->hiPtr() = simplify(std::move(F->hiPtr()));
    if (F->mask())
      F->maskPtr() = simplify(std::move(F->maskPtr()));
    simplifyBody(F->body());
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::Call: {
    auto *C = cast<CallStmt>(&S);
    for (ExprPtr &A : C->args())
      A = simplify(std::move(A));
    Out.push_back(std::move(SP));
    return;
  }
  case Stmt::Kind::Label:
  case Stmt::Kind::Goto:
    if (auto *G = dyn_cast<GotoStmt>(&S); G && G->cond())
      G->condPtr() = simplify(std::move(G->condPtr()));
    Out.push_back(std::move(SP));
    return;
  }
}

void simplifyBody(Body &B) {
  Body Out;
  Out.reserve(B.size());
  for (StmtPtr &SP : B)
    simplifyStmt(SP, Out);
  B = std::move(Out);
}

} // namespace

ir::ExprPtr transform::simplifyExpr(ir::ExprPtr E) {
  return simplify(std::move(E));
}

int transform::simplifyProgram(ir::Program &P) {
  Rewrites = 0;
  int Total = 0;
  // Iterate to a fixpoint (a rewrite can expose another).
  do {
    Rewrites = 0;
    simplifyBody(P.body());
    Total += Rewrites;
  } while (Rewrites > 0);
  return Total;
}
