//===- transform/Pipeline.cpp ---------------------------------*- C++ -*-===//

#include "transform/Pipeline.h"

#include "exec/Lower.h"
#include "frontend/GotoRecovery.h"
#include "ir/Printer.h"
#include "ir/Verify.h"
#include "ir/Walk.h"
#include "support/Format.h"
#include "transform/Coalesce.h"
#include "transform/GuardIntro.h"
#include "transform/Normalize.h"
#include "transform/Simdize.h"
#include "transform/Simplify.h"

using namespace simdflat;
using namespace simdflat::transform;

std::string PipelineReport::summary() const {
  std::string Out;
  if (GotoLoopsRecovered > 0)
    Out += formatf("recovered %d GOTO loop(s)\n", GotoLoopsRecovered);
  if (Flattened)
    Out += formatf("flattened at the %s level\n",
                   flattenLevelName(LevelApplied));
  else if (!FlattenSkipReason.empty())
    Out += "not flattened: " + FlattenSkipReason + "\n";
  Out += "SIMDized\n";
  for (const StageOutcome &S : Stages) {
    Out += formatf("stage %-13s %s", S.Stage.c_str(),
                   !S.Ran ? "skipped" : S.Verified ? "ok" : "FAILED verify");
    if (!S.Note.empty())
      Out += " (" + S.Note + ")";
    Out += "\n";
  }
  return Out;
}

std::string PipelineError::render() const {
  std::string Out = "pipeline failed in stage '" + Stage + "':";
  for (const std::string &I : Issues)
    Out += "\n  " + I;
  return Out;
}

Expected<ir::Program, PipelineError>
transform::compileForSimd(const ir::Program &P, PipelineOptions Opts,
                          PipelineReport *Report) {
  PipelineReport Local;
  PipelineReport &R = Report ? *Report : Local;

  // Verify-and-record for a stage that just ran over \p Prog. Returns
  // true when the tree is still well formed.
  auto checkStage = [&R](const char *Stage, const ir::Program &Prog,
                         std::string Note,
                         std::vector<std::string> *IssuesOut = nullptr) {
    std::vector<std::string> Issues = ir::verifyProgram(Prog);
    R.Stages.push_back({Stage, /*Ran=*/true, Issues.empty(), std::move(Note)});
    bool Ok = Issues.empty();
    if (IssuesOut)
      *IssuesOut = std::move(Issues);
    return Ok;
  };
  auto skipStage = [&R](const char *Stage, std::string Note) {
    R.Stages.push_back({Stage, /*Ran=*/false, false, std::move(Note)});
  };

  // A malformed input is the caller's problem, not a compiler bug:
  // report it structurally instead of transforming garbage.
  {
    std::vector<std::string> Issues = ir::verifyProgram(P);
    if (!Issues.empty())
      return PipelineError{"input", std::move(Issues)};
  }

  ir::Program Work = ir::cloneProgram(P);

  R.GotoLoopsRecovered = frontend::recoverGotoLoops(Work);
  {
    std::vector<std::string> Issues;
    if (!checkStage("goto-recovery", Work,
                    formatf("recovered %d loop(s)", R.GotoLoopsRecovered),
                    &Issues))
      return PipelineError{"goto-recovery", std::move(Issues)};
  }

  // Resolve the strategy seam: an explicit policy overrides the legacy
  // Flatten flag (which only distinguishes flattened vs unflattened).
  analysis::Strategy Strat =
      Opts.Strategy ? Opts.Strategy->Chosen
                    : (Opts.Flatten ? analysis::Strategy::Flattened
                                    : analysis::Strategy::Unflattened);

  // Coalesced build: run the inspector/executor rewrite on the
  // recovered nest. A successful coalesce replaces the nest with one
  // perfectly balanced DOALL, so the flatten stage is skipped; a
  // declined or damaged coalesce falls back to the flattened build.
  bool CoalescedApplied = false;
  if (Strat == analysis::Strategy::Coalesced) {
    ir::Program Backup = ir::cloneProgram(Work);
    CoalesceResult CR =
        coalesceNest(Work, Opts.Strategy->CoalesceMaxOuter,
                     Opts.Strategy->CoalesceMaxTotal);
    std::string Note = CR.Changed
                           ? formatf("coalesced (total var %s)",
                                     CR.TotalVar.c_str())
                           : "declined: " + CR.Reason +
                                 "; falling back to flattened";
    std::vector<std::string> Issues;
    if (!checkStage("coalesce", Work, std::move(Note), &Issues)) {
      if (!CR.Changed)
        return PipelineError{"coalesce", std::move(Issues)};
      Work = std::move(Backup);
      R.Stages.back().Note = "produced an invalid program (" +
                             Issues.front() +
                             "); falling back to flattened";
    } else if (CR.Changed) {
      CoalescedApplied = true;
    }
    if (!CoalescedApplied)
      Strat = analysis::Strategy::Flattened;
  } else {
    skipStage("coalesce", "not selected by strategy");
  }

  // When explicit normalization peels a REPEAT's first execution, the
  // residual pre-test loop runs one trip fewer than the original; a
  // caller-asserted min-one guarantee does not survive the peel, and
  // flattening at the optimized level on its strength would run one
  // iteration too many on exactly-one-trip rows.
  bool MinOneSurvives = Opts.AssumeInnerMinOneTrip;
  if (Opts.ExplicitNormalize) {
    int Peeled = 0;
    int Normalized = normalizeLoops(Work, {}, &Peeled);
    if (Peeled > 0)
      MinOneSurvives = false;
    {
      std::vector<std::string> Issues;
      if (!checkStage("normalize", Work,
                      formatf("normalized %d loop(s)", Normalized), &Issues))
        return PipelineError{"normalize", std::move(Issues)};
    }
    int Guarded = introduceGuards(Work);
    {
      std::vector<std::string> Issues;
      if (!checkStage("guard-intro", Work,
                      formatf("guarded %d loop(s)", Guarded), &Issues))
        return PipelineError{"guard-intro", std::move(Issues)};
    }
  } else {
    skipStage("normalize", "folded into flatten's normal-form analysis");
    skipStage("guard-intro", "folded into flatten's normal-form analysis");
  }

  if (!CoalescedApplied && Strat == analysis::Strategy::Flattened) {
    FlattenOptions FOpts;
    FOpts.Force = Opts.ForceLevel;
    FOpts.AssumeInnerMinOneTrip = MinOneSurvives;
    FOpts.CheckSafety = Opts.CheckSafety;
    FOpts.DistributeOuter = Opts.Layout;
    // Keep the pre-flatten tree: a flatten that damages the program is
    // reverted and the pipeline falls back to the unflattened Fig. 5
    // path rather than failing the compilation.
    ir::Program Backup = ir::cloneProgram(Work);
    FlattenResult FR = flattenNest(Work, FOpts);
    R.Flattened = FR.Changed;
    R.LevelApplied = FR.Applied;
    if (!FR.Changed)
      R.FlattenSkipReason = FR.Reason;
    std::string Note =
        FR.Changed ? formatf("%s level", flattenLevelName(FR.Applied))
                   : "skipped: " + FR.Reason;
    std::vector<std::string> Issues;
    if (!checkStage("flatten", Work, std::move(Note), &Issues)) {
      if (!FR.Changed)
        // Flatten declined and the tree is still bad: not flatten's
        // doing, nothing to revert.
        return PipelineError{"flatten", std::move(Issues)};
      Work = std::move(Backup);
      R.Flattened = false;
      R.FlattenSkipReason =
          "flatten produced an invalid program (" + Issues.front() +
          "); reverted to the unflattened path";
      R.Stages.back().Note = R.FlattenSkipReason;
    }
  } else {
    skipStage("flatten", CoalescedApplied
                             ? "coalesced nest needs no flattening"
                             : "strategy unflattened");
  }

  R.StrategyApplied = CoalescedApplied ? analysis::Strategy::Coalesced
                      : R.Flattened    ? analysis::Strategy::Flattened
                                       : analysis::Strategy::Unflattened;

  SimdizeOptions SOpts;
  SOpts.DoAllLayout = Opts.Layout;
  ir::Program Out = simdize(Work, SOpts);
  {
    std::vector<std::string> Issues;
    if (!checkStage("simdize", Out, "F77 -> F90simd", &Issues))
      // No fallback exists: the SIMD machine only executes F90simd.
      return PipelineError{"simdize", std::move(Issues)};
  }

  {
    ir::Program PreSimplify = ir::cloneProgram(Out);
    simplifyProgram(Out);
    std::vector<std::string> Issues;
    if (!checkStage("simplify", Out, "", &Issues)) {
      // Simplify is an optimization; losing it is always safe.
      Out = std::move(PreSimplify);
      R.Stages.back().Note =
          "produced an invalid program (" + Issues.front() + "); reverted";
    }
  }

  return Out;
}

Expected<CompiledSimdProgram, PipelineError>
transform::compileForSimdExec(const ir::Program &P, PipelineOptions Opts,
                              PipelineReport *Report) {
  Expected<ir::Program, PipelineError> Simd =
      compileForSimd(P, std::move(Opts), Report);
  if (!Simd)
    return Simd.error();
  std::shared_ptr<const exec::Program> Code =
      std::make_shared<exec::Program>(
          exec::lower(*Simd, exec::Mode::Simd));
  return CompiledSimdProgram{std::move(*Simd), std::move(Code)};
}

CanonicalKey transform::canonicalKey(const ir::Program &P,
                                     const PipelineOptions &Opts) {
  CanonicalKey K;
  K.Text = ir::printProgram(P);
  K.Text += "\n|layout=";
  K.Text += Opts.Layout == machine::Layout::Block ? "block" : "cyclic";
  K.Text += "|flatten=";
  K.Text += Opts.Flatten ? "1" : "0";
  K.Text += "|level=";
  K.Text += Opts.ForceLevel ? flattenLevelName(*Opts.ForceLevel) : "auto";
  K.Text += "|min-one=";
  K.Text += Opts.AssumeInnerMinOneTrip ? "1" : "0";
  K.Text += "|safety=";
  K.Text += Opts.CheckSafety ? "1" : "0";
  K.Text += "|explicit-normalize=";
  K.Text += Opts.ExplicitNormalize ? "1" : "0";
  K.Text += "|strategy=";
  if (Opts.Strategy) {
    K.Text += analysis::strategyName(Opts.Strategy->Chosen);
    K.Text += "|coal-outer=";
    K.Text += std::to_string(Opts.Strategy->CoalesceMaxOuter);
    K.Text += "|coal-total=";
    K.Text += std::to_string(Opts.Strategy->CoalesceMaxTotal);
  } else {
    K.Text += "legacy";
  }
  // FNV-1a, 64-bit.
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : K.Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  K.Hash = H;
  return K;
}
