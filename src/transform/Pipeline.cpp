//===- transform/Pipeline.cpp ---------------------------------*- C++ -*-===//

#include "transform/Pipeline.h"

#include "frontend/GotoRecovery.h"
#include "ir/Verify.h"
#include "ir/Walk.h"
#include "support/Error.h"
#include "support/Format.h"
#include "transform/Simdize.h"
#include "transform/Simplify.h"

using namespace simdflat;
using namespace simdflat::transform;

std::string PipelineReport::summary() const {
  std::string Out;
  if (GotoLoopsRecovered > 0)
    Out += formatf("recovered %d GOTO loop(s)\n", GotoLoopsRecovered);
  if (Flattened)
    Out += formatf("flattened at the %s level\n",
                   flattenLevelName(LevelApplied));
  else if (!FlattenSkipReason.empty())
    Out += "not flattened: " + FlattenSkipReason + "\n";
  Out += "SIMDized\n";
  return Out;
}

ir::Program transform::compileForSimd(const ir::Program &P,
                                      PipelineOptions Opts,
                                      PipelineReport *Report) {
  PipelineReport Local;
  PipelineReport &R = Report ? *Report : Local;

  ir::Program Work = ir::cloneProgram(P);
  R.GotoLoopsRecovered = frontend::recoverGotoLoops(Work);

  if (Opts.Flatten) {
    FlattenOptions FOpts;
    FOpts.Force = Opts.ForceLevel;
    FOpts.AssumeInnerMinOneTrip = Opts.AssumeInnerMinOneTrip;
    FOpts.CheckSafety = Opts.CheckSafety;
    FOpts.DistributeOuter = Opts.Layout;
    FlattenResult FR = flattenNest(Work, FOpts);
    R.Flattened = FR.Changed;
    R.LevelApplied = FR.Applied;
    if (!FR.Changed)
      R.FlattenSkipReason = FR.Reason;
  }

  SimdizeOptions SOpts;
  SOpts.DoAllLayout = Opts.Layout;
  ir::Program Out = simdize(Work, SOpts);
  simplifyProgram(Out);

  // A transformation that produced an ill-formed tree is a compiler
  // bug; fail loudly rather than mis-execute.
  std::vector<std::string> Issues = ir::verifyProgram(Out);
  if (!Issues.empty()) {
    std::string Msg = "pipeline produced an invalid program:";
    for (const std::string &I : Issues)
      Msg += "\n  " + I;
    reportFatalError(Msg);
  }
  return Out;
}
