//===- transform/Simdize.cpp ----------------------------------*- C++ -*-===//

#include "transform/Simdize.h"

#include "ir/Builder.h"
#include "ir/Walk.h"
#include "support/Error.h"

#include <cassert>
#include <set>

using namespace simdflat;
using namespace simdflat::transform;
using namespace simdflat::ir;

namespace {

class Simdizer {
public:
  Simdizer(Program &P, const SimdizeOptions &Opts) : P(P), B(P),
                                                     Opts(Opts) {}

  void run() {
    computeVariance();
    Body NewBody = convertBody(P.body(), /*Ctx=*/false);
    P.setBody(std::move(NewBody));
    for (const std::string &Name : Varying) {
      VarDecl *D = P.lookupVar(Name);
      assert(D && D->isScalar() && "varying non-scalar?");
      D->Distribution = Dist::Replicated;
    }
    P.setDialect(Dialect::F90Simd);
  }

private:
  Program &P;
  Builder B;
  const SimdizeOptions &Opts;
  std::set<std::string> Varying;
  bool Changed = false;

  /// True if \p E may evaluate to different values on different lanes.
  bool varies(const Expr &E) const {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::RealLit:
    case Expr::Kind::BoolLit:
      return false;
    case Expr::Kind::VarRef:
      return Varying.count(cast<VarRef>(&E)->name()) != 0;
    case Expr::Kind::ArrayRef: {
      // An element load is lane-varying iff a subscript is; a uniform
      // subscript loads the same element on every lane.
      for (const ExprPtr &I : cast<ArrayRef>(&E)->indices())
        if (varies(*I))
          return true;
      return false;
    }
    case Expr::Kind::Unary:
      return varies(cast<UnaryExpr>(&E)->operand());
    case Expr::Kind::Binary:
      return varies(cast<BinaryExpr>(&E)->lhs()) ||
             varies(cast<BinaryExpr>(&E)->rhs());
    case Expr::Kind::Intrinsic: {
      const auto *I = cast<IntrinsicExpr>(&E);
      if (I->op() == IntrinsicOp::LaneIndex)
        return true;
      // Reductions broadcast their result: never lane-varying.
      if (isLaneReduction(I->op()) || isArrayReduction(I->op()) ||
          I->op() == IntrinsicOp::NumLanes)
        return false;
      for (const ExprPtr &A : I->args())
        if (varies(*A))
          return true;
      return false;
    }
    case Expr::Kind::Call:
      // Elementwise extern: varying iff any argument is.
      for (const ExprPtr &A : cast<CallExpr>(&E)->args())
        if (varies(*A))
          return true;
      return false;
    }
    SIMDFLAT_UNREACHABLE("bad Expr kind");
  }

  void markVarying(const std::string &Name) {
    if (Varying.insert(Name).second)
      Changed = true;
  }

  /// One fixpoint sweep: a scalar assigned a lane-varying value, or
  /// assigned under a lane-varying mask context, becomes lane-varying.
  void sweep(const Body &Stmts, bool Ctx) {
    for (const StmtPtr &SP : Stmts) {
      const Stmt &S = *SP;
      switch (S.kind()) {
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(&S);
        if (const auto *V = dyn_cast<VarRef>(&A->target()))
          if (Ctx || varies(A->value()))
            markVarying(V->name());
        break;
      }
      case Stmt::Kind::If: {
        const auto *I = cast<IfStmt>(&S);
        bool C = Ctx || varies(I->cond());
        sweep(I->thenBody(), C);
        sweep(I->elseBody(), C);
        break;
      }
      case Stmt::Kind::Where: {
        const auto *W = cast<WhereStmt>(&S);
        bool C = Ctx || varies(W->cond());
        sweep(W->thenBody(), C);
        sweep(W->elseBody(), C);
        break;
      }
      case Stmt::Kind::Do: {
        const auto *D = cast<DoStmt>(&S);
        if (D->isParallel()) {
          markVarying(D->indexVar());
          sweep(D->body(), /*Ctx=*/true);
        } else {
          sweep(D->body(), Ctx || varies(D->lo()) || varies(D->hi()));
        }
        break;
      }
      case Stmt::Kind::While: {
        const auto *W = cast<WhileStmt>(&S);
        sweep(W->body(), Ctx || varies(W->cond()));
        break;
      }
      case Stmt::Kind::Repeat: {
        const auto *R = cast<RepeatStmt>(&S);
        sweep(R->body(), Ctx || varies(R->untilCond()));
        break;
      }
      case Stmt::Kind::Forall: {
        const auto *F = cast<ForallStmt>(&S);
        markVarying(F->indexVar());
        sweep(F->body(), /*Ctx=*/true);
        break;
      }
      case Stmt::Kind::Call:
        break;
      case Stmt::Kind::Label:
      case Stmt::Kind::Goto:
        reportFatalError("simdize: unstructured control flow in '" +
                         P.name() + "'; run GOTO-loop recovery first");
      }
    }
  }

  void computeVariance() {
    do {
      Changed = false;
      sweep(P.body(), /*Ctx=*/false);
    } while (Changed);
  }

  Body convertBody(const Body &Stmts, bool Ctx) {
    Body Out;
    for (const StmtPtr &SP : Stmts)
      convertStmt(*SP, Ctx, Out);
    return Out;
  }

  void convertStmt(const Stmt &S, bool Ctx, Body &Out) {
    switch (S.kind()) {
    case Stmt::Kind::Assign:
    case Stmt::Kind::Call:
    case Stmt::Kind::Label:
    case Stmt::Kind::Goto:
      Out.push_back(cloneStmt(S));
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      bool C = varies(I->cond());
      Body Then = convertBody(I->thenBody(), Ctx || C);
      Body Else = convertBody(I->elseBody(), Ctx || C);
      if (C)
        Out.push_back(B.where(cloneExpr(I->cond()), std::move(Then),
                              std::move(Else)));
      else
        Out.push_back(B.ifStmt(cloneExpr(I->cond()), std::move(Then),
                               std::move(Else)));
      return;
    }
    case Stmt::Kind::Where: {
      const auto *W = cast<WhereStmt>(&S);
      Out.push_back(B.where(cloneExpr(W->cond()),
                            convertBody(W->thenBody(), true),
                            convertBody(W->elseBody(), true)));
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(&S);
      if (D->isParallel()) {
        convertDoAll(*D, Ctx, Out);
        return;
      }
      if (varies(D->lo()))
        reportFatalError("simdize: lane-varying DO lower bound for '" +
                         D->indexVar() + "' is not supported");
      if (D->step() && varies(*D->step()))
        reportFatalError("simdize: lane-varying DO step for '" +
                         D->indexVar() + "' is not supported");
      Body NewBody = convertBody(D->body(), Ctx || varies(D->hi()));
      if (varies(D->hi())) {
        // DO j = lo, <reduction over lanes>; guard the body (Fig. 5).
        // Ascending loops take the MAX bound with a <= guard; descending
        // ones (negative literal step) the MIN bound with a >= guard.
        bool Descending = false;
        if (D->step()) {
          const auto *Lit = dyn_cast<IntLit>(D->step());
          if (!Lit)
            reportFatalError("simdize: lane-varying DO bound with a "
                             "non-literal step is not supported");
          Descending = Lit->value() < 0;
        }
        ExprPtr Guard =
            Descending ? B.ge(B.var(D->indexVar()), cloneExpr(D->hi()))
                       : B.le(B.var(D->indexVar()), cloneExpr(D->hi()));
        ExprPtr Bound = Descending ? B.minRed(cloneExpr(D->hi()))
                                   : B.maxRed(cloneExpr(D->hi()));
        Body Guarded;
        Guarded.push_back(B.where(std::move(Guard), std::move(NewBody)));
        Out.push_back(B.doLoop(D->indexVar(), cloneExpr(D->lo()),
                               std::move(Bound), std::move(Guarded),
                               D->step() ? cloneExpr(*D->step()) : nullptr));
      } else {
        Out.push_back(B.doLoop(D->indexVar(), cloneExpr(D->lo()),
                               cloneExpr(D->hi()), std::move(NewBody),
                               D->step() ? cloneExpr(*D->step()) : nullptr));
      }
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&S);
      bool C = varies(W->cond());
      Body NewBody = convertBody(W->body(), Ctx || C);
      if (C) {
        // WHILE ANY(cond) { WHERE (cond) body } (Figs. 7/14/15).
        Body Guarded;
        Guarded.push_back(B.where(cloneExpr(W->cond()), std::move(NewBody)));
        Out.push_back(B.whileLoop(B.any(cloneExpr(W->cond())),
                                  std::move(Guarded)));
      } else {
        Out.push_back(B.whileLoop(cloneExpr(W->cond()), std::move(NewBody)));
      }
      return;
    }
    case Stmt::Kind::Repeat: {
      const auto *R = cast<RepeatStmt>(&S);
      bool C = varies(R->untilCond());
      if (!C) {
        Out.push_back(B.repeatUntil(convertBody(R->body(), Ctx),
                                    cloneExpr(R->untilCond())));
        return;
      }
      // REPEAT B UNTIL c  ==>  B ; WHILE ANY(.NOT. c) { WHERE(.NOT. c) B }
      Body First = convertBody(R->body(), Ctx);
      for (StmtPtr &FS : First)
        Out.push_back(std::move(FS));
      ExprPtr NotC = B.lnot(cloneExpr(R->untilCond()));
      Body Guarded;
      Guarded.push_back(B.where(B.lnot(cloneExpr(R->untilCond())),
                                convertBody(R->body(), true)));
      Out.push_back(B.whileLoop(B.any(std::move(NotC)), std::move(Guarded)));
      return;
    }
    case Stmt::Kind::Forall: {
      const auto *F = cast<ForallStmt>(&S);
      Out.push_back(B.forall(F->indexVar(), cloneExpr(F->lo()),
                             cloneExpr(F->hi()),
                             F->mask() ? cloneExpr(*F->mask()) : nullptr,
                             convertBody(F->body(), true)));
      return;
    }
    }
    SIMDFLAT_UNREACHABLE("bad Stmt kind");
  }

  /// Rewrites a DOALL into a control loop over lane blocks with a
  /// replicated per-lane index (the Fig. 5 / Fig. 14 shape).
  void convertDoAll(const DoStmt &D, bool Ctx, Body &Out) {
    if (D.step()) {
      const auto *Lit = dyn_cast<IntLit>(D.step());
      if (!Lit || Lit->value() != 1)
        reportFatalError("simdize: DOALL must have unit step");
    }
    const std::string &IV = D.indexVar();
    // blocks = ceil((hi - lo + 1) / NUMLANES())
    ExprPtr Blocks = B.div(
        B.add(B.sub(cloneExpr(D.hi()), cloneExpr(D.lo())), B.numLanes()),
        B.numLanes());
    // addFreshVar returns a reference into the program's declaration
    // vector; any later addFreshVar (including those made while
    // converting the nested body below) may reallocate it, so keep only
    // the name.
    const std::string Blk = P.addFreshVar(IV + "blk", ScalarKind::Int).Name;
    Body LoopBody;
    if (Opts.DoAllLayout == machine::Layout::Cyclic) {
      // i = lo + (blk-1)*NUMLANES() + LANEINDEX() - 1
      LoopBody.push_back(B.set(
          IV, B.add(cloneExpr(D.lo()),
                    B.sub(B.add(B.mul(B.sub(B.var(Blk), B.lit(1)),
                                      B.numLanes()),
                                B.laneIndex()),
                          B.lit(1)))));
    } else {
      // Block layout: lane p owns a contiguous chunk of `blocks` rows:
      // i = lo + (LANEINDEX()-1)*blocks + blk - 1
      const std::string Chunk =
          P.addFreshVar(IV + "chunk", ScalarKind::Int).Name;
      Out.push_back(B.set(Chunk, cloneExpr(*Blocks)));
      Blocks = B.var(Chunk);
      LoopBody.push_back(B.set(
          IV, B.add(cloneExpr(D.lo()),
                    B.sub(B.add(B.mul(B.sub(B.laneIndex(), B.lit(1)),
                                      B.var(Chunk)),
                                B.var(Blk)),
                          B.lit(1)))));
    }
    markVarying(IV);
    VarDecl *IVDecl = P.lookupVar(IV);
    assert(IVDecl && "undeclared DOALL index");
    (void)IVDecl;
    // Guard the ragged final block: WHERE (i <= hi) body.
    Body Guarded;
    Guarded.push_back(B.where(B.le(B.var(IV), cloneExpr(D.hi())),
                              convertBody(D.body(), true)));
    for (StmtPtr &GS : Guarded)
      LoopBody.push_back(std::move(GS));
    (void)Ctx;
    Out.push_back(B.doLoop(Blk, B.lit(1), std::move(Blocks),
                           std::move(LoopBody)));
  }
};

} // namespace

ir::Program transform::simdize(const Program &P, SimdizeOptions Opts) {
  if (P.dialect() == Dialect::F90Simd)
    reportFatalError("simdize: program '" + P.name() +
                     "' is already in the F90simd dialect");
  Program Out = cloneProgram(P);
  Simdizer S(Out, Opts);
  S.run();
  return Out;
}
