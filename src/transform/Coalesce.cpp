//===- transform/Coalesce.cpp ---------------------------------*- C++ -*-===//

#include "transform/Coalesce.h"

#include "ir/Builder.h"
#include "ir/Walk.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::transform;
using namespace simdflat::ir;

namespace {

/// Finds the first DOALL at any nesting depth.
DoStmt *findDoAll(Body &B, Body *&Parent, size_t &Idx) {
  for (size_t I = 0; I < B.size(); ++I) {
    Stmt &S = *B[I];
    if (auto *D = dyn_cast<DoStmt>(&S)) {
      if (D->isParallel()) {
        Parent = &B;
        Idx = I;
        return D;
      }
      if (DoStmt *Found = findDoAll(D->body(), Parent, Idx))
        return Found;
    } else if (auto *W = dyn_cast<WhileStmt>(&S)) {
      if (DoStmt *Found = findDoAll(W->body(), Parent, Idx))
        return Found;
    } else if (auto *I2 = dyn_cast<IfStmt>(&S)) {
      if (DoStmt *Found = findDoAll(I2->thenBody(), Parent, Idx))
        return Found;
      if (DoStmt *Found = findDoAll(I2->elseBody(), Parent, Idx))
        return Found;
    }
  }
  return nullptr;
}

} // namespace

CoalesceResult transform::coalesceNest(Program &P,
                                       int64_t MaxOuterIterations,
                                       int64_t MaxTotalIterations) {
  CoalesceResult R;
  Body *Parent = nullptr;
  size_t Idx = 0;
  DoStmt *Outer = findDoAll(P.body(), Parent, Idx);
  if (!Outer) {
    R.Reason = "no parallel (DOALL) loop found";
    return R;
  }
  if (Outer->step() || !isa<IntLit>(&Outer->lo()) ||
      cast<IntLit>(&Outer->lo())->value() != 1) {
    R.Reason = "coalescing needs DOALL i = 1, K with unit step";
    return R;
  }
  if (Outer->body().size() != 1 ||
      Outer->body()[0]->kind() != Stmt::Kind::Do) {
    R.Reason = "coalescing needs a perfect DOALL/DO nest";
    return R;
  }
  auto *Inner = cast<DoStmt>(Outer->body()[0].get());
  if (Inner->step()) {
    R.Reason = "coalescing needs a unit-step inner loop";
    return R;
  }

  Builder B(P);
  const std::string &IV = Outer->indexVar();
  const std::string &JV = Inner->indexVar();
  VarDecl &Total = P.addFreshVar("coalT", ScalarKind::Int);
  VarDecl &Offs = P.addFreshVar("coalOffs", ScalarKind::Int);
  Offs.Dims = {MaxOuterIterations};
  Offs.Distribution = Dist::Distributed;
  VarDecl &Row = P.addFreshVar("coalRow", ScalarKind::Int);
  Row.Dims = {MaxTotalIterations};
  Row.Distribution = Dist::Distributed;
  VarDecl &T = P.addFreshVar("coalt", ScalarKind::Int);

  // trips(i) = MAX(0, hi - lo + 1)
  auto Trips = [&]() {
    return B.max(B.lit(0),
                 B.add(B.sub(cloneExpr(Inner->hi()), cloneExpr(Inner->lo())),
                       B.lit(1)));
  };

  Body Out;
  // Inspector: prefix offsets and total.
  Out.push_back(B.set(Total.Name, B.lit(0)));
  Out.push_back(B.doLoop(
      IV, B.lit(1), cloneExpr(Outer->hi()),
      Builder::body(
          B.assign(B.at(Offs.Name, B.var(IV)), B.var(Total.Name)),
          B.set(Total.Name, B.add(B.var(Total.Name), Trips())))));
  // Row map: coalRow(offs(i) + j) = i for local j = 1..trips(i).
  Out.push_back(B.doLoop(
      IV, B.lit(1), cloneExpr(Outer->hi()),
      Builder::body(B.doLoop(
          T.Name, B.lit(1), Trips(),
          Builder::body(B.assign(
              B.at(Row.Name, B.add(B.at(Offs.Name, B.var(IV)), B.var(T.Name))),
              B.var(IV)))))));
  // Executor: a single coalesced DOALL over 1..coalT.
  Body Exec;
  Exec.push_back(B.set(IV, B.at(Row.Name, B.var(T.Name))));
  Exec.push_back(B.set(
      JV, B.sub(B.add(cloneExpr(Inner->lo()),
                      B.sub(B.var(T.Name), B.at(Offs.Name, B.var(IV)))),
                B.lit(1))));
  for (const StmtPtr &S : Inner->body())
    Exec.push_back(cloneStmt(*S));
  Out.push_back(B.doLoop(T.Name, B.lit(1), B.var(Total.Name),
                         std::move(Exec), nullptr, /*IsParallel=*/true));

  Parent->erase(Parent->begin() + static_cast<long>(Idx));
  for (size_t I = 0; I < Out.size(); ++I)
    Parent->insert(Parent->begin() + static_cast<long>(Idx + I),
                   std::move(Out[I]));
  R.Changed = true;
  R.TotalVar = Total.Name;
  return R;
}
