//===- transform/Coalesce.cpp ---------------------------------*- C++ -*-===//

#include "transform/Coalesce.h"

#include "ir/Builder.h"
#include "ir/Walk.h"

#include <cassert>
#include <set>

using namespace simdflat;
using namespace simdflat::transform;
using namespace simdflat::ir;

namespace {

/// Finds the first DOALL at any nesting depth.
DoStmt *findDoAll(Body &B, Body *&Parent, size_t &Idx) {
  for (size_t I = 0; I < B.size(); ++I) {
    Stmt &S = *B[I];
    if (auto *D = dyn_cast<DoStmt>(&S)) {
      if (D->isParallel()) {
        Parent = &B;
        Idx = I;
        return D;
      }
      if (DoStmt *Found = findDoAll(D->body(), Parent, Idx))
        return Found;
    } else if (auto *W = dyn_cast<WhileStmt>(&S)) {
      if (DoStmt *Found = findDoAll(W->body(), Parent, Idx))
        return Found;
    } else if (auto *I2 = dyn_cast<IfStmt>(&S)) {
      if (DoStmt *Found = findDoAll(I2->thenBody(), Parent, Idx))
        return Found;
      if (DoStmt *Found = findDoAll(I2->elseBody(), Parent, Idx))
        return Found;
    }
  }
  return nullptr;
}

/// Whether the inner body tolerates its (i, j) iterations being
/// redistributed freely. Scalars are lane-private after simdization
/// (the executor's own i/j sets rely on that), but distributed arrays
/// are shared: a store whose subscripts do not vary with the inner
/// index hits the same element from every coalesced iteration of one
/// row - e.g. the reduction A(i) = A(i) + j, which the sequential
/// inner DO ordered and a coalesced DOALL races into lost updates.
/// A body that reads an array it also writes may likewise consume a
/// neighbour iteration's store. Both shapes decline; the caller falls
/// back to flattening, which keeps each owner's iterations in order.
bool bodySafeToCoalesce(const Body &B, const std::string &JV,
                        std::string &Why) {
  bool Safe = true;
  std::set<std::string> Written;
  std::set<const Expr *> StoreTargets;
  forEachStmt(B, [&](const Stmt &S) {
    if (!Safe)
      return;
    if (S.kind() == Stmt::Kind::Goto || S.kind() == Stmt::Kind::Label) {
      Safe = false;
      Why = "body contains unstructured control flow";
      return;
    }
    auto *A = dyn_cast<AssignStmt>(&S);
    if (!A)
      return;
    auto *T = dyn_cast<ArrayRef>(&A->target());
    if (!T)
      return;
    Written.insert(T->name());
    StoreTargets.insert(&A->target());
    bool UsesInner = false;
    for (const ExprPtr &Ix : T->indices())
      forEachExpr(*Ix, [&](const Expr &E) {
        if (auto *V = dyn_cast<VarRef>(&E))
          if (V->name() == JV)
            UsesInner = true;
      });
    if (!UsesInner) {
      Safe = false;
      Why = "store to " + T->name() +
            " does not vary with the inner index (a reduction the "
            "sequential inner loop ordered)";
    }
  });
  if (!Safe)
    return false;
  forEachStmt(B, [&](const Stmt &S) {
    if (!Safe)
      return;
    forEachExprInStmt(S, [&](const Expr &E) {
      if (!Safe)
        return;
      const std::string *Name = nullptr;
      if (auto *R = dyn_cast<ArrayRef>(&E)) {
        if (!StoreTargets.count(&E))
          Name = &R->name();
      } else if (auto *V = dyn_cast<VarRef>(&E)) {
        Name = &V->name();
      }
      if (Name && Written.count(*Name)) {
        Safe = false;
        Why = "array " + *Name + " is both read and written in the body";
      }
    });
  });
  return Safe;
}

} // namespace

CoalesceResult transform::coalesceNest(Program &P,
                                       int64_t MaxOuterIterations,
                                       int64_t MaxTotalIterations) {
  CoalesceResult R;
  Body *Parent = nullptr;
  size_t Idx = 0;
  DoStmt *Outer = findDoAll(P.body(), Parent, Idx);
  if (!Outer) {
    R.Reason = "no parallel (DOALL) loop found";
    return R;
  }
  if (Outer->step() || !isa<IntLit>(&Outer->lo()) ||
      cast<IntLit>(&Outer->lo())->value() != 1) {
    R.Reason = "coalescing needs DOALL i = 1, K with unit step";
    return R;
  }
  if (Outer->body().size() != 1 ||
      Outer->body()[0]->kind() != Stmt::Kind::Do) {
    R.Reason = "coalescing needs a perfect DOALL/DO nest";
    return R;
  }
  auto *Inner = cast<DoStmt>(Outer->body()[0].get());
  if (Inner->step()) {
    R.Reason = "coalescing needs a unit-step inner loop";
    return R;
  }
  {
    std::string Why;
    if (!bodySafeToCoalesce(Inner->body(), Inner->indexVar(), Why)) {
      R.Reason = "iterations are not independent: " + Why;
      return R;
    }
  }

  Builder B(P);
  const std::string IV = Outer->indexVar();
  const std::string JV = Inner->indexVar();
  // addFreshVar returns a reference into the program's declaration
  // vector; each later addFreshVar may reallocate it. Configure every
  // declaration while its reference is still fresh and keep only the
  // names.
  struct Names {
    std::string Total, Offs, Row, T;
  } N;
  N.Total = P.addFreshVar("coalT", ScalarKind::Int).Name;
  {
    VarDecl &Offs = P.addFreshVar("coalOffs", ScalarKind::Int);
    Offs.Dims = {MaxOuterIterations};
    Offs.Distribution = Dist::Distributed;
    N.Offs = Offs.Name;
  }
  {
    VarDecl &Row = P.addFreshVar("coalRow", ScalarKind::Int);
    Row.Dims = {MaxTotalIterations};
    Row.Distribution = Dist::Distributed;
    N.Row = Row.Name;
  }
  N.T = P.addFreshVar("coalt", ScalarKind::Int).Name;

  // trips(i) = MAX(0, hi - lo + 1)
  auto Trips = [&]() {
    return B.max(B.lit(0),
                 B.add(B.sub(cloneExpr(Inner->hi()), cloneExpr(Inner->lo())),
                       B.lit(1)));
  };

  Body Out;
  // Inspector: prefix offsets and total.
  Out.push_back(B.set(N.Total, B.lit(0)));
  Out.push_back(B.doLoop(
      IV, B.lit(1), cloneExpr(Outer->hi()),
      Builder::body(
          B.assign(B.at(N.Offs, B.var(IV)), B.var(N.Total)),
          B.set(N.Total, B.add(B.var(N.Total), Trips())))));
  // Row map: coalRow(offs(i) + j) = i for local j = 1..trips(i).
  Out.push_back(B.doLoop(
      IV, B.lit(1), cloneExpr(Outer->hi()),
      Builder::body(B.doLoop(
          N.T, B.lit(1), Trips(),
          Builder::body(B.assign(
              B.at(N.Row, B.add(B.at(N.Offs, B.var(IV)), B.var(N.T))),
              B.var(IV)))))));
  // Executor: a single coalesced DOALL over 1..coalT.
  Body Exec;
  Exec.push_back(B.set(IV, B.at(N.Row, B.var(N.T))));
  Exec.push_back(B.set(
      JV, B.sub(B.add(cloneExpr(Inner->lo()),
                      B.sub(B.var(N.T), B.at(N.Offs, B.var(IV)))),
                B.lit(1))));
  for (const StmtPtr &S : Inner->body())
    Exec.push_back(cloneStmt(*S));
  Out.push_back(B.doLoop(N.T, B.lit(1), B.var(N.Total),
                         std::move(Exec), nullptr, /*IsParallel=*/true));

  Parent->erase(Parent->begin() + static_cast<long>(Idx));
  for (size_t I = 0; I < Out.size(); ++I)
    Parent->insert(Parent->begin() + static_cast<long>(Idx + I),
                   std::move(Out[I]));
  R.Changed = true;
  R.TotalVar = N.Total;
  return R;
}
