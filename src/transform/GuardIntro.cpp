//===- transform/GuardIntro.cpp -------------------------------*- C++ -*-===//

#include "transform/GuardIntro.h"

#include "ir/Builder.h"
#include "ir/Walk.h"

using namespace simdflat;
using namespace simdflat::transform;
using namespace simdflat::ir;

namespace {

class GuardIntroducer {
public:
  explicit GuardIntroducer(Program &P) : P(P), B(P) {}

  int Count = 0;

  void processBody(Body &Stmts) {
    Body Out;
    for (StmtPtr &SP : Stmts) {
      Stmt &S = *SP;
      switch (S.kind()) {
      case Stmt::Kind::While: {
        auto *W = cast<WhileStmt>(&S);
        processBody(W->body());
        ++Count;
        // Keep the fresh temporary's name, not the VarDecl reference -
        // addFreshVar hands out references into the declaration vector
        // that later insertions may invalidate.
        const std::string T = P.addFreshVar("t", ScalarKind::Bool).Name;
        // t = test ; WHILE (t) { body ; t = test }
        Out.push_back(B.set(T, cloneExpr(W->cond())));
        Body WB = std::move(W->body());
        WB.push_back(B.set(T, cloneExpr(W->cond())));
        Out.push_back(B.whileLoop(B.var(T), std::move(WB)));
        break;
      }
      case Stmt::Kind::Do:
        processBody(cast<DoStmt>(&S)->body());
        Out.push_back(std::move(SP));
        break;
      case Stmt::Kind::Repeat:
        processBody(cast<RepeatStmt>(&S)->body());
        Out.push_back(std::move(SP));
        break;
      case Stmt::Kind::If:
        processBody(cast<IfStmt>(&S)->thenBody());
        processBody(cast<IfStmt>(&S)->elseBody());
        Out.push_back(std::move(SP));
        break;
      case Stmt::Kind::Where:
        processBody(cast<WhereStmt>(&S)->thenBody());
        processBody(cast<WhereStmt>(&S)->elseBody());
        Out.push_back(std::move(SP));
        break;
      case Stmt::Kind::Forall:
        processBody(cast<ForallStmt>(&S)->body());
        Out.push_back(std::move(SP));
        break;
      default:
        Out.push_back(std::move(SP));
        break;
      }
    }
    Stmts = std::move(Out);
  }

private:
  Program &P;
  Builder B;
};

} // namespace

int transform::introduceGuards(Program &P) {
  GuardIntroducer G(P);
  G.processBody(P.body());
  return G.Count;
}
