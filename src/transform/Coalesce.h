//===- transform/Coalesce.h - Loop coalescing baseline ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop coalescing (Polychronopoulos 1987), the related transformation
/// Sec. 7 contrasts with flattening: it merges the iteration variables
/// into a single loop to redistribute iterations freely. For irregular
/// inner bounds it needs an inspector that materializes prefix offsets
/// and a row map (O(total iterations) memory and precompute) - and it
/// changes WHICH iterations a processor executes, so owner-computes
/// locality is lost (our SIMD interpreter counts the resulting
/// communication). Flattening, by contrast, keeps each processor's
/// iterations and only changes WHEN they run.
///
/// Input shape (perfect nest):
/// \code
///   DOALL i = 1, K
///     DO j = 1, H(i)     ! any expression in i
///       BODY
///     ENDDO
///   ENDDO
/// \endcode
///
/// Output:
/// \code
///   coalT = 0
///   DO i = 1, K                    ! inspector
///     coalOffs(i) = coalT
///     coalT = coalT + MAX(0, H(i))
///   ENDDO
///   DO i = 1, K
///     DO j = 1, MAX(0, H(i))
///       coalRow(coalOffs(i) + j) = i
///     ENDDO
///   ENDDO
///   DOALL t = 1, coalT             ! executor
///     i = coalRow(t)
///     j = t - coalOffs(i)
///     BODY
///   ENDDO
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_COALESCE_H
#define SIMDFLAT_TRANSFORM_COALESCE_H

#include "ir/Program.h"

#include <cstdint>
#include <string>

namespace simdflat {
namespace transform {

/// Result of a coalescing attempt.
struct CoalesceResult {
  bool Changed = false;
  std::string Reason;
  /// Name of the introduced total-iterations variable.
  std::string TotalVar;
};

/// Coalesces the first DOALL nest in \p P. The inspector arrays must be
/// dimensioned statically, like any Fortran array: \p MaxOuterIterations
/// bounds coalOffs, \p MaxTotalIterations bounds coalRow.
CoalesceResult coalesceNest(ir::Program &P, int64_t MaxOuterIterations,
                            int64_t MaxTotalIterations);

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_COALESCE_H
