//===- transform/Pipeline.h - One-call compilation driver ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole Sec. 6 story as one entry point: given an F77(D) program,
/// recover GOTO loops, verify safety, flatten the parallel nest at the
/// best valid level, distribute the induction per the machine layout,
/// and SIMDize - producing the program the SIMD interpreter executes,
/// plus a report of what each stage decided (for tools and logs).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_PIPELINE_H
#define SIMDFLAT_TRANSFORM_PIPELINE_H

#include "machine/Machine.h"
#include "transform/Flatten.h"

namespace simdflat {
namespace transform {

/// Options for compileForSimd.
struct PipelineOptions {
  /// Lane layout for the parallel dimension (match the target machine).
  machine::Layout Layout = machine::Layout::Cyclic;
  /// Skip flattening (produce the Fig. 5/14 unflattened SIMD program).
  bool Flatten = true;
  /// Forwarded to flattenNest.
  std::optional<FlattenLevel> ForceLevel;
  bool AssumeInnerMinOneTrip = false;
  bool CheckSafety = true;
};

/// What the pipeline did.
struct PipelineReport {
  int GotoLoopsRecovered = 0;
  bool Flattened = false;
  FlattenLevel LevelApplied = FlattenLevel::General;
  /// Non-empty when flattening was requested but skipped.
  std::string FlattenSkipReason;

  /// Human-readable one-liner per stage.
  std::string summary() const;
};

/// Runs the full pipeline on a copy of \p P and returns the F90simd
/// program. \p Report (optional) receives the stage decisions.
ir::Program compileForSimd(const ir::Program &P,
                           PipelineOptions Opts = {},
                           PipelineReport *Report = nullptr);

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_PIPELINE_H
