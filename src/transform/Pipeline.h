//===- transform/Pipeline.h - One-call compilation driver ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole Sec. 6 story as one entry point: given an F77(D) program,
/// recover GOTO loops, verify safety, flatten the parallel nest at the
/// best valid level, distribute the induction per the machine layout,
/// and SIMDize - producing the program the SIMD interpreter executes,
/// plus a report of what each stage decided (for tools and logs).
///
/// The pipeline is guarded: ir::verifyProgram runs after every stage.
/// A stage that damages the tree is reverted when a safe fallback
/// exists (flatten falls back to the unflattened Fig. 5 path, simplify
/// reverts to the unsimplified tree); otherwise compileForSimd returns
/// a structured PipelineError naming the stage and the verifier issues.
/// It never returns an unverified program.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_PIPELINE_H
#define SIMDFLAT_TRANSFORM_PIPELINE_H

#include "machine/Machine.h"
#include "support/Result.h"
#include "transform/Flatten.h"

#include <memory>

namespace simdflat {
namespace exec {
struct Program;
} // namespace exec

namespace transform {

/// Options for compileForSimd.
struct PipelineOptions {
  /// Lane layout for the parallel dimension (match the target machine).
  machine::Layout Layout = machine::Layout::Cyclic;
  /// Skip flattening (produce the Fig. 5/14 unflattened SIMD program).
  bool Flatten = true;
  /// Forwarded to flattenNest.
  std::optional<FlattenLevel> ForceLevel;
  bool AssumeInnerMinOneTrip = false;
  bool CheckSafety = true;
  /// Run the explicit Fig. 8/9 normalize + guard-introduction rewrites
  /// before flattening. Off by default: the flattener extracts the same
  /// normal form non-destructively through analysis::normalFormOf, so
  /// the explicit passes are for demonstration and differential testing.
  bool ExplicitNormalize = false;
};

/// Verification outcome of one pipeline stage.
struct StageOutcome {
  /// "goto-recovery", "normalize", "guard-intro", "flatten", "simdize",
  /// "simplify".
  std::string Stage;
  /// The stage executed (false: disabled by options or folded into a
  /// later stage's analysis).
  bool Ran = false;
  /// ir::verifyProgram was clean after the stage (meaningless when
  /// !Ran).
  bool Verified = false;
  /// What the stage did, or why it was skipped or reverted.
  std::string Note;
};

/// What the pipeline did.
struct PipelineReport {
  int GotoLoopsRecovered = 0;
  bool Flattened = false;
  FlattenLevel LevelApplied = FlattenLevel::General;
  /// Non-empty when flattening was requested but skipped (or reverted).
  std::string FlattenSkipReason;
  /// Per-stage verification outcomes, in execution order.
  std::vector<StageOutcome> Stages;

  /// Human-readable one-liner per stage.
  std::string summary() const;
};

/// Structured failure of the pipeline: the stage that produced an
/// invalid tree (and could not be reverted), with the verifier issues.
struct PipelineError {
  std::string Stage;
  std::vector<std::string> Issues;

  std::string render() const;
};

/// Runs the full pipeline on a copy of \p P and returns the F90simd
/// program, or a PipelineError naming the failing stage. \p Report
/// (optional) receives the stage decisions either way.
Expected<ir::Program, PipelineError>
compileForSimd(const ir::Program &P, PipelineOptions Opts = {},
               PipelineReport *Report = nullptr);

/// A pipeline product ready for repeated execution: the F90simd tree
/// plus its lowered bytecode. Callers that run one stage many times
/// (benches, the fuzz oracle) hand Code to SimdInterp::setCompiled so
/// lowering happens once per stage, not once per run.
struct CompiledSimdProgram {
  ir::Program Prog;
  std::shared_ptr<const exec::Program> Code;
};

/// compileForSimd followed by one exec::lower of the result. The
/// returned Code is always non-null on success.
Expected<CompiledSimdProgram, PipelineError>
compileForSimdExec(const ir::Program &P, PipelineOptions Opts = {},
                   PipelineReport *Report = nullptr);

/// Identity of one (program, pipeline options) compilation, used as the
/// compiled-program cache key by the serving layer. Text is the
/// canonically printed IR plus an encoding of every option that changes
/// the compiled output, so two sources that parse to the same tree (and
/// differ only in whitespace, comments or statement spelling the
/// printer normalizes) share one cache entry; Hash is its FNV-1a digest.
struct CanonicalKey {
  uint64_t Hash = 0;
  std::string Text;
};

/// Computes the cache identity of compiling \p P under \p Opts. Pure
/// function of its arguments: no pipeline stage runs.
CanonicalKey canonicalKey(const ir::Program &P,
                          const PipelineOptions &Opts = {});

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_PIPELINE_H
