//===- transform/Pipeline.h - One-call compilation driver ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole Sec. 6 story as one entry point: given an F77(D) program,
/// recover GOTO loops, verify safety, flatten the parallel nest at the
/// best valid level, distribute the induction per the machine layout,
/// and SIMDize - producing the program the SIMD interpreter executes,
/// plus a report of what each stage decided (for tools and logs).
///
/// The pipeline is guarded: ir::verifyProgram runs after every stage.
/// A stage that damages the tree is reverted when a safe fallback
/// exists (flatten falls back to the unflattened Fig. 5 path, simplify
/// reverts to the unsimplified tree); otherwise compileForSimd returns
/// a structured PipelineError naming the stage and the verifier issues.
/// It never returns an unverified program.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_PIPELINE_H
#define SIMDFLAT_TRANSFORM_PIPELINE_H

#include "analysis/Profitability.h"
#include "machine/Machine.h"
#include "support/Result.h"
#include "transform/Flatten.h"

#include <memory>

namespace simdflat {
namespace exec {
struct Program;
} // namespace exec

namespace transform {

/// The strategy-selection seam: which loop-nest build the pipeline
/// produces. Historically the pipeline had one global order (flatten
/// then simdize, with the Flatten flag as the only knob); a policy
/// makes the choice explicit and per-compilation, so callers - the CLI
/// via --strategy=, the serving layer via live trip histograms - can
/// build exactly the variant the profitability model ranked best.
///
/// Coalesced builds run the inspector/executor rewrite
/// (transform::coalesceNest) on the recovered nest and skip flattening
/// (the executor is already a single perfectly balanced DOALL); when
/// the nest declines to coalesce, the pipeline falls back to the
/// flattened build and records why. Every strategy ends in the same
/// simdize + simplify tail, so the tree/fuzz oracles gate all three.
struct StrategyPolicy {
  analysis::Strategy Chosen = analysis::Strategy::Flattened;
  /// Static dimensions of the coalesce inspector arrays (Coalesced
  /// only). Runtime totals beyond them trap OutOfBounds, so pick them
  /// from the observed distribution with margin.
  int64_t CoalesceMaxOuter = 64;
  int64_t CoalesceMaxTotal = 4096;

  static StrategyPolicy unflattened() {
    return {analysis::Strategy::Unflattened, 0, 0};
  }
  static StrategyPolicy flattened() {
    return {analysis::Strategy::Flattened, 0, 0};
  }
  static StrategyPolicy coalesced(int64_t MaxOuter, int64_t MaxTotal) {
    return {analysis::Strategy::Coalesced, MaxOuter, MaxTotal};
  }
  /// Adopts a ranked model verdict (bounds only matter for Coalesced).
  static StrategyPolicy fromChoice(const analysis::StrategyChoice &C,
                                   int64_t MaxOuter = 64,
                                   int64_t MaxTotal = 4096) {
    return {C.Primary, MaxOuter, MaxTotal};
  }
};

/// Options for compileForSimd.
struct PipelineOptions {
  /// Lane layout for the parallel dimension (match the target machine).
  machine::Layout Layout = machine::Layout::Cyclic;
  /// Skip flattening (produce the Fig. 5/14 unflattened SIMD program).
  bool Flatten = true;
  /// Forwarded to flattenNest.
  std::optional<FlattenLevel> ForceLevel;
  bool AssumeInnerMinOneTrip = false;
  bool CheckSafety = true;
  /// Run the explicit Fig. 8/9 normalize + guard-introduction rewrites
  /// before flattening. Off by default: the flattener extracts the same
  /// normal form non-destructively through analysis::normalFormOf, so
  /// the explicit passes are for demonstration and differential testing.
  bool ExplicitNormalize = false;
  /// Explicit strategy selection. Unset preserves the legacy behavior
  /// (the Flatten flag picks flattened vs unflattened); set, it
  /// overrides Flatten and may request the coalesced build.
  std::optional<StrategyPolicy> Strategy;
};

/// Verification outcome of one pipeline stage.
struct StageOutcome {
  /// "goto-recovery", "normalize", "guard-intro", "coalesce",
  /// "flatten", "simdize", "simplify".
  std::string Stage;
  /// The stage executed (false: disabled by options or folded into a
  /// later stage's analysis).
  bool Ran = false;
  /// ir::verifyProgram was clean after the stage (meaningless when
  /// !Ran).
  bool Verified = false;
  /// What the stage did, or why it was skipped or reverted.
  std::string Note;
};

/// What the pipeline did.
struct PipelineReport {
  int GotoLoopsRecovered = 0;
  bool Flattened = false;
  FlattenLevel LevelApplied = FlattenLevel::General;
  /// Non-empty when flattening was requested but skipped (or reverted).
  std::string FlattenSkipReason;
  /// Strategy the pipeline actually built, after any fallback (a
  /// declined coalesce falls back to Flattened; a declined flatten to
  /// Unflattened).
  analysis::Strategy StrategyApplied = analysis::Strategy::Unflattened;
  /// Per-stage verification outcomes, in execution order.
  std::vector<StageOutcome> Stages;

  /// Human-readable one-liner per stage.
  std::string summary() const;
};

/// Structured failure of the pipeline: the stage that produced an
/// invalid tree (and could not be reverted), with the verifier issues.
struct PipelineError {
  std::string Stage;
  std::vector<std::string> Issues;

  std::string render() const;
};

/// Runs the full pipeline on a copy of \p P and returns the F90simd
/// program, or a PipelineError naming the failing stage. \p Report
/// (optional) receives the stage decisions either way.
Expected<ir::Program, PipelineError>
compileForSimd(const ir::Program &P, PipelineOptions Opts = {},
               PipelineReport *Report = nullptr);

/// A pipeline product ready for repeated execution: the F90simd tree
/// plus its lowered bytecode. Callers that run one stage many times
/// (benches, the fuzz oracle) hand Code to SimdInterp::setCompiled so
/// lowering happens once per stage, not once per run.
struct CompiledSimdProgram {
  ir::Program Prog;
  std::shared_ptr<const exec::Program> Code;
};

/// compileForSimd followed by one exec::lower of the result. The
/// returned Code is always non-null on success.
Expected<CompiledSimdProgram, PipelineError>
compileForSimdExec(const ir::Program &P, PipelineOptions Opts = {},
                   PipelineReport *Report = nullptr);

/// Identity of one (program, pipeline options) compilation, used as the
/// compiled-program cache key by the serving layer. Text is the
/// canonically printed IR plus an encoding of every option that changes
/// the compiled output, so two sources that parse to the same tree (and
/// differ only in whitespace, comments or statement spelling the
/// printer normalizes) share one cache entry; Hash is its FNV-1a digest.
struct CanonicalKey {
  uint64_t Hash = 0;
  std::string Text;
};

/// Computes the cache identity of compiling \p P under \p Opts. Pure
/// function of its arguments: no pipeline stage runs.
CanonicalKey canonicalKey(const ir::Program &P,
                          const PipelineOptions &Opts = {});

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_PIPELINE_H
