//===- transform/Flatten.h - Loop flattening (Figs. 10-12) -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central transformation. Given a nest
///
/// \code
///   DOALL i = lo, hi          ! outer, parallelizable
///     <Pre>                   ! per-iteration setup ("init2" region)
///     <inner loop>            ! DO / WHILE / REPEAT, trip count varies
///     <Post>                  ! per-iteration wrap-up
///   ENDDO
/// \endcode
///
/// loop flattening lifts the inner loop's BODY into the outer loop and
/// turns the residual inner loop into pure control that advances each
/// (conceptual) processor to its next useful iteration:
///
///  * FlattenLevel::General (Fig. 10) - fully conservative: guard flags
///    t1/t2 cache the test values so guards with side effects are
///    evaluated exactly as often, and in the same order, as in the
///    original nest.
///  * FlattenLevel::Optimized (Fig. 11) - requires side-effect-free
///    control phases and an inner loop that runs at least once per outer
///    iteration; the catch-up loop collapses into a single IF.
///  * FlattenLevel::DoneTest (Fig. 12) - additionally replaces the guard
///    with a last-iteration test, saving the final increment (this is
///    the form Fig. 7 / Fig. 15 SIMDize to).
///
/// With DistributeOuter set, the outer induction is rewritten to a
/// per-lane induction using the LANEINDEX()/NUMLANES() intrinsics
/// (cyclic: start at lane id, stride NUMLANES(); block: contiguous
/// chunks with a per-lane upper bound). On a 1-lane machine these
/// intrinsics are 1, so the distributed program still has the original
/// sequential meaning - which the equivalence tests exploit.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_FLATTEN_H
#define SIMDFLAT_TRANSFORM_FLATTEN_H

#include "ir/Program.h"
#include "machine/Machine.h"

#include <optional>
#include <string>

namespace simdflat {
namespace transform {

/// Which of the paper's three forms to emit.
enum class FlattenLevel { General, Optimized, DoneTest };

/// Returns "general" / "optimized" / "done-test".
const char *flattenLevelName(FlattenLevel L);

/// Options for flattenNest.
struct FlattenOptions {
  /// Pin a specific level; by default the best valid one is chosen
  /// (DoneTest > Optimized > General).
  std::optional<FlattenLevel> Force;
  /// User assertion that the inner loop runs at least once per outer
  /// iteration (the paper asserts pCnt(i) >= 1 for NBFORCE).
  bool AssumeInnerMinOneTrip = false;
  /// Distribute the outer induction across lanes with this layout.
  std::optional<machine::Layout> DistributeOuter;
  /// Verify outer-loop parallelizability with analysis::checkParallelizable
  /// in addition to the DOALL marker.
  bool CheckSafety = true;
};

/// Result of a flattening attempt.
struct FlattenResult {
  bool Changed = false;
  FlattenLevel Applied = FlattenLevel::General;
  /// Failure diagnosis when !Changed.
  std::string Reason;
  /// The outer induction variable (empty for non-counted outer loops).
  std::string OuterIndexVar;
};

/// Finds the first parallel (DOALL) loop in \p P whose body has the
/// [Pre..., inner-loop, Post...] shape and flattens it in place.
FlattenResult flattenNest(ir::Program &P, FlattenOptions Opts = {});

/// Flattens the loop at \p Parent[OuterIdx] (any loop kind; no
/// parallel-marker requirement - the caller asserts safety). Used for
/// GENNEST-shaped WHILE nests and for inner pairs of deep nests.
FlattenResult flattenLoopPairAt(ir::Program &P, ir::Body &Parent,
                                size_t OuterIdx, FlattenOptions Opts = {});

/// Deep variant: flattens inner pairs innermost-first inside the
/// candidate parallel loop, then the outer pair, collapsing a depth-k
/// perfect-ish nest into a single flat loop (Sec. 4: "an extension ...
/// to deeper loop nests is straightforward").
FlattenResult flattenNestDeep(ir::Program &P, FlattenOptions Opts = {});

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_FLATTEN_H
