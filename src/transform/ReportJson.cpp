//===- transform/ReportJson.cpp - PipelineReport -> JSON -------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/ReportJson.h"

using namespace simdflat;
using namespace simdflat::transform;

json::Value transform::toJson(const StageOutcome &S) {
  json::Value V = json::Value::object();
  V.set("stage", S.Stage);
  V.set("ran", S.Ran);
  V.set("verified", S.Verified);
  V.set("note", S.Note);
  return V;
}

json::Value transform::toJson(const PipelineReport &R) {
  json::Value V = json::Value::object();
  V.set("goto_loops_recovered", R.GotoLoopsRecovered);
  V.set("flattened", R.Flattened);
  V.set("level_applied", flattenLevelName(R.LevelApplied));
  V.set("flatten_skip_reason", R.FlattenSkipReason);
  V.set("strategy_applied", analysis::strategyName(R.StrategyApplied));
  json::Value Stages = json::Value::array();
  for (const StageOutcome &S : R.Stages)
    Stages.push(toJson(S));
  V.set("stages", std::move(Stages));
  return V;
}
