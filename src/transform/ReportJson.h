//===- transform/ReportJson.h - PipelineReport -> JSON ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON serialization of the pipeline's stage decisions so flattenc
/// --stats-json and the benches can record what the compiler did next
/// to what the run cost.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_REPORTJSON_H
#define SIMDFLAT_TRANSFORM_REPORTJSON_H

#include "support/Json.h"
#include "transform/Pipeline.h"

namespace simdflat {
namespace transform {

/// One StageOutcome as {stage, ran, verified, note}.
json::Value toJson(const StageOutcome &S);

/// The full report: flattening decision plus per-stage outcomes.
json::Value toJson(const PipelineReport &R);

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_REPORTJSON_H
