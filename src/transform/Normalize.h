//===- transform/Normalize.h - Loop normalization (Fig. 8) -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites every loop into the conservative pre-test normal form of
/// Fig. 8: `init; WHILE (test) { BODY; increment }`. Counted DO loops
/// expand their three phases; post-test REPEAT loops peel the first
/// body execution so the residual loop pre-tests. This pass exists to
/// present and test the paper's normalization stage explicitly; the
/// flattener extracts the same phases non-destructively through
/// analysis::normalFormOf.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_NORMALIZE_H
#define SIMDFLAT_TRANSFORM_NORMALIZE_H

#include "ir/Program.h"

namespace simdflat {
namespace transform {

/// Options for normalizeLoops.
struct NormalizeOptions {
  /// Keep DOALL loops intact (their parallel marker has no WHILE
  /// equivalent); only their bodies are normalized.
  bool SkipParallel = true;
};

/// Normalizes all loops in \p P in place. Returns the number of loops
/// rewritten. If \p PeeledOut is non-null it receives the number of
/// post-test (REPEAT) loops whose first body execution was peeled.
/// Peeling shifts the residual loop's trip count down by one, so a
/// min-one trip guarantee on the original loop does NOT transfer to
/// the residual pre-test loop.
int normalizeLoops(ir::Program &P, NormalizeOptions Opts = {},
                   int *PeeledOut = nullptr);

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_NORMALIZE_H
