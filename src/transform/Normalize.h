//===- transform/Normalize.h - Loop normalization (Fig. 8) -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites every loop into the conservative pre-test normal form of
/// Fig. 8: `init; WHILE (test) { BODY; increment }`. Counted DO loops
/// expand their three phases; post-test REPEAT loops peel the first
/// body execution so the residual loop pre-tests. This pass exists to
/// present and test the paper's normalization stage explicitly; the
/// flattener extracts the same phases non-destructively through
/// analysis::normalFormOf.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_NORMALIZE_H
#define SIMDFLAT_TRANSFORM_NORMALIZE_H

#include "ir/Program.h"

namespace simdflat {
namespace transform {

/// Options for normalizeLoops.
struct NormalizeOptions {
  /// Keep DOALL loops intact (their parallel marker has no WHILE
  /// equivalent); only their bodies are normalized.
  bool SkipParallel = true;
};

/// Normalizes all loops in \p P in place. Returns the number of loops
/// rewritten.
int normalizeLoops(ir::Program &P, NormalizeOptions Opts = {});

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_NORMALIZE_H
