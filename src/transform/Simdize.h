//===- transform/Simdize.h - F77 -> F90simd conversion ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "SIMDizing a loop ... is a straightforward consequence of the SIMD
/// restricted control flow, yet it is the crucial motivation for the
/// concepts introduced in this paper" (Sec. 3). This pass converts an
/// F77(D) program into the F90simd dialect executable by the lockstep
/// SIMD interpreter:
///
///  * A DOALL loop becomes a control loop over lane blocks: each lane
///    owns iterations per the chosen layout, the index variable becomes
///    replicated, and the body is guarded by WHERE(index <= hi) for the
///    ragged final block (this is the Fig. 5 / Fig. 14 shape).
///  * An inner DO whose upper bound varies across lanes becomes
///    `DO j = lo, MAXRED(hi)` with the body under `WHERE (j <= hi)` -
///    "the upper bound L(i') had to be changed into the maximum over all
///    processors ... which necessitated a guard" (Sec. 3).
///  * A WHILE with a lane-varying condition becomes
///    `WHILE ANY(cond) { WHERE (cond) ... }` (Figs. 7, 14, 15).
///  * Lane-varying IFs become WHEREs.
///  * Scalars that carry lane-varying values (or are stored under a
///    lane-varying mask) are replicated, per the Sec. 2 convention.
///
/// Lane variance is computed by a fixpoint over assignments; LANEINDEX()
/// is the variance seed, reductions are variance sinks (their results
/// are broadcast).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TRANSFORM_SIMDIZE_H
#define SIMDFLAT_TRANSFORM_SIMDIZE_H

#include "ir/Program.h"
#include "machine/Machine.h"

namespace simdflat {
namespace transform {

/// Options for simdize.
struct SimdizeOptions {
  /// How DOALL iteration spaces map to lanes (match the machine's data
  /// layout so owner-computes accesses stay communication-free).
  machine::Layout DoAllLayout = machine::Layout::Cyclic;
};

/// Converts \p P (dialect F77) into a new F90simd program. Aborts on
/// unstructured control flow (run the front end's GOTO recovery first)
/// or if \p P is already SIMDized.
ir::Program simdize(const ir::Program &P, SimdizeOptions Opts = {});

} // namespace transform
} // namespace simdflat

#endif // SIMDFLAT_TRANSFORM_SIMDIZE_H
