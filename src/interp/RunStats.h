//===- interp/RunStats.h - Execution statistics and traces -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the experiments report: work-step counts (the paper's
/// Eq. 1/2 iteration counts and Table 2's Force-call counts), cycle/time
/// accounting (Table 1), lane utilization (idle masked lanes are the
/// effect under study) and execution traces (Figs. 4 and 6).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_RUNSTATS_H
#define SIMDFLAT_INTERP_RUNSTATS_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace simdflat {
namespace interp {

/// Which execution engine runs the program. All engines produce
/// identical observable behavior (stores, stats, traces, traps) - the
/// differential fuzzer enforces it. Bytecode lowers once and runs a
/// flat instruction stream while Tree re-walks the AST per statement;
/// HostSimd runs the same bytecode but maps SIMD lanes onto real host
/// vector lanes (AVX2 where the build detected it, a hand-rolled
/// array-of-width fallback otherwise). Tree survives as the reference
/// oracle. Scalar-mode programs have no lanes, so HostSimd degrades to
/// the Bytecode path there by design.
enum class Engine {
  Tree,
  Bytecode,
  HostSimd,
};

/// Stable name for an engine ("tree" / "bytecode" / "hostsimd").
inline const char *engineName(Engine E) {
  switch (E) {
  case Engine::Tree:
    return "tree";
  case Engine::Bytecode:
    return "bytecode";
  case Engine::HostSimd:
    return "hostsimd";
  }
  return "bytecode";
}

/// Parses an engine name; returns false if \p Name matches none.
inline bool engineFromName(const std::string &Name, Engine &Out) {
  if (Name == "tree") {
    Out = Engine::Tree;
    return true;
  }
  if (Name == "bytecode") {
    Out = Engine::Bytecode;
    return true;
  }
  if (Name == "hostsimd") {
    Out = Engine::HostSimd;
    return true;
  }
  return false;
}

/// Counters accumulated by one execution.
struct RunStats {
  /// Executions of designated "work" statements (assignments to
  /// WorkTargets arrays, calls to WorkCalls externs). On the SIMD
  /// machine this counts vector steps; on MIMD/scalar, executions.
  int64_t WorkSteps = 0;
  /// Vector instructions issued (SIMD) / operations executed (scalar).
  int64_t Instructions = 0;
  /// Sum over work steps of the number of active lanes.
  int64_t WorkActiveLanes = 0;
  /// Sum over work steps of the lane width (Gran).
  int64_t WorkTotalLanes = 0;
  /// Accesses to distributed array elements homed on another lane. The
  /// paper excludes communication; our kernels keep this zero (tested).
  int64_t CommAccesses = 0;
  /// Model cycles consumed.
  double Cycles = 0.0;
  /// Cycles scaled by the machine's SecondsPerCycle.
  double Seconds = 0.0;

  /// Fraction of work-step lane slots doing useful work (1.0 = no idle
  /// processors). The paper's Fig. 6 trace shows exactly these gaps.
  /// A run with no work steps reports 0.0, not 1.0: "perfect
  /// utilization" for doing nothing would skew bench aggregation.
  double workUtilization() const {
    return WorkTotalLanes == 0
               ? 0.0
               : static_cast<double>(WorkActiveLanes) /
                     static_cast<double>(WorkTotalLanes);
  }

  /// Lane accounting sanity: active lane slots can never exceed total
  /// lane slots (padded tail lanes count toward the total but are idle,
  /// never active), and neither count may be negative. A record that
  /// violates this would report a >100% utilization downstream;
  /// StatsJson refuses to deserialize one.
  bool laneAccountingConsistent() const {
    return WorkActiveLanes >= 0 && WorkTotalLanes >= 0 &&
           WorkActiveLanes <= WorkTotalLanes;
  }
};

/// A recorded execution trace: one entry per work step with the values of
/// the watched (integer) variables on every lane plus the activity mask.
struct Trace {
  /// Names of watched variables (set via RunOptions::Watch).
  std::vector<std::string> Watch;
  int64_t Lanes = 1;

  struct Step {
    /// Values indexed [watchIdx * Lanes + lane].
    std::vector<int64_t> Values;
    /// Activity per lane (scalar machine: always 1).
    std::vector<uint8_t> Active;
  };
  std::vector<Step> Steps;

  int64_t value(size_t StepIdx, size_t WatchIdx, int64_t Lane) const {
    return Steps[StepIdx]
        .Values[WatchIdx * static_cast<size_t>(Lanes) +
                static_cast<size_t>(Lane)];
  }
  bool active(size_t StepIdx, int64_t Lane) const {
    return Steps[StepIdx].Active[static_cast<size_t>(Lane)] != 0;
  }
};

/// How often (in charged instructions) the engines poll the wall clock
/// for RunOptions::Deadline. Checks land at instruction counts 1, 65,
/// 129, ...: both engines charge identical instruction streams, so a
/// deadline that is already expired when the run starts traps at the
/// same statement with the same detail under Tree and Bytecode - the
/// agreement the differential tests pin. Polling every instruction
/// would put a clock read on the dispatch hot path.
constexpr int64_t DeadlineCheckInterval = 64;

/// Options controlling statistics collection and safety limits.
struct RunOptions {
  /// Array/variable names whose assignments count as work steps.
  std::vector<std::string> WorkTargets;
  /// Extern function names whose calls count as work steps.
  std::vector<std::string> WorkCalls;
  /// Integer variables snapshotted into the trace at each work step.
  /// Empty disables tracing.
  std::vector<std::string> Watch;
  /// Raise a FuelExhausted trap after this many loop iterations (guards
  /// against transformed code that fails to terminate).
  int64_t MaxLoopIterations = 200'000'000;
  /// Watchdog fuel budget: raise a FuelExhausted trap once this many
  /// machine instructions have issued. 0 means unlimited. Unlike
  /// MaxLoopIterations (a backstop for compiler bugs) the fuel budget is
  /// a per-run serving limit: a hosted caller sets it so no request can
  /// consume unbounded simulator time.
  int64_t Fuel = 0;
  /// Wall-clock deadline for this run (unset = none). Checked alongside
  /// fuel every DeadlineCheckInterval charged instructions; once the
  /// clock passes it the run unwinds with a DeadlineExpired trap. A
  /// serving layer derives it from the request's end-to-end budget so a
  /// stuck or oversized program cannot hold a worker past its slot.
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  /// Execution engine. Bytecode is the default hot path; Tree is the
  /// tree-walking reference oracle the differential tests compare
  /// against; HostSimd runs the bytecode's SIMD lanes on real host
  /// vector lanes.
  Engine Eng = Engine::Bytecode;
};

/// True when \p Opts carries a deadline, \p Instructions is a poll
/// point, and the clock has passed it. Shared by every engine's
/// charge() so the poll cadence cannot drift between them.
inline bool deadlineExpired(const RunOptions &Opts, int64_t Instructions) {
  return Opts.Deadline && Instructions % DeadlineCheckInterval == 1 &&
         std::chrono::steady_clock::now() >= *Opts.Deadline;
}

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_RUNSTATS_H
