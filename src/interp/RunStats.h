//===- interp/RunStats.h - Execution statistics and traces -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the experiments report: work-step counts (the paper's
/// Eq. 1/2 iteration counts and Table 2's Force-call counts), cycle/time
/// accounting (Table 1), lane utilization (idle masked lanes are the
/// effect under study) and execution traces (Figs. 4 and 6).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_RUNSTATS_H
#define SIMDFLAT_INTERP_RUNSTATS_H

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace simdflat {
namespace interp {

/// Which execution engine runs the program. All engines produce
/// identical observable behavior (stores, stats, traces, traps) - the
/// differential fuzzer enforces it. Bytecode lowers once and runs a
/// flat instruction stream while Tree re-walks the AST per statement;
/// HostSimd runs the same bytecode but maps SIMD lanes onto real host
/// vector lanes (AVX2 where the build detected it, a hand-rolled
/// array-of-width fallback otherwise). Native compiles the lowered
/// bytecode to a real C++ translation unit (codegen::CppEmitter), builds
/// it with the host toolchain and runs the dlopen'd loops; when no
/// toolchain is available (SIMDFLAT_ENABLE_JIT=OFF, missing compiler,
/// compile failure) it degrades to the Bytecode path, so selecting it is
/// always safe. Tree survives as the reference oracle. Scalar-mode
/// programs have no lanes, so HostSimd and Native degrade to the
/// Bytecode path there by design.
enum class Engine {
  Tree,
  Bytecode,
  HostSimd,
  Native,
};

/// Stable name for an engine ("tree" / "bytecode" / "hostsimd" /
/// "native").
inline const char *engineName(Engine E) {
  switch (E) {
  case Engine::Tree:
    return "tree";
  case Engine::Bytecode:
    return "bytecode";
  case Engine::HostSimd:
    return "hostsimd";
  case Engine::Native:
    return "native";
  }
  return "bytecode";
}

/// Parses an engine name; returns false if \p Name matches none.
inline bool engineFromName(const std::string &Name, Engine &Out) {
  if (Name == "tree") {
    Out = Engine::Tree;
    return true;
  }
  if (Name == "bytecode") {
    Out = Engine::Bytecode;
    return true;
  }
  if (Name == "hostsimd") {
    Out = Engine::HostSimd;
    return true;
  }
  if (Name == "native") {
    Out = Engine::Native;
    return true;
  }
  return false;
}

/// Compact distribution of observed inner-loop trip counts for one
/// loop nest. Small counts (the interesting regime for the Sec. 6
/// model: a trip of 0 vs 3 vs 7 changes the strategy ranking) are
/// counted exactly; everything >= NumExact falls into log2-width
/// buckets, so the footprint is fixed no matter how hot the loop is.
/// Recording is uncharged bookkeeping: it never contributes to
/// Instructions/Cycles, so histogram collection cannot perturb the
/// counters the differential oracle compares.
struct TripHistogram {
  /// Trip counts 0..NumExact-1 are counted exactly.
  static constexpr int64_t NumExact = 8;
  /// Buckets for trips >= NumExact: bucket b holds [2^(b+3), 2^(b+4)).
  static constexpr int64_t NumLog2 = 61;
  /// Serialization version of the histogram block (StatsJson).
  static constexpr int64_t Version = 1;

  std::array<int64_t, NumExact> Exact{};
  std::array<int64_t, NumLog2> Log2{};
  /// Trip counts recorded (== sum of all bucket counts).
  int64_t Samples = 0;
  /// Exact sum of recorded trip counts (buckets quantize; this does
  /// not, so mean() is exact).
  int64_t Sum = 0;
  /// Largest trip count recorded.
  int64_t Max = 0;

  /// Bucket index for \p Trips >= NumExact (0-based into Log2).
  static int64_t log2Bucket(int64_t Trips) {
    int64_t B = 0;
    for (int64_t T = Trips >> 4; T > 0; T >>= 1)
      ++B;
    return std::min<int64_t>(B, NumLog2 - 1);
  }
  /// Inclusive lower edge of log2 bucket \p B.
  static int64_t log2BucketLo(int64_t B) { return int64_t{1} << (B + 3); }
  /// Deterministic representative trip count for log2 bucket \p B (the
  /// midpoint of [lo, 2*lo)).
  static int64_t log2BucketMid(int64_t B) {
    int64_t Lo = log2BucketLo(B);
    return Lo + (Lo >> 1);
  }

  void record(int64_t Trips) {
    if (Trips < 0)
      Trips = 0;
    if (Trips < NumExact)
      ++Exact[static_cast<size_t>(Trips)];
    else
      ++Log2[static_cast<size_t>(log2Bucket(Trips))];
    ++Samples;
    Sum += Trips;
    Max = std::max(Max, Trips);
  }

  void merge(const TripHistogram &O) {
    for (size_t I = 0; I < Exact.size(); ++I)
      Exact[I] += O.Exact[I];
    for (size_t I = 0; I < Log2.size(); ++I)
      Log2[I] += O.Log2[I];
    Samples += O.Samples;
    Sum += O.Sum;
    Max = std::max(Max, O.Max);
  }

  bool empty() const { return Samples == 0; }
  double mean() const {
    return Samples == 0 ? 0.0
                        : static_cast<double>(Sum) /
                              static_cast<double>(Samples);
  }

  /// Bucket counts are internally consistent: non-negative, they sum to
  /// Samples, and Sum/Max are plausible for the occupied buckets.
  bool consistent() const {
    int64_t N = 0;
    for (int64_t C : Exact) {
      if (C < 0)
        return false;
      N += C;
    }
    for (int64_t C : Log2) {
      if (C < 0)
        return false;
      N += C;
    }
    return N == Samples && Sum >= 0 && Max >= 0 &&
           (Samples > 0 || (Sum == 0 && Max == 0));
  }
};

/// Trip statistics for one instrumented loop nest: where it lives (the
/// lowered loop's label) and the distribution of its per-activation
/// trip counts. SIMD engines record one sample per lane activation of
/// the loop; scalar engines one per execution of the loop.
struct NestTripStats {
  /// Stable label assigned at lowering ("L0 do", "L2 while", ...).
  std::string Name;
  /// Nesting depth at lowering time (0 = outermost).
  int64_t Depth = 0;
  TripHistogram Hist;
};

/// Counters accumulated by one execution.
struct RunStats {
  /// Executions of designated "work" statements (assignments to
  /// WorkTargets arrays, calls to WorkCalls externs). On the SIMD
  /// machine this counts vector steps; on MIMD/scalar, executions.
  int64_t WorkSteps = 0;
  /// Vector instructions issued (SIMD) / operations executed (scalar).
  int64_t Instructions = 0;
  /// Sum over work steps of the number of active lanes.
  int64_t WorkActiveLanes = 0;
  /// Sum over work steps of the lane width (Gran).
  int64_t WorkTotalLanes = 0;
  /// Accesses to distributed array elements homed on another lane. The
  /// paper excludes communication; our kernels keep this zero (tested).
  int64_t CommAccesses = 0;
  /// Model cycles consumed.
  double Cycles = 0.0;
  /// Cycles scaled by the machine's SecondsPerCycle.
  double Seconds = 0.0;
  /// Per-nest trip-count distributions, indexed by the lowered
  /// program's loop id (exec::Program::LoopNames order). Populated
  /// identically by the bytecode and hostsimd engines; the tree oracle
  /// leaves it empty (it is informational telemetry, never compared by
  /// the differential oracle and never charged against fuel/cycles).
  std::vector<NestTripStats> TripNests;

  /// Folds \p O's per-nest histograms into this record, matching nests
  /// by loop id (name wins when ids disagree, which only happens when
  /// merging stats of different programs - then nests are appended).
  void mergeTripNests(const std::vector<NestTripStats> &O) {
    for (const NestTripStats &N : O) {
      NestTripStats *Dst = nullptr;
      for (NestTripStats &Mine : TripNests)
        if (Mine.Name == N.Name) {
          Dst = &Mine;
          break;
        }
      if (!Dst) {
        TripNests.push_back(NestTripStats{N.Name, N.Depth, {}});
        Dst = &TripNests.back();
      }
      Dst->Hist.merge(N.Hist);
    }
  }

  /// Fraction of work-step lane slots doing useful work (1.0 = no idle
  /// processors). The paper's Fig. 6 trace shows exactly these gaps.
  /// A run with no work steps reports 0.0, not 1.0: "perfect
  /// utilization" for doing nothing would skew bench aggregation.
  double workUtilization() const {
    return WorkTotalLanes == 0
               ? 0.0
               : static_cast<double>(WorkActiveLanes) /
                     static_cast<double>(WorkTotalLanes);
  }

  /// Lane accounting sanity: active lane slots can never exceed total
  /// lane slots (padded tail lanes count toward the total but are idle,
  /// never active), and neither count may be negative. A record that
  /// violates this would report a >100% utilization downstream;
  /// StatsJson refuses to deserialize one.
  bool laneAccountingConsistent() const {
    return WorkActiveLanes >= 0 && WorkTotalLanes >= 0 &&
           WorkActiveLanes <= WorkTotalLanes;
  }
};

/// A recorded execution trace: one entry per work step with the values of
/// the watched (integer) variables on every lane plus the activity mask.
struct Trace {
  /// Names of watched variables (set via RunOptions::Watch).
  std::vector<std::string> Watch;
  int64_t Lanes = 1;

  struct Step {
    /// Values indexed [watchIdx * Lanes + lane].
    std::vector<int64_t> Values;
    /// Activity per lane (scalar machine: always 1).
    std::vector<uint8_t> Active;
  };
  std::vector<Step> Steps;

  int64_t value(size_t StepIdx, size_t WatchIdx, int64_t Lane) const {
    return Steps[StepIdx]
        .Values[WatchIdx * static_cast<size_t>(Lanes) +
                static_cast<size_t>(Lane)];
  }
  bool active(size_t StepIdx, int64_t Lane) const {
    return Steps[StepIdx].Active[static_cast<size_t>(Lane)] != 0;
  }
};

/// How often (in charged instructions) the engines poll the wall clock
/// for RunOptions::Deadline. Checks land at instruction counts 1, 65,
/// 129, ...: both engines charge identical instruction streams, so a
/// deadline that is already expired when the run starts traps at the
/// same statement with the same detail under Tree and Bytecode - the
/// agreement the differential tests pin. Polling every instruction
/// would put a clock read on the dispatch hot path.
constexpr int64_t DeadlineCheckInterval = 64;

/// Options controlling statistics collection and safety limits.
struct RunOptions {
  /// Array/variable names whose assignments count as work steps.
  std::vector<std::string> WorkTargets;
  /// Extern function names whose calls count as work steps.
  std::vector<std::string> WorkCalls;
  /// Integer variables snapshotted into the trace at each work step.
  /// Empty disables tracing.
  std::vector<std::string> Watch;
  /// Raise a FuelExhausted trap after this many loop iterations (guards
  /// against transformed code that fails to terminate).
  int64_t MaxLoopIterations = 200'000'000;
  /// Watchdog fuel budget: raise a FuelExhausted trap once this many
  /// machine instructions have issued. 0 means unlimited. Unlike
  /// MaxLoopIterations (a backstop for compiler bugs) the fuel budget is
  /// a per-run serving limit: a hosted caller sets it so no request can
  /// consume unbounded simulator time.
  int64_t Fuel = 0;
  /// Wall-clock deadline for this run (unset = none). Checked alongside
  /// fuel every DeadlineCheckInterval charged instructions; once the
  /// clock passes it the run unwinds with a DeadlineExpired trap. A
  /// serving layer derives it from the request's end-to-end budget so a
  /// stuck or oversized program cannot hold a worker past its slot.
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  /// Execution engine. Bytecode is the default hot path; Tree is the
  /// tree-walking reference oracle the differential tests compare
  /// against; HostSimd runs the bytecode's SIMD lanes on real host
  /// vector lanes.
  Engine Eng = Engine::Bytecode;
};

/// True when \p Opts carries a deadline, \p Instructions is a poll
/// point, and the clock has passed it. Shared by every engine's
/// charge() so the poll cadence cannot drift between them.
inline bool deadlineExpired(const RunOptions &Opts, int64_t Instructions) {
  return Opts.Deadline && Instructions % DeadlineCheckInterval == 1 &&
         std::chrono::steady_clock::now() >= *Opts.Deadline;
}

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_RUNSTATS_H
