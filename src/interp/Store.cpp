//===- interp/Store.cpp ---------------------------------------*- C++ -*-===//

#include "interp/Store.h"

#include "support/Error.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

DataStore::DataStore(const Program &P, int64_t NumLanes)
    : Prog(&P), Lanes(NumLanes) {
  assert(NumLanes >= 1 && "store needs at least one lane");
  for (const VarDecl &V : P.vars()) {
    Slot S;
    S.Decl = &V;
    if (V.isArray())
      S.Width = V.numElements();
    else
      S.Width = V.Distribution == Dist::Replicated ? Lanes : 1;
    if (V.Kind == ScalarKind::Real)
      S.R.assign(static_cast<size_t>(S.Width), 0.0);
    else
      S.I.assign(static_cast<size_t>(S.Width), 0);
    Slots.emplace(V.Name, std::move(S));
  }
}

Slot &DataStore::slot(const std::string &Name) {
  auto It = Slots.find(Name);
  if (It == Slots.end())
    reportFatalError("store: undeclared variable '" + Name + "'");
  return It->second;
}

const Slot &DataStore::slot(const std::string &Name) const {
  auto It = Slots.find(Name);
  if (It == Slots.end())
    reportFatalError("store: undeclared variable '" + Name + "'");
  return It->second;
}

void DataStore::setInt(const std::string &Name, int64_t V) {
  Slot &S = slot(Name);
  assert(S.Decl->isScalar() && !S.isReal() && "setInt on wrong slot");
  S.I.assign(S.I.size(), V);
}

void DataStore::setReal(const std::string &Name, double V) {
  Slot &S = slot(Name);
  assert(S.Decl->isScalar() && S.isReal() && "setReal on wrong slot");
  S.R.assign(S.R.size(), V);
}

void DataStore::setBool(const std::string &Name, bool V) {
  Slot &S = slot(Name);
  assert(S.Decl->isScalar() && S.Decl->Kind == ScalarKind::Bool &&
         "setBool on wrong slot");
  S.I.assign(S.I.size(), V ? 1 : 0);
}

int64_t DataStore::getInt(const std::string &Name) const {
  const Slot &S = slot(Name);
  assert(S.Decl->isScalar() && !S.isReal() && "getInt on wrong slot");
  return S.I[0];
}

double DataStore::getReal(const std::string &Name) const {
  const Slot &S = slot(Name);
  assert(S.Decl->isScalar() && S.isReal() && "getReal on wrong slot");
  return S.R[0];
}

bool DataStore::getBool(const std::string &Name) const {
  const Slot &S = slot(Name);
  assert(S.Decl->isScalar() && S.Decl->Kind == ScalarKind::Bool &&
         "getBool on wrong slot");
  return S.I[0] != 0;
}

int64_t DataStore::getIntLane(const std::string &Name, int64_t Lane) const {
  const Slot &S = slot(Name);
  assert(S.Decl->isScalar() && !S.isReal() && "getIntLane on wrong slot");
  assert(Lane >= 0 && Lane < S.Width && "lane out of range");
  return S.I[static_cast<size_t>(Lane)];
}

void DataStore::setIntLane(const std::string &Name, int64_t Lane, int64_t V) {
  Slot &S = slot(Name);
  assert(S.Decl->isScalar() && !S.isReal() && "setIntLane on wrong slot");
  assert(Lane >= 0 && Lane < S.Width && "lane out of range");
  S.I[static_cast<size_t>(Lane)] = V;
}

void DataStore::setIntArray(const std::string &Name,
                            std::span<const int64_t> Values) {
  Slot &S = slot(Name);
  assert(S.Decl->isArray() && !S.isReal() && "setIntArray on wrong slot");
  if (static_cast<int64_t>(Values.size()) != S.Width)
    reportFatalError("store: size mismatch filling '" + Name + "'");
  S.I.assign(Values.begin(), Values.end());
}

void DataStore::setRealArray(const std::string &Name,
                             std::span<const double> Values) {
  Slot &S = slot(Name);
  assert(S.Decl->isArray() && S.isReal() && "setRealArray on wrong slot");
  if (static_cast<int64_t>(Values.size()) != S.Width)
    reportFatalError("store: size mismatch filling '" + Name + "'");
  S.R.assign(Values.begin(), Values.end());
}

std::vector<int64_t> DataStore::getIntArray(const std::string &Name) const {
  const Slot &S = slot(Name);
  assert(S.Decl->isArray() && !S.isReal() && "getIntArray on wrong slot");
  return S.I;
}

std::vector<double> DataStore::getRealArray(const std::string &Name) const {
  const Slot &S = slot(Name);
  assert(S.Decl->isArray() && S.isReal() && "getRealArray on wrong slot");
  return S.R;
}

int64_t DataStore::getIntAt(const std::string &Name,
                            std::span<const int64_t> Indices) const {
  const Slot &S = slot(Name);
  int64_t Flat = flatIndex(*S.Decl, Indices);
  if (Flat < 0)
    reportFatalError("store: index out of bounds reading '" + Name + "'");
  return S.I[static_cast<size_t>(Flat)];
}

double DataStore::getRealAt(const std::string &Name,
                            std::span<const int64_t> Indices) const {
  const Slot &S = slot(Name);
  int64_t Flat = flatIndex(*S.Decl, Indices);
  if (Flat < 0)
    reportFatalError("store: index out of bounds reading '" + Name + "'");
  return S.R[static_cast<size_t>(Flat)];
}

void DataStore::setIntAt(const std::string &Name,
                         std::span<const int64_t> Indices, int64_t V) {
  Slot &S = slot(Name);
  int64_t Flat = flatIndex(*S.Decl, Indices);
  if (Flat < 0)
    reportFatalError("store: index out of bounds writing '" + Name + "'");
  S.I[static_cast<size_t>(Flat)] = V;
}

void DataStore::setRealAt(const std::string &Name,
                          std::span<const int64_t> Indices, double V) {
  Slot &S = slot(Name);
  int64_t Flat = flatIndex(*S.Decl, Indices);
  if (Flat < 0)
    reportFatalError("store: index out of bounds writing '" + Name + "'");
  S.R[static_cast<size_t>(Flat)] = V;
}

int64_t DataStore::flatIndex(const VarDecl &Decl,
                             std::span<const int64_t> Indices) {
  assert(Indices.size() == Decl.Dims.size() && "rank mismatch");
  int64_t Flat = 0;
  for (size_t D = 0; D < Indices.size(); ++D) {
    int64_t Idx = Indices[D];
    if (Idx < 1 || Idx > Decl.Dims[D])
      return -1;
    Flat = Flat * Decl.Dims[D] + (Idx - 1);
  }
  return Flat;
}
