//===- interp/Store.h - Logical data store ----------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for a program's variables. Arrays are stored *logically*
/// (flat, machine-independent) so that results can be compared across the
/// scalar, MIMD and SIMD executions bit for bit; the SIMD interpreter
/// separately consults the machine layout for cost and communication
/// accounting. Replicated scalars hold one value per lane.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_STORE_H
#define SIMDFLAT_INTERP_STORE_H

#include "interp/Value.h"
#include "ir/Program.h"

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace simdflat {
namespace interp {

/// Storage of one variable.
struct Slot {
  const ir::VarDecl *Decl = nullptr;
  /// Number of stored values: scalars hold 1 (Control) or Lanes
  /// (Replicated); arrays hold numElements().
  int64_t Width = 0;
  std::vector<int64_t> I;
  std::vector<double> R;

  bool isReal() const { return Decl->Kind == ir::ScalarKind::Real; }
};

/// All variables of one program instance. Lanes is 1 on the scalar
/// machine (Replicated degenerates to Control) and Gran on the SIMD
/// machine.
class DataStore {
public:
  DataStore(const ir::Program &P, int64_t Lanes);

  const ir::Program &program() const { return *Prog; }
  int64_t lanes() const { return Lanes; }

  /// Returns the slot for \p Name; fatal if undeclared.
  Slot &slot(const std::string &Name);
  const Slot &slot(const std::string &Name) const;

  /// \name Whole-value access (tests and harnesses)
  /// @{

  /// Sets a scalar integer/logical; broadcasts across lanes if the
  /// variable is replicated.
  void setInt(const std::string &Name, int64_t V);
  void setReal(const std::string &Name, double V);
  void setBool(const std::string &Name, bool V);

  /// Reads a scalar; for replicated scalars returns lane 0.
  int64_t getInt(const std::string &Name) const;
  double getReal(const std::string &Name) const;
  bool getBool(const std::string &Name) const;

  /// Per-lane scalar access (replicated variables).
  int64_t getIntLane(const std::string &Name, int64_t Lane) const;
  void setIntLane(const std::string &Name, int64_t Lane, int64_t V);

  /// Fills an integer array from \p Values (must match numElements()).
  void setIntArray(const std::string &Name, std::span<const int64_t> Values);
  void setRealArray(const std::string &Name, std::span<const double> Values);

  /// Copies array contents out.
  std::vector<int64_t> getIntArray(const std::string &Name) const;
  std::vector<double> getRealArray(const std::string &Name) const;

  /// Single-element array access with 1-based Fortran indices.
  int64_t getIntAt(const std::string &Name,
                   std::span<const int64_t> Indices) const;
  double getRealAt(const std::string &Name,
                   std::span<const int64_t> Indices) const;
  void setIntAt(const std::string &Name, std::span<const int64_t> Indices,
                int64_t V);
  void setRealAt(const std::string &Name, std::span<const int64_t> Indices,
                 double V);
  /// @}

  /// Row-major flat index for 1-based \p Indices into \p Decl; returns -1
  /// if any index is out of bounds.
  static int64_t flatIndex(const ir::VarDecl &Decl,
                           std::span<const int64_t> Indices);

private:
  const ir::Program *Prog;
  int64_t Lanes;
  std::unordered_map<std::string, Slot> Slots;
};

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_STORE_H
