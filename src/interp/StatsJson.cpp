//===- interp/StatsJson.cpp - RunStats/Trace <-> JSON ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/StatsJson.h"

using namespace simdflat;
using namespace simdflat::interp;

json::Value interp::toJson(const RunStats &S) {
  json::Value V = json::Value::object();
  V.set("work_steps", S.WorkSteps);
  V.set("instructions", S.Instructions);
  V.set("work_active_lanes", S.WorkActiveLanes);
  V.set("work_total_lanes", S.WorkTotalLanes);
  V.set("comm_accesses", S.CommAccesses);
  V.set("cycles", S.Cycles);
  V.set("seconds", S.Seconds);
  V.set("work_utilization", S.workUtilization());
  return V;
}

json::Value interp::toJson(const RunStats &S, Engine E) {
  json::Value V = toJson(S);
  V.set("engine", engineName(E));
  return V;
}

namespace {

/// Reads an optional member of \p V into \p Out with type checking.
/// Returns false (setting \p Err) on a type mismatch; absence is fine.
bool readInt(const json::Value &V, const char *Key, int64_t &Out,
             json::JsonError &Err) {
  const json::Value *M = V.get(Key);
  if (!M)
    return true;
  if (!M->isInt()) {
    Err = {std::string("expected integer for '") + Key + "'", 0};
    return false;
  }
  Out = M->asInt();
  return true;
}

bool readDouble(const json::Value &V, const char *Key, double &Out,
                json::JsonError &Err) {
  const json::Value *M = V.get(Key);
  if (!M)
    return true;
  if (!M->isNumber()) {
    Err = {std::string("expected number for '") + Key + "'", 0};
    return false;
  }
  Out = M->asDouble();
  return true;
}

} // namespace

Expected<RunStats, json::JsonError>
interp::runStatsFromJson(const json::Value &V) {
  if (!V.isObject())
    return json::JsonError{"RunStats must be a JSON object", 0};
  RunStats S;
  json::JsonError Err;
  if (!readInt(V, "work_steps", S.WorkSteps, Err) ||
      !readInt(V, "instructions", S.Instructions, Err) ||
      !readInt(V, "work_active_lanes", S.WorkActiveLanes, Err) ||
      !readInt(V, "work_total_lanes", S.WorkTotalLanes, Err) ||
      !readInt(V, "comm_accesses", S.CommAccesses, Err) ||
      !readDouble(V, "cycles", S.Cycles, Err) ||
      !readDouble(V, "seconds", S.Seconds, Err))
    return Err;
  // Padded-tail hardening: a record claiming more active lane slots
  // than total lane slots (or negative counts) would round-trip into a
  // >100% utilization. No engine can produce one - padded lanes charge
  // the total but are never active - so such a record is corrupt.
  if (!S.laneAccountingConsistent())
    return json::JsonError{
        "work_active_lanes exceeds work_total_lanes (or a lane count "
        "is negative): padded lanes are idle, never active",
        0};
  return S;
}

json::Value interp::toJson(const Trace &T) {
  json::Value V = json::Value::object();
  json::Value Watch = json::Value::array();
  for (const std::string &W : T.Watch)
    Watch.push(W);
  V.set("watch", std::move(Watch));
  V.set("lanes", T.Lanes);
  json::Value Steps = json::Value::array();
  for (const Trace::Step &S : T.Steps) {
    json::Value Step = json::Value::object();
    json::Value Values = json::Value::array();
    for (int64_t X : S.Values)
      Values.push(X);
    json::Value Active = json::Value::array();
    for (uint8_t A : S.Active)
      Active.push(A != 0);
    Step.set("values", std::move(Values));
    Step.set("active", std::move(Active));
    Steps.push(std::move(Step));
  }
  V.set("steps", std::move(Steps));
  return V;
}
