//===- interp/StatsJson.cpp - RunStats/Trace <-> JSON ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/StatsJson.h"

using namespace simdflat;
using namespace simdflat::interp;

json::Value interp::toJson(const RunStats &S) {
  json::Value V = json::Value::object();
  V.set("work_steps", S.WorkSteps);
  V.set("instructions", S.Instructions);
  V.set("work_active_lanes", S.WorkActiveLanes);
  V.set("work_total_lanes", S.WorkTotalLanes);
  V.set("comm_accesses", S.CommAccesses);
  V.set("cycles", S.Cycles);
  V.set("seconds", S.Seconds);
  V.set("work_utilization", S.workUtilization());
  // Versioned telemetry block: per-nest trip histograms, present only
  // when the run recorded any. Log2 buckets are emitted sparsely (most
  // of the 61 are empty); the version gates the bucketization scheme,
  // so a reader never mixes buckets laid out under different rules.
  if (!S.TripNests.empty()) {
    json::Value TH = json::Value::object();
    TH.set("version", static_cast<int64_t>(TripHistogram::Version));
    json::Value Nests = json::Value::array();
    for (const NestTripStats &N : S.TripNests) {
      json::Value NV = json::Value::object();
      NV.set("name", N.Name);
      NV.set("depth", N.Depth);
      NV.set("samples", N.Hist.Samples);
      NV.set("sum", N.Hist.Sum);
      NV.set("max", N.Hist.Max);
      json::Value Exact = json::Value::array();
      for (int64_t C : N.Hist.Exact)
        Exact.push(C);
      NV.set("exact", std::move(Exact));
      json::Value Log2 = json::Value::object();
      for (size_t B = 0; B < N.Hist.Log2.size(); ++B)
        if (N.Hist.Log2[B] != 0)
          Log2.set(std::to_string(B), N.Hist.Log2[B]);
      NV.set("log2", std::move(Log2));
      Nests.push(std::move(NV));
    }
    TH.set("nests", std::move(Nests));
    V.set("trip_histogram", std::move(TH));
  }
  return V;
}

json::Value interp::toJson(const RunStats &S, Engine E) {
  json::Value V = toJson(S);
  V.set("engine", engineName(E));
  return V;
}

namespace {

/// Reads an optional member of \p V into \p Out with type checking.
/// Returns false (setting \p Err) on a type mismatch; absence is fine.
bool readInt(const json::Value &V, const char *Key, int64_t &Out,
             json::JsonError &Err) {
  const json::Value *M = V.get(Key);
  if (!M)
    return true;
  if (!M->isInt()) {
    Err = {std::string("expected integer for '") + Key + "'", 0};
    return false;
  }
  Out = M->asInt();
  return true;
}

bool readDouble(const json::Value &V, const char *Key, double &Out,
                json::JsonError &Err) {
  const json::Value *M = V.get(Key);
  if (!M)
    return true;
  if (!M->isNumber()) {
    Err = {std::string("expected number for '") + Key + "'", 0};
    return false;
  }
  Out = M->asDouble();
  return true;
}

/// Parses the versioned trip_histogram block into \p S.TripNests.
/// Absence is fine; a present block must carry the exact version this
/// build writes (the bucketization scheme is not self-describing) and
/// internally consistent histograms.
bool readTripHistogram(const json::Value &V, RunStats &S,
                       json::JsonError &Err) {
  const json::Value *TH = V.get("trip_histogram");
  if (!TH)
    return true;
  if (!TH->isObject()) {
    Err = {"expected object for 'trip_histogram'", 0};
    return false;
  }
  const json::Value *Ver = TH->get("version");
  if (!Ver || !Ver->isInt() || Ver->asInt() != TripHistogram::Version) {
    Err = {"unsupported trip_histogram version (this reader understands "
           "version " +
               std::to_string(TripHistogram::Version) + ")",
           0};
    return false;
  }
  const json::Value *Nests = TH->get("nests");
  if (!Nests || !Nests->isArray()) {
    Err = {"expected array for 'trip_histogram.nests'", 0};
    return false;
  }
  for (size_t NI = 0; NI < Nests->size(); ++NI) {
    const json::Value &NV = Nests->at(NI);
    if (!NV.isObject()) {
      Err = {"expected object for a trip_histogram nest", 0};
      return false;
    }
    NestTripStats N;
    const json::Value *Name = NV.get("name");
    if (!Name || !Name->isString()) {
      Err = {"expected string for nest 'name'", 0};
      return false;
    }
    N.Name = Name->asString();
    if (!readInt(NV, "depth", N.Depth, Err) ||
        !readInt(NV, "samples", N.Hist.Samples, Err) ||
        !readInt(NV, "sum", N.Hist.Sum, Err) ||
        !readInt(NV, "max", N.Hist.Max, Err))
      return false;
    if (const json::Value *Exact = NV.get("exact")) {
      if (!Exact->isArray() ||
          Exact->size() != static_cast<size_t>(TripHistogram::NumExact)) {
        Err = {"expected " + std::to_string(TripHistogram::NumExact) +
                   "-element array for nest 'exact'",
               0};
        return false;
      }
      for (size_t I = 0; I < static_cast<size_t>(TripHistogram::NumExact);
           ++I) {
        const json::Value &C = Exact->at(I);
        if (!C.isInt()) {
          Err = {"expected integer counts in nest 'exact'", 0};
          return false;
        }
        N.Hist.Exact[I] = C.asInt();
      }
    }
    if (const json::Value *Log2 = NV.get("log2")) {
      if (!Log2->isObject()) {
        Err = {"expected object for nest 'log2'", 0};
        return false;
      }
      for (const auto &[Key, C] : Log2->members()) {
        long B = 0;
        bool Digits = !Key.empty() && Key.size() <= 2;
        for (char Ch : Key) {
          if (Ch < '0' || Ch > '9') {
            Digits = false;
            break;
          }
          B = B * 10 + (Ch - '0');
        }
        if (!Digits || B >= static_cast<long>(TripHistogram::NumLog2) ||
            !C.isInt()) {
          Err = {"bad log2 bucket '" + Key + "' in trip_histogram", 0};
          return false;
        }
        N.Hist.Log2[static_cast<size_t>(B)] = C.asInt();
      }
    }
    if (!N.Hist.consistent()) {
      Err = {"trip_histogram nest '" + N.Name +
                 "' is inconsistent (bucket counts do not sum to "
                 "samples, or a count is negative)",
             0};
      return false;
    }
    S.TripNests.push_back(std::move(N));
  }
  return true;
}

} // namespace

Expected<RunStats, json::JsonError>
interp::runStatsFromJson(const json::Value &V) {
  if (!V.isObject())
    return json::JsonError{"RunStats must be a JSON object", 0};
  RunStats S;
  json::JsonError Err;
  if (!readInt(V, "work_steps", S.WorkSteps, Err) ||
      !readInt(V, "instructions", S.Instructions, Err) ||
      !readInt(V, "work_active_lanes", S.WorkActiveLanes, Err) ||
      !readInt(V, "work_total_lanes", S.WorkTotalLanes, Err) ||
      !readInt(V, "comm_accesses", S.CommAccesses, Err) ||
      !readDouble(V, "cycles", S.Cycles, Err) ||
      !readDouble(V, "seconds", S.Seconds, Err) ||
      !readTripHistogram(V, S, Err))
    return Err;
  // Padded-tail hardening: a record claiming more active lane slots
  // than total lane slots (or negative counts) would round-trip into a
  // >100% utilization. No engine can produce one - padded lanes charge
  // the total but are never active - so such a record is corrupt.
  if (!S.laneAccountingConsistent())
    return json::JsonError{
        "work_active_lanes exceeds work_total_lanes (or a lane count "
        "is negative): padded lanes are idle, never active",
        0};
  return S;
}

json::Value interp::toJson(const Trace &T) {
  json::Value V = json::Value::object();
  json::Value Watch = json::Value::array();
  for (const std::string &W : T.Watch)
    Watch.push(W);
  V.set("watch", std::move(Watch));
  V.set("lanes", T.Lanes);
  json::Value Steps = json::Value::array();
  for (const Trace::Step &S : T.Steps) {
    json::Value Step = json::Value::object();
    json::Value Values = json::Value::array();
    for (int64_t X : S.Values)
      Values.push(X);
    json::Value Active = json::Value::array();
    for (uint8_t A : S.Active)
      Active.push(A != 0);
    Step.set("values", std::move(Values));
    Step.set("active", std::move(Active));
    Steps.push(std::move(Step));
  }
  V.set("steps", std::move(Steps));
  return V;
}
