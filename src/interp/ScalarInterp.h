//===- interp/ScalarInterp.h - Sequential reference executor ---*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for F77-dialect programs. It serves three
/// roles: the functional-correctness oracle for every transformation
/// (flattening must preserve observable stores and the order of
/// executed instructions, Sec. 4), the Sparc-2 sequential baseline of
/// Sec. 5.5, and - through iteration-space slicing plus write-set
/// merging - the per-processor engine of the MIMD executor.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_SCALARINTERP_H
#define SIMDFLAT_INTERP_SCALARINTERP_H

#include "interp/Extern.h"
#include "interp/RunStats.h"
#include "interp/Store.h"
#include "interp/Trap.h"
#include "machine/Machine.h"

#include <memory>
#include <optional>

namespace simdflat {
namespace exec {
struct Program;
} // namespace exec

namespace interp {

/// Restricts the outermost parallel (DOALL) loop to the iterations owned
/// by processor \c Proc out of \c NumProcs under \c PartLayout - how the
/// Fortran D compiler partitions the iteration space per the owner
/// computes rule (Fig. 3).
struct ParallelSlice {
  int64_t Proc = 0;
  int64_t NumProcs = 1;
  machine::Layout PartLayout = machine::Layout::Block;
};

/// One recorded array-element write (for MIMD write-set merging and
/// disjointness checking).
struct WriteRecord {
  std::string Name;
  int64_t FlatIndex = 0;
  ScalVal Value;
};

/// Result of one scalar execution.
struct ScalarRunResult {
  RunStats Stats;
  Trace Tr;
  /// Array writes in execution order (only when RecordWrites is set).
  std::vector<WriteRecord> Writes;
};

/// Sequential interpreter over a DataStore.
class ScalarInterp {
public:
  /// \p Machine provides the cost table (use MachineConfig::sparc2() for
  /// the workstation baseline). \p Externs may be null if the program
  /// calls nothing.
  ScalarInterp(const ir::Program &P, const machine::MachineConfig &Machine,
               const ExternRegistry *Externs, RunOptions Opts = {});

  DataStore &store() { return Store; }
  const DataStore &store() const { return Store; }

  /// Restricts the outermost DOALL to a processor's slice.
  void setSlice(ParallelSlice S) { Slice = S; }

  /// Records array writes into the result (MIMD merging).
  void setRecordWrites(bool On) { RecordWrites = On; }

  /// Supplies an already-lowered bytecode program (Mode::Scalar) so
  /// callers running many interpreters over one program (MIMD
  /// processors, benches) lower once. Ignored under Engine::Tree.
  void setCompiled(std::shared_ptr<const exec::Program> P) {
    Compiled = std::move(P);
  }

  /// Executes the program body once. May be called once per interpreter.
  /// Runtime faults of the program under execution (out-of-bounds
  /// subscripts, division by zero, fuel exhaustion...) return a Trap;
  /// the store keeps whatever was committed before the fault.
  RunOutcome<ScalarRunResult> run();

private:
  class Impl;
  const ir::Program &Prog;
  const machine::MachineConfig &Machine;
  const ExternRegistry *Externs;
  RunOptions Opts;
  DataStore Store;
  std::optional<ParallelSlice> Slice;
  std::shared_ptr<const exec::Program> Compiled;
  bool RecordWrites = false;
  bool HasRun = false;
};

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_SCALARINTERP_H
