//===- interp/Extern.h - External function registry ------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bindings for extern functions/subroutines the IR calls (the paper's
/// `Force(At1, At2)` routine, impure test stubs, recording probes).
/// Implementations are elementwise: on the SIMD machine they are invoked
/// once per active lane but charged once per vector call.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_EXTERN_H
#define SIMDFLAT_INTERP_EXTERN_H

#include "interp/Value.h"

#include <functional>
#include <span>
#include <string>
#include <unordered_map>

namespace simdflat {
namespace interp {

/// Thrown by an extern binding to signal a recoverable failure (I/O
/// error, rejected input, resource limit). The interpreters catch it
/// and surface an ExternFailure trap naming the callee; anything else
/// thrown from a binding is a programmer bug and propagates.
struct ExternError {
  std::string Message;
};

/// One extern binding.
struct ExternImpl {
  /// Elementwise implementation; receives one scalar value per declared
  /// argument. Subroutines ignore the return value.
  std::function<ScalVal(std::span<const ScalVal>)> Fn;
  /// Cycles charged per (vector) invocation.
  double Cost = 0.0;
};

/// Name -> implementation map shared by all interpreters of a run.
class ExternRegistry {
public:
  /// Registers \p Name; overwrites an existing binding.
  void bind(const std::string &Name, ExternImpl Impl) {
    Impls[Name] = std::move(Impl);
  }

  /// Convenience for pure elementwise functions.
  void bind(const std::string &Name,
            std::function<ScalVal(std::span<const ScalVal>)> Fn,
            double Cost = 0.0) {
    bind(Name, ExternImpl{std::move(Fn), Cost});
  }

  /// Returns the binding or null.
  const ExternImpl *lookup(const std::string &Name) const {
    auto It = Impls.find(Name);
    return It == Impls.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<std::string, ExternImpl> Impls;
};

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_EXTERN_H
