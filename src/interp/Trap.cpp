//===- interp/Trap.cpp ----------------------------------------*- C++ -*-===//

#include "interp/Trap.h"

#include "ir/Stmt.h"
#include "support/Casting.h"
#include "support/Error.h"

using namespace simdflat;
using namespace simdflat::interp;

const char *interp::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::OutOfBounds:
    return "out-of-bounds";
  case TrapKind::DivByZero:
    return "div-by-zero";
  case TrapKind::DomainError:
    return "domain-error";
  case TrapKind::NonUniformControl:
    return "non-uniform-control";
  case TrapKind::FuelExhausted:
    return "fuel-exhausted";
  case TrapKind::DeadlineExpired:
    return "deadline-expired";
  case TrapKind::ExternFailure:
    return "extern-failure";
  case TrapKind::WriteConflict:
    return "write-conflict";
  case TrapKind::InvalidProgram:
    return "invalid-program";
  }
  SIMDFLAT_UNREACHABLE("bad TrapKind");
}

bool interp::trapKindFromName(const std::string &Name, TrapKind &Out) {
  static const TrapKind All[] = {
      TrapKind::OutOfBounds,     TrapKind::DivByZero,
      TrapKind::DomainError,     TrapKind::NonUniformControl,
      TrapKind::FuelExhausted,   TrapKind::DeadlineExpired,
      TrapKind::ExternFailure,   TrapKind::WriteConflict,
      TrapKind::InvalidProgram};
  for (TrapKind K : All)
    if (Name == trapKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

std::string Trap::render() const {
  std::string Out = "trap: ";
  Out += trapKindName(Kind);
  if (!Location.empty()) {
    Out += " at ";
    Out += Location;
  }
  if (!Lanes.empty()) {
    Out += " on lane(s)";
    for (int64_t L : Lanes) {
      Out += ' ';
      Out += std::to_string(L);
    }
  }
  if (!Detail.empty()) {
    Out += ": ";
    Out += Detail;
  }
  return Out;
}

namespace {

std::string describeStmt(const ir::Stmt &S) {
  using ir::Stmt;
  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<ir::AssignStmt>(&S);
    if (const auto *T = dyn_cast<ir::VarRef>(&A->target()))
      return "assign " + T->name();
    if (const auto *T = dyn_cast<ir::ArrayRef>(&A->target()))
      return "assign " + T->name();
    return "assign";
  }
  case Stmt::Kind::If:
    return "IF";
  case Stmt::Kind::Where:
    return "WHERE";
  case Stmt::Kind::Do:
    return "DO " + cast<ir::DoStmt>(&S)->indexVar();
  case Stmt::Kind::While:
    return "WHILE";
  case Stmt::Kind::Repeat:
    return "REPEAT";
  case Stmt::Kind::Forall:
    return "FORALL " + cast<ir::ForallStmt>(&S)->indexVar();
  case Stmt::Kind::Call:
    return "CALL " + cast<ir::CallStmt>(&S)->callee();
  case Stmt::Kind::Label:
    return "LABEL " + std::to_string(cast<ir::LabelStmt>(&S)->label());
  case Stmt::Kind::Goto:
    return "GOTO " + std::to_string(cast<ir::GotoStmt>(&S)->label());
  }
  SIMDFLAT_UNREACHABLE("bad Stmt kind");
}

} // namespace

std::string
interp::renderStmtLocation(const std::vector<const ir::Stmt *> &Stack) {
  if (Stack.empty())
    return "program body";
  std::string Out;
  for (const ir::Stmt *S : Stack) {
    if (!Out.empty())
      Out += " / ";
    Out += describeStmt(*S);
  }
  return Out;
}
