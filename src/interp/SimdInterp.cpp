//===- interp/SimdInterp.cpp ----------------------------------*- C++ -*-===//

#include "interp/SimdInterp.h"

#include "codegen/NativeEngine.h"
#include "exec/Engine.h"
#include "exec/Lower.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

namespace {

/// Coerces a lane vector to \p K (int<->real conversion on assignment).
VecVal coerceVec(VecVal V, ScalarKind K) {
  if (V.Kind == K)
    return V;
  VecVal Out;
  Out.Kind = K;
  if (K == ScalarKind::Real) {
    Out.R.reserve(V.I.size());
    for (int64_t X : V.I)
      Out.R.push_back(static_cast<double>(X));
    return Out;
  }
  if (K == ScalarKind::Int && V.Kind == ScalarKind::Real) {
    Out.I.reserve(V.R.size());
    for (double X : V.R)
      Out.I.push_back(static_cast<int64_t>(X));
    return Out;
  }
  reportFatalError("simd interp: invalid vector coercion");
}

} // namespace

class SimdInterp::Impl {
public:
  Impl(const Program &Prog, const machine::MachineConfig &Machine,
       const ExternRegistry *Externs, RunOptions Opts)
      : Prog(Prog), Machine(Machine), Externs(Externs),
        Opts(std::move(Opts)), Store(Prog, Machine.Gran),
        Mask(Machine.Gran), Lanes(Machine.Gran) {}

  const Program &Prog;
  const machine::MachineConfig &Machine;
  const ExternRegistry *Externs;
  RunOptions Opts;
  DataStore Store;
  machine::MaskStack Mask;
  int64_t Lanes;
  SimdRunResult Result;
  std::shared_ptr<const exec::Program> Compiled;
  int64_t LoopIterations = 0;
  bool HasRun = false;

  RunOutcome<SimdRunResult> run() {
    assert(!HasRun && "SimdInterp::run() may be called once");
    HasRun = true;
    // API misuse, not a program fault: running the lockstep machine on
    // an unconverted program is a caller bug.
    if (Prog.dialect() != Dialect::F90Simd)
      reportFatalError("simd interp: program '" + Prog.name() +
                       "' is not in the F90simd dialect (run "
                       "transform::simdize first)");
    if (Opts.Eng != Engine::Tree) {
      if (!Compiled)
        Compiled = std::make_shared<exec::Program>(
            exec::lower(Prog, exec::Mode::Simd));
      Result.EngineUsed = Opts.Eng;
      try {
        // HostSimd runs the same lowered program through the core with
        // host vector kernels; bit-identical, only wall time differs.
        // Native runs the JIT-compiled loops when a toolchain produced
        // them, and degrades to the bytecode core otherwise (the result
        // records which engine actually ran).
        if (Opts.Eng == Engine::HostSimd)
          exec::runSimdHost(*Compiled, Machine, Externs, Opts, Store,
                            Result);
        else if (Opts.Eng == Engine::Native &&
                 codegen::runSimdNative(*Compiled, Prog, Machine, Externs,
                                        Opts, Store, Result)) {
          // Ran natively; EngineUsed already says Native.
        } else {
          if (Opts.Eng == Engine::Native)
            Result.EngineUsed = Engine::Bytecode;
          exec::runSimd(*Compiled, Machine, Externs, Opts, Store, Result);
        }
      } catch (TrapException &E) {
        return std::move(E.T);
      }
      return std::move(Result);
    }
    Result.EngineUsed = Engine::Tree;
    Result.Tr.Watch = Opts.Watch;
    Result.Tr.Lanes = Lanes;
    try {
      execBody(Prog.body());
    } catch (TrapException &E) {
      return std::move(E.T);
    }
    Result.Stats.Seconds = Result.Stats.Cycles * Machine.SecondsPerCycle;
    return std::move(Result);
  }

private:
  /// Enclosing statements, outermost first; rendered lazily on traps.
  std::vector<const Stmt *> StmtStack;

  size_t laneCount() const { return static_cast<size_t>(Lanes); }

  [[noreturn]] void trap(TrapKind K, std::string Detail,
                         std::vector<int64_t> FaultLanes = {}) {
    throw TrapException{{K, std::move(FaultLanes),
                         renderStmtLocation(StmtStack), std::move(Detail)}};
  }

  void charge(double Cycles) {
    Result.Stats.Cycles += Cycles;
    Result.Stats.Instructions += 1;
    if (Opts.Fuel > 0 && Result.Stats.Instructions > Opts.Fuel)
      trap(TrapKind::FuelExhausted,
           "fuel budget of " + std::to_string(Opts.Fuel) +
               " instructions exhausted in '" + Prog.name() + "'");
    if (deadlineExpired(Opts, Result.Stats.Instructions))
      trap(TrapKind::DeadlineExpired,
           "wall-clock deadline expired in '" + Prog.name() + "'");
  }

  void countLoopIteration() {
    if (++LoopIterations > Opts.MaxLoopIterations)
      trap(TrapKind::FuelExhausted,
           "loop iteration limit of " +
               std::to_string(Opts.MaxLoopIterations) + " exceeded in '" +
               Prog.name() + "' (non-terminating transform?)");
    charge(Machine.Costs.LoopOverhead);
  }

  bool isWorkTarget(const std::string &Name) const {
    return std::find(Opts.WorkTargets.begin(), Opts.WorkTargets.end(),
                     Name) != Opts.WorkTargets.end();
  }

  bool isWorkCall(const std::string &Name) const {
    return std::find(Opts.WorkCalls.begin(), Opts.WorkCalls.end(), Name) !=
           Opts.WorkCalls.end();
  }

  void recordWorkStep() {
    Result.Stats.WorkSteps += 1;
    Result.Stats.WorkActiveLanes += Mask.activeCount();
    Result.Stats.WorkTotalLanes += Lanes;
    if (Opts.Watch.empty())
      return;
    Trace::Step Step;
    Step.Values.reserve(Opts.Watch.size() * laneCount());
    for (const std::string &W : Opts.Watch) {
      const Slot &S = Store.slot(W);
      assert(!S.isReal() && "watched variables must be integer/logical");
      for (int64_t L = 0; L < Lanes; ++L)
        Step.Values.push_back(
            S.I[static_cast<size_t>(S.Width == 1 ? 0 : L)]);
    }
    Step.Active = Mask.current();
    Result.Tr.Steps.push_back(std::move(Step));
  }

  /// Requires \p V to hold the same value on every lane and returns it.
  int64_t uniformInt(const VecVal &V, const char *What) {
    assert(V.Kind != ScalarKind::Real && "uniformInt of a real");
    int64_t First = V.I[0];
    std::vector<int64_t> Divergent;
    for (size_t L = 0; L < V.I.size(); ++L)
      if (V.I[L] != First)
        Divergent.push_back(static_cast<int64_t>(L));
    if (!Divergent.empty())
      trap(TrapKind::NonUniformControl,
           std::string(What) + " is not control-uniform across lanes; "
                               "lane-varying control flow needs WHERE / "
                               "WHILE ANY(...)",
           std::move(Divergent));
    return First;
  }

  bool uniformBool(const VecVal &V, const char *What) {
    return uniformInt(V, What) != 0;
  }

  VecVal eval(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      return VecVal::broadcastInt(cast<IntLit>(&E)->value(), Lanes);
    case Expr::Kind::RealLit:
      return VecVal::broadcastReal(cast<RealLit>(&E)->value(), Lanes);
    case Expr::Kind::BoolLit:
      return VecVal::broadcastBool(cast<BoolLit>(&E)->value(), Lanes);
    case Expr::Kind::VarRef: {
      const Slot &S = Store.slot(cast<VarRef>(&E)->name());
      if (S.Decl->isArray())
        trap(TrapKind::InvalidProgram, "whole-array reference to '" +
                                           S.Decl->Name +
                                           "' outside a reduction");
      VecVal Out;
      Out.Kind = S.Decl->Kind;
      if (S.isReal()) {
        if (S.Width == 1)
          Out.R.assign(laneCount(), S.R[0]);
        else
          Out.R = S.R;
      } else {
        if (S.Width == 1)
          Out.I.assign(laneCount(), S.I[0]);
        else
          Out.I = S.I;
      }
      return Out;
    }
    case Expr::Kind::ArrayRef:
      return evalGather(*cast<ArrayRef>(&E));
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      VecVal V = eval(U->operand());
      if (U->op() == UnOp::Not) {
        charge(Machine.Costs.LogicOp);
        for (int64_t &X : V.I)
          X = !X;
        return V;
      }
      charge(V.Kind == ScalarKind::Real ? Machine.Costs.RealOp
                                        : Machine.Costs.IntOp);
      if (V.Kind == ScalarKind::Real)
        for (double &X : V.R)
          X = -X;
      else
        for (int64_t &X : V.I)
          X = -X;
      return V;
    }
    case Expr::Kind::Binary:
      return evalBinary(*cast<BinaryExpr>(&E));
    case Expr::Kind::Intrinsic:
      return evalIntrinsic(*cast<IntrinsicExpr>(&E));
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(&E);
      return evalCall(C->callee(), C->args(), C->type());
    }
    }
    SIMDFLAT_UNREACHABLE("bad Expr kind");
  }

  VecVal evalGather(const ArrayRef &A) {
    const Slot &S = Store.slot(A.name());
    const VarDecl &D = *S.Decl;
    std::vector<VecVal> Idx;
    Idx.reserve(A.indices().size());
    for (const ExprPtr &I : A.indices())
      Idx.push_back(eval(*I));
    charge(Machine.Costs.GatherOp);
    VecVal Out;
    Out.Kind = D.Kind;
    if (S.isReal())
      Out.R.assign(laneCount(), 0.0);
    else
      Out.I.assign(laneCount(), 0);
    std::vector<int64_t> BadLanes;
    for (int64_t L = 0; L < Lanes; ++L) {
      int64_t Flat = 0;
      bool InBounds = true;
      for (size_t Dim = 0; Dim < Idx.size(); ++Dim) {
        int64_t IdxV = Idx[Dim].I[static_cast<size_t>(L)];
        if (IdxV < 1 || IdxV > D.Dims[Dim]) {
          InBounds = false;
          break;
        }
        Flat = Flat * D.Dims[Dim] + (IdxV - 1);
      }
      if (!InBounds) {
        if (Mask.isActive(L))
          BadLanes.push_back(L);
        continue; // idle lane gathers garbage; leave 0
      }
      if (D.Distribution == Dist::Distributed && Mask.isActive(L)) {
        int64_t Dim0 = Idx[0].I[static_cast<size_t>(L)];
        if (Machine.laneOf(Dim0, D.Dims[0]) != L)
          Result.Stats.CommAccesses += 1;
      }
      if (S.isReal())
        Out.R[static_cast<size_t>(L)] = S.R[static_cast<size_t>(Flat)];
      else
        Out.I[static_cast<size_t>(L)] = S.I[static_cast<size_t>(Flat)];
    }
    if (!BadLanes.empty())
      trap(TrapKind::OutOfBounds,
           "active lane(s) read out of bounds from '" + A.name() + "'",
           std::move(BadLanes));
    return Out;
  }

  VecVal evalBinary(const BinaryExpr &B) {
    VecVal L = eval(B.lhs());
    VecVal R = eval(B.rhs());
    BinOp Op = B.op();
    VecVal Out;
    Out.Kind = B.type();
    if (Op == BinOp::And || Op == BinOp::Or) {
      charge(Machine.Costs.LogicOp);
      Out.I.resize(laneCount());
      for (size_t I = 0; I < laneCount(); ++I)
        Out.I[I] = Op == BinOp::And ? (L.I[I] && R.I[I]) : (L.I[I] || R.I[I]);
      return Out;
    }
    if (isComparison(Op)) {
      charge(Machine.Costs.CmpOp);
      Out.I.resize(laneCount());
      bool Real = L.Kind == ScalarKind::Real || R.Kind == ScalarKind::Real;
      for (size_t I = 0; I < laneCount(); ++I) {
        double LV = Real ? (L.Kind == ScalarKind::Real
                                ? L.R[I]
                                : static_cast<double>(L.I[I]))
                         : static_cast<double>(L.I[I]);
        double RV = Real ? (R.Kind == ScalarKind::Real
                                ? R.R[I]
                                : static_cast<double>(R.I[I]))
                         : static_cast<double>(R.I[I]);
        bool V = false;
        switch (Op) {
        case BinOp::Eq:
          V = LV == RV;
          break;
        case BinOp::Ne:
          V = LV != RV;
          break;
        case BinOp::Lt:
          V = LV < RV;
          break;
        case BinOp::Le:
          V = LV <= RV;
          break;
        case BinOp::Gt:
          V = LV > RV;
          break;
        case BinOp::Ge:
          V = LV >= RV;
          break;
        default:
          SIMDFLAT_UNREACHABLE("not a comparison");
        }
        Out.I[I] = V;
      }
      return Out;
    }
    // Arithmetic.
    bool Real = B.type() == ScalarKind::Real;
    charge(Real ? Machine.Costs.RealOp : Machine.Costs.IntOp);
    if (Real) {
      VecVal LC = coerceVec(std::move(L), ScalarKind::Real);
      VecVal RC = coerceVec(std::move(R), ScalarKind::Real);
      Out.R.resize(laneCount());
      for (size_t I = 0; I < laneCount(); ++I) {
        switch (Op) {
        case BinOp::Add:
          Out.R[I] = LC.R[I] + RC.R[I];
          break;
        case BinOp::Sub:
          Out.R[I] = LC.R[I] - RC.R[I];
          break;
        case BinOp::Mul:
          Out.R[I] = LC.R[I] * RC.R[I];
          break;
        case BinOp::Div:
          Out.R[I] = RC.R[I] == 0.0 ? 0.0 : LC.R[I] / RC.R[I];
          break;
        default:
          SIMDFLAT_UNREACHABLE("bad real arithmetic op");
        }
      }
      return Out;
    }
    Out.I.resize(laneCount());
    std::vector<int64_t> ZeroLanes;
    for (size_t I = 0; I < laneCount(); ++I) {
      int64_t LV = L.I[I], RV = R.I[I];
      switch (Op) {
      case BinOp::Add:
        Out.I[I] = LV + RV;
        break;
      case BinOp::Sub:
        Out.I[I] = LV - RV;
        break;
      case BinOp::Mul:
        Out.I[I] = LV * RV;
        break;
      case BinOp::Div:
        // Division by zero on an idle lane is a don't-care; active lanes
        // dividing by zero trap.
        if (RV == 0) {
          if (Mask.isActive(static_cast<int64_t>(I)))
            ZeroLanes.push_back(static_cast<int64_t>(I));
          Out.I[I] = 0;
        } else {
          Out.I[I] = LV / RV;
        }
        break;
      case BinOp::Mod:
        if (RV == 0) {
          if (Mask.isActive(static_cast<int64_t>(I)))
            ZeroLanes.push_back(static_cast<int64_t>(I));
          Out.I[I] = 0;
        } else {
          Out.I[I] = LV % RV;
        }
        break;
      default:
        SIMDFLAT_UNREACHABLE("bad int arithmetic op");
      }
    }
    if (!ZeroLanes.empty())
      trap(TrapKind::DivByZero,
           std::string(Op == BinOp::Mod ? "MOD" : "division") +
               " by zero on active lane(s)",
           std::move(ZeroLanes));
    return Out;
  }

  VecVal evalIntrinsic(const IntrinsicExpr &In) {
    switch (In.op()) {
    case IntrinsicOp::Max:
    case IntrinsicOp::Min: {
      VecVal A = coerceVec(eval(*In.args()[0]), In.type());
      VecVal B = coerceVec(eval(*In.args()[1]), In.type());
      bool Real = In.type() == ScalarKind::Real;
      charge(Real ? Machine.Costs.RealOp : Machine.Costs.IntOp);
      bool IsMax = In.op() == IntrinsicOp::Max;
      if (Real) {
        for (size_t I = 0; I < laneCount(); ++I)
          A.R[I] = IsMax ? std::max(A.R[I], B.R[I]) : std::min(A.R[I], B.R[I]);
      } else {
        for (size_t I = 0; I < laneCount(); ++I)
          A.I[I] = IsMax ? std::max(A.I[I], B.I[I]) : std::min(A.I[I], B.I[I]);
      }
      return A;
    }
    case IntrinsicOp::Abs: {
      VecVal A = eval(*In.args()[0]);
      charge(A.Kind == ScalarKind::Real ? Machine.Costs.RealOp
                                        : Machine.Costs.IntOp);
      if (A.Kind == ScalarKind::Real)
        for (double &X : A.R)
          X = std::fabs(X);
      else
        for (int64_t &X : A.I)
          X = std::llabs(X);
      return A;
    }
    case IntrinsicOp::Sqrt: {
      VecVal A = eval(*In.args()[0]);
      charge(Machine.Costs.RealOp);
      std::vector<int64_t> NegLanes;
      for (size_t I = 0; I < laneCount(); ++I) {
        if (A.R[I] < 0.0 && Mask.isActive(static_cast<int64_t>(I)))
          NegLanes.push_back(static_cast<int64_t>(I));
        A.R[I] = A.R[I] < 0.0 ? 0.0 : std::sqrt(A.R[I]);
      }
      if (!NegLanes.empty())
        trap(TrapKind::DomainError, "SQRT of a negative on active lane(s)",
             std::move(NegLanes));
      return A;
    }
    case IntrinsicOp::LaneIndex: {
      VecVal Out;
      Out.Kind = ScalarKind::Int;
      Out.I.resize(laneCount());
      for (size_t I = 0; I < laneCount(); ++I)
        Out.I[I] = static_cast<int64_t>(I) + 1;
      return Out;
    }
    case IntrinsicOp::NumLanes:
      return VecVal::broadcastInt(Lanes, Lanes);
    case IntrinsicOp::Any:
    case IntrinsicOp::All: {
      VecVal A = eval(*In.args()[0]);
      charge(Machine.Costs.ReduceOp);
      bool Acc = In.op() == IntrinsicOp::All;
      for (int64_t L = 0; L < Lanes; ++L) {
        if (!Mask.isActive(L))
          continue;
        bool V = A.I[static_cast<size_t>(L)] != 0;
        Acc = In.op() == IntrinsicOp::Any ? (Acc || V) : (Acc && V);
      }
      return VecVal::broadcastBool(Acc, Lanes);
    }
    case IntrinsicOp::MaxRed:
    case IntrinsicOp::MinRed:
    case IntrinsicOp::SumRed: {
      VecVal A = eval(*In.args()[0]);
      charge(Machine.Costs.ReduceOp);
      bool IsMax = In.op() == IntrinsicOp::MaxRed;
      bool IsMin = In.op() == IntrinsicOp::MinRed;
      if ((IsMax || IsMin) && Mask.noneActive())
        trap(TrapKind::DomainError,
             std::string(IsMax ? "MAXRED" : "MINRED") +
                 " with no active lanes");
      auto Combine = [&](auto Acc, auto V) {
        if (IsMax)
          return std::max(Acc, V);
        if (IsMin)
          return std::min(Acc, V);
        return Acc + V;
      };
      if (A.Kind == ScalarKind::Real) {
        double Acc = IsMax   ? -std::numeric_limits<double>::infinity()
                     : IsMin ? std::numeric_limits<double>::infinity()
                             : 0.0;
        for (int64_t L = 0; L < Lanes; ++L)
          if (Mask.isActive(L))
            Acc = Combine(Acc, A.R[static_cast<size_t>(L)]);
        return VecVal::broadcastReal(Acc, Lanes);
      }
      int64_t Acc = IsMax   ? std::numeric_limits<int64_t>::min()
                    : IsMin ? std::numeric_limits<int64_t>::max()
                            : 0;
      for (int64_t L = 0; L < Lanes; ++L)
        if (Mask.isActive(L))
          Acc = Combine(Acc, A.I[static_cast<size_t>(L)]);
      return VecVal::broadcastInt(Acc, Lanes);
    }
    case IntrinsicOp::MaxVal:
    case IntrinsicOp::SumVal: {
      const auto *V = cast<VarRef>(In.args()[0].get());
      const Slot &S = Store.slot(V->name());
      assert(S.Decl->isArray() && "array reduction of a scalar");
      charge(Machine.Costs.ReduceOp *
             static_cast<double>(Machine.layersFor(S.Width)));
      bool IsMax = In.op() == IntrinsicOp::MaxVal;
      if (S.isReal()) {
        double Acc = IsMax ? -std::numeric_limits<double>::infinity() : 0.0;
        for (double X : S.R)
          Acc = IsMax ? std::max(Acc, X) : Acc + X;
        return VecVal::broadcastReal(Acc, Lanes);
      }
      int64_t Acc = IsMax ? std::numeric_limits<int64_t>::min() : 0;
      for (int64_t X : S.I)
        Acc = IsMax ? std::max(Acc, X) : Acc + X;
      return VecVal::broadcastInt(Acc, Lanes);
    }
    }
    SIMDFLAT_UNREACHABLE("bad IntrinsicOp");
  }

  VecVal evalCall(const std::string &Callee,
                  const std::vector<ExprPtr> &Args, ScalarKind RetKind) {
    if (!Externs)
      trap(TrapKind::ExternFailure,
           "no extern registry for call to '" + Callee + "'");
    const ExternImpl *Impl = Externs->lookup(Callee);
    if (!Impl)
      trap(TrapKind::ExternFailure, "unbound extern '" + Callee + "'");
    std::vector<VecVal> ArgVecs;
    ArgVecs.reserve(Args.size());
    for (const ExprPtr &A : Args)
      ArgVecs.push_back(eval(*A));
    charge(Impl->Cost);
    if (isWorkCall(Callee))
      recordWorkStep();
    VecVal Out;
    Out.Kind = RetKind;
    if (RetKind == ScalarKind::Real)
      Out.R.assign(laneCount(), 0.0);
    else
      Out.I.assign(laneCount(), 0);
    std::vector<ScalVal> LaneArgs(Args.size());
    for (int64_t L = 0; L < Lanes; ++L) {
      if (!Mask.isActive(L))
        continue;
      for (size_t A = 0; A < ArgVecs.size(); ++A)
        LaneArgs[A] = ArgVecs[A].lane(L);
      ScalVal R;
      try {
        R = Impl->Fn(LaneArgs);
      } catch (const ExternError &E) {
        trap(TrapKind::ExternFailure,
             "extern '" + Callee + "' failed: " + E.Message, {L});
      }
      if (RetKind == ScalarKind::Real)
        Out.R[static_cast<size_t>(L)] = R.asNumeric();
      else
        Out.I[static_cast<size_t>(L)] = R.I;
    }
    return Out;
  }

  void execAssign(const AssignStmt &A) {
    VecVal V = eval(A.value());
    if (const auto *T = dyn_cast<VarRef>(&A.target())) {
      Slot &S = Store.slot(T->name());
      assert(S.Decl->isScalar() && "assignment to whole array");
      VecVal C = coerceVec(std::move(V), S.Decl->Kind);
      charge(Machine.Costs.MoveOp);
      if (S.Width == 1) {
        // Control variable: the value must be uniform over active lanes.
        int64_t FirstActive = -1;
        for (int64_t L = 0; L < Lanes; ++L)
          if (Mask.isActive(L)) {
            FirstActive = L;
            break;
          }
        if (FirstActive >= 0) {
          std::vector<int64_t> VaryLanes;
          if (S.isReal()) {
            double Val = C.R[static_cast<size_t>(FirstActive)];
            for (int64_t L = FirstActive; L < Lanes; ++L)
              if (Mask.isActive(L) &&
                  C.R[static_cast<size_t>(L)] != Val)
                VaryLanes.push_back(L);
            if (VaryLanes.empty())
              S.R[0] = Val;
          } else {
            int64_t Val = C.I[static_cast<size_t>(FirstActive)];
            for (int64_t L = FirstActive; L < Lanes; ++L)
              if (Mask.isActive(L) &&
                  C.I[static_cast<size_t>(L)] != Val)
                VaryLanes.push_back(L);
            if (VaryLanes.empty())
              S.I[0] = Val;
          }
          if (!VaryLanes.empty())
            trap(TrapKind::NonUniformControl,
                 "lane-varying store to control variable '" + T->name() +
                     "'",
                 std::move(VaryLanes));
        }
      } else {
        for (int64_t L = 0; L < Lanes; ++L) {
          if (!Mask.isActive(L))
            continue;
          if (S.isReal())
            S.R[static_cast<size_t>(L)] = C.R[static_cast<size_t>(L)];
          else
            S.I[static_cast<size_t>(L)] = C.I[static_cast<size_t>(L)];
        }
      }
      if (isWorkTarget(T->name()))
        recordWorkStep();
      return;
    }
    const auto *T = cast<ArrayRef>(&A.target());
    Slot &S = Store.slot(T->name());
    const VarDecl &D = *S.Decl;
    std::vector<VecVal> Idx;
    Idx.reserve(T->indices().size());
    for (const ExprPtr &I : T->indices())
      Idx.push_back(eval(*I));
    VecVal C = coerceVec(std::move(V), D.Kind);
    charge(Machine.Costs.ScatterOp);
    // Validate every active lane before committing any store: a scatter
    // with a faulting lane must not half-commit.
    std::vector<int64_t> Flats(laneCount(), -1);
    std::vector<int64_t> BadLanes;
    for (int64_t L = 0; L < Lanes; ++L) {
      if (!Mask.isActive(L))
        continue;
      int64_t Flat = 0;
      bool InBounds = true;
      for (size_t Dim = 0; Dim < Idx.size(); ++Dim) {
        int64_t IdxV = Idx[Dim].I[static_cast<size_t>(L)];
        if (IdxV < 1 || IdxV > D.Dims[Dim]) {
          InBounds = false;
          break;
        }
        Flat = Flat * D.Dims[Dim] + (IdxV - 1);
      }
      if (!InBounds) {
        BadLanes.push_back(L);
        continue;
      }
      Flats[static_cast<size_t>(L)] = Flat;
    }
    if (!BadLanes.empty())
      trap(TrapKind::OutOfBounds,
           "active lane(s) write out of bounds to '" + T->name() + "'",
           std::move(BadLanes));
    for (int64_t L = 0; L < Lanes; ++L) {
      if (!Mask.isActive(L))
        continue;
      int64_t Flat = Flats[static_cast<size_t>(L)];
      if (D.Distribution == Dist::Distributed) {
        int64_t Dim0 = Idx[0].I[static_cast<size_t>(L)];
        if (Machine.laneOf(Dim0, D.Dims[0]) != L)
          Result.Stats.CommAccesses += 1;
      }
      if (S.isReal())
        S.R[static_cast<size_t>(Flat)] = C.R[static_cast<size_t>(L)];
      else
        S.I[static_cast<size_t>(Flat)] = C.I[static_cast<size_t>(L)];
    }
    if (isWorkTarget(T->name()))
      recordWorkStep();
  }

  void execForall(const ForallStmt &F) {
    int64_t Lo = uniformInt(eval(F.lo()), "FORALL lower bound");
    int64_t Hi = uniformInt(eval(F.hi()), "FORALL upper bound");
    Slot &IV = Store.slot(F.indexVar());
    if (IV.Width != Lanes)
      trap(TrapKind::InvalidProgram, "FORALL index '" + F.indexVar() +
                                         "' must be a replicated variable");
    if (Hi < Lo)
      return;
    int64_t Layers = Machine.layersFor(Hi);
    for (int64_t Layer = 0; Layer < Layers; ++Layer) {
      countLoopIteration();
      // Per-lane element ids for this layer under the machine layout.
      std::vector<uint8_t> Exists(laneCount(), 0);
      int64_t Chunk = Machine.layersFor(Hi); // block chunk height
      for (int64_t L = 0; L < Lanes; ++L) {
        int64_t E;
        if (Machine.DataLayout == machine::Layout::Cyclic)
          E = Layer * Lanes + L + 1;
        else
          E = L * Chunk + Layer + 1;
        IV.I[static_cast<size_t>(L)] = E;
        Exists[static_cast<size_t>(L)] = E >= Lo && E <= Hi;
      }
      charge(Machine.Costs.LogicOp);
      Mask.pushAnd(Exists);
      if (F.mask()) {
        VecVal UserMask = eval(*F.mask());
        std::vector<uint8_t> M(laneCount());
        for (size_t I = 0; I < laneCount(); ++I)
          M[I] = UserMask.I[I] != 0;
        charge(Machine.Costs.LogicOp);
        Mask.pushAnd(M);
        execBody(F.body());
        Mask.pop();
      } else {
        execBody(F.body());
      }
      Mask.pop();
    }
  }

  void execBody(const Body &B) {
    for (const StmtPtr &SP : B) {
      const Stmt &S = *SP;
      StmtStack.push_back(&S);
      switch (S.kind()) {
      case Stmt::Kind::Assign:
        execAssign(*cast<AssignStmt>(&S));
        break;
      case Stmt::Kind::If: {
        const auto *I = cast<IfStmt>(&S);
        charge(Machine.Costs.CmpOp);
        if (uniformBool(eval(I->cond()), "IF condition"))
          execBody(I->thenBody());
        else
          execBody(I->elseBody());
        break;
      }
      case Stmt::Kind::Where: {
        const auto *W = cast<WhereStmt>(&S);
        VecVal CondV = eval(W->cond());
        std::vector<uint8_t> M(laneCount());
        for (size_t I = 0; I < laneCount(); ++I)
          M[I] = CondV.I[I] != 0;
        charge(Machine.Costs.LogicOp);
        Mask.pushAnd(M);
        execBody(W->thenBody());
        if (!W->elseBody().empty()) {
          charge(Machine.Costs.LogicOp);
          Mask.flipTop();
          execBody(W->elseBody());
        }
        Mask.pop();
        break;
      }
      case Stmt::Kind::Do: {
        const auto *D = cast<DoStmt>(&S);
        int64_t Lo = uniformInt(eval(D->lo()), "DO lower bound");
        int64_t Hi = uniformInt(eval(D->hi()), "DO upper bound");
        int64_t Step =
            D->step() ? uniformInt(eval(*D->step()), "DO step") : 1;
        if (Step == 0)
          trap(TrapKind::InvalidProgram, "DO step of zero");
        Slot &IV = Store.slot(D->indexVar());
        for (int64_t V = Lo; Step > 0 ? V <= Hi : V >= Hi; V += Step) {
          countLoopIteration();
          IV.I.assign(IV.I.size(), V);
          execBody(D->body());
        }
        int64_t Trips = Step > 0 ? (Hi >= Lo ? (Hi - Lo) / Step + 1 : 0)
                                 : (Lo >= Hi ? (Lo - Hi) / (-Step) + 1 : 0);
        IV.I.assign(IV.I.size(), Lo + Trips * Step);
        break;
      }
      case Stmt::Kind::While: {
        const auto *W = cast<WhileStmt>(&S);
        while (uniformBool(eval(W->cond()), "WHILE condition")) {
          countLoopIteration();
          execBody(W->body());
        }
        break;
      }
      case Stmt::Kind::Repeat: {
        const auto *R = cast<RepeatStmt>(&S);
        do {
          countLoopIteration();
          execBody(R->body());
        } while (!uniformBool(eval(R->untilCond()), "UNTIL condition"));
        break;
      }
      case Stmt::Kind::Forall:
        execForall(*cast<ForallStmt>(&S));
        break;
      case Stmt::Kind::Call: {
        const auto *C = cast<CallStmt>(&S);
        evalCall(C->callee(), C->args(), ScalarKind::Int);
        break;
      }
      case Stmt::Kind::Label:
      case Stmt::Kind::Goto:
        trap(TrapKind::InvalidProgram,
             "GOTO-form control flow is not executable on the SIMD "
             "machine; run the front end's loop recovery first");
      }
      StmtStack.pop_back();
    }
  }
};

SimdInterp::SimdInterp(const Program &Prog,
                       const machine::MachineConfig &Machine,
                       const ExternRegistry *Externs, RunOptions Opts)
    : P(std::make_unique<Impl>(Prog, Machine, Externs, std::move(Opts))) {}

SimdInterp::~SimdInterp() = default;

DataStore &SimdInterp::store() { return P->Store; }

void SimdInterp::setCompiled(std::shared_ptr<const exec::Program> Prog) {
  P->Compiled = std::move(Prog);
}

const machine::MachineConfig &SimdInterp::machineConfig() const {
  return P->Machine;
}

RunOutcome<SimdRunResult> SimdInterp::run() { return P->run(); }
