//===- interp/TraceRender.h - Paper-style trace rendering ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders execution traces in the row layout of the paper's Figs. 4
/// and 6: one column per time step, one row per watched variable per
/// processor, '-' marking masked/idle slots.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_TRACERENDER_H
#define SIMDFLAT_INTERP_TRACERENDER_H

#include "interp/RunStats.h"

#include <string>
#include <vector>

namespace simdflat {
namespace interp {

/// Renders a lockstep SIMD trace (lanes share the time axis; idle lanes
/// print '-').
std::string renderSimdTrace(const Trace &Tr);

/// Renders per-processor MIMD traces on a common time axis (processors
/// that finished early leave blank columns).
std::string renderMimdTrace(const std::vector<Trace> &PerProc);

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_TRACERENDER_H
