//===- interp/StatsJson.h - RunStats/Trace <-> JSON ------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON serialization of the interpreter counters and traces so benches
/// and flattenc can emit machine-readable telemetry, and deserialization
/// so tools (and the round-trip tests) can read it back.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_STATSJSON_H
#define SIMDFLAT_INTERP_STATSJSON_H

#include "interp/RunStats.h"
#include "support/Json.h"

namespace simdflat {
namespace interp {

/// RunStats as a flat JSON object (counters plus the derived
/// utilization, so consumers need not recompute it).
json::Value toJson(const RunStats &S);

/// Same, tagged with the engine that produced the counters (an
/// "engine" member holding engineName(E)). Use this at every
/// serialization site so downstream tools can refuse cross-engine
/// comparisons; runStatsFromJson tolerates and ignores the tag.
json::Value toJson(const RunStats &S, Engine E);

/// Inverse of toJson(RunStats); missing fields keep their defaults,
/// wrongly-typed fields fail.
Expected<RunStats, json::JsonError> runStatsFromJson(const json::Value &V);

/// Trace as {watch, lanes, steps: [{values, active}]}.
json::Value toJson(const Trace &T);

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_STATSJSON_H
