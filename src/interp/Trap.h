//===- interp/Trap.h - Structured runtime faults ---------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured traps: when a *program under execution* faults (an active
/// lane subscripts out of bounds, divides by zero, drives control flow
/// with lane-varying values, exhausts its fuel budget, or calls a
/// broken extern), the interpreters unwind and return a Trap through
/// Expected instead of aborting the process. A Trap carries the fault
/// kind, the set of faulting lanes, the statement location at which the
/// machine stopped, and a human-readable rendering — enough for a
/// serving layer to log, reject the one request, and keep running.
///
/// The differential tests lean on a cross-executor invariant: the
/// scalar oracle, the MIMD executor and the (flattened or unflattened)
/// SIMD machine must agree on the *kind* of the first trap a faulty
/// program raises, the error-path extension of the paper's "same
/// instructions, same order" equivalence argument.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_TRAP_H
#define SIMDFLAT_INTERP_TRAP_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simdflat {
namespace ir {
class Stmt;
} // namespace ir

namespace interp {

/// What went wrong. Kinds are shared across the scalar, MIMD and SIMD
/// executors so differential tests can compare them directly.
enum class TrapKind {
  /// An active lane subscripted an array outside its declared extents.
  OutOfBounds,
  /// Integer division or MOD by zero on an active lane.
  DivByZero,
  /// A numeric domain fault (SQRT of a negative, empty MAXRED/MINRED).
  DomainError,
  /// Lane-varying values drove uniform control flow (IF/DO/WHILE
  /// conditions, stores to control variables).
  NonUniformControl,
  /// The fuel budget (RunOptions::Fuel) or the loop-iteration guard
  /// (RunOptions::MaxLoopIterations) was exhausted.
  FuelExhausted,
  /// The wall-clock deadline (RunOptions::Deadline) passed mid-run. The
  /// serving layer derives it from a request's end-to-end budget; unlike
  /// fuel it bounds real time, not simulated instructions.
  DeadlineExpired,
  /// An extern call failed: unbound name, missing registry, or the
  /// binding itself reported an ExternError.
  ExternFailure,
  /// Two MIMD processors wrote conflicting values to one element (the
  /// dynamic non-parallelizability check).
  WriteConflict,
  /// The program reached a state only a malformed tree produces (GOTO
  /// to a missing label, zero DO step, whole-array scalar reference).
  InvalidProgram,
};

/// Stable lowercase name for a kind ("out-of-bounds", "div-by-zero"...).
const char *trapKindName(TrapKind K);

/// Parses a trapKindName rendering back to the enum; false if \p Name
/// matches none (the serving wire format round-trips traps through it).
bool trapKindFromName(const std::string &Name, TrapKind &Out);

/// One structured runtime fault.
struct Trap {
  TrapKind Kind = TrapKind::InvalidProgram;
  /// 0-based faulting lanes; empty when the fault is in the (scalar)
  /// control unit rather than on specific lanes.
  std::vector<int64_t> Lanes;
  /// Statement location where execution stopped, rendered as the chain
  /// of enclosing statements, e.g. "DO i / WHERE / assign A".
  std::string Location;
  /// Specifics of the fault ("lane 2 reads A(9) but A has extent 8").
  std::string Detail;

  /// One-line human-readable rendering of the whole trap.
  std::string render() const;
};

/// Internal unwinding vehicle: interpreter guts throw this; the public
/// run() entry points catch it and return the Trap through Expected.
/// Never escapes the interp layer.
struct TrapException {
  Trap T;
};

/// The result type of every executor: a run result or a trap.
template <typename T> using RunOutcome = Expected<T, Trap>;

/// Renders a stack of enclosing statements (outermost first) into a
/// Trap::Location string like "DO i / WHERE / assign A". The executors
/// keep this stack as raw pointers and only render on the trap path, so
/// the hot loop pays one push/pop per statement.
std::string renderStmtLocation(const std::vector<const ir::Stmt *> &Stack);

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_TRAP_H
