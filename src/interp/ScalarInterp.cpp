//===- interp/ScalarInterp.cpp --------------------------------*- C++ -*-===//

#include "interp/ScalarInterp.h"

#include "exec/Engine.h"
#include "exec/Lower.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

namespace {

/// "(3, 9)" for a subscript list (trap details).
std::string renderIndices(const std::vector<int64_t> &Idx) {
  std::string Out = " (";
  for (size_t I = 0; I < Idx.size(); ++I) {
    if (I > 0)
      Out += ", ";
    Out += std::to_string(Idx[I]);
  }
  Out += ')';
  return Out;
}

ScalVal coerce(const ScalVal &V, ScalarKind K) {
  if (V.Kind == K)
    return V;
  if (K == ScalarKind::Real)
    return ScalVal::makeReal(V.asNumeric());
  if (K == ScalarKind::Int && V.Kind == ScalarKind::Real)
    return ScalVal::makeInt(static_cast<int64_t>(V.R));
  reportFatalError("scalar interp: invalid coercion");
}

} // namespace

class ScalarInterp::Impl {
public:
  Impl(const Program &Prog, const machine::MachineConfig &Machine,
       const ExternRegistry *Externs, const RunOptions &Opts,
       DataStore &Store, const std::optional<ParallelSlice> &Slice,
       bool RecordWrites, ScalarRunResult &Result)
      : Prog(Prog), Machine(Machine), Externs(Externs), Opts(Opts),
        Store(Store), Slice(Slice), RecordWrites(RecordWrites),
        Result(Result) {
    Result.Tr.Watch = Opts.Watch;
    Result.Tr.Lanes = 1;
    IsWork.reserve(Opts.WorkTargets.size());
  }

  void run() {
    execBody(Prog.body());
    Result.Stats.Seconds = Result.Stats.Cycles * Machine.SecondsPerCycle;
  }

private:
  const Program &Prog;
  const machine::MachineConfig &Machine;
  const ExternRegistry *Externs;
  const RunOptions &Opts;
  DataStore &Store;
  const std::optional<ParallelSlice> &Slice;
  bool RecordWrites;
  ScalarRunResult &Result;
  /// Nesting depth of sliced parallel loops: every top-level DOALL is
  /// partitioned, but a DOALL nested inside an already-sliced one runs
  /// in full (nested parallelism is not re-partitioned).
  int SliceDepth = 0;
  int64_t LoopIterations = 0;
  std::vector<std::string> IsWork;
  /// Enclosing statements, outermost first; rendered lazily on traps.
  std::vector<const Stmt *> StmtStack;

  [[noreturn]] void trap(TrapKind K, std::string Detail) {
    throw TrapException{
        {K, {}, renderStmtLocation(StmtStack), std::move(Detail)}};
  }

  void charge(double Cycles) {
    Result.Stats.Cycles += Cycles;
    Result.Stats.Instructions += 1;
    if (Opts.Fuel > 0 && Result.Stats.Instructions > Opts.Fuel)
      trap(TrapKind::FuelExhausted,
           "fuel budget of " + std::to_string(Opts.Fuel) +
               " instructions exhausted in '" + Prog.name() + "'");
    if (deadlineExpired(Opts, Result.Stats.Instructions))
      trap(TrapKind::DeadlineExpired,
           "wall-clock deadline expired in '" + Prog.name() + "'");
  }

  void countLoopIteration() {
    if (++LoopIterations > Opts.MaxLoopIterations)
      trap(TrapKind::FuelExhausted,
           "loop iteration limit of " +
               std::to_string(Opts.MaxLoopIterations) + " exceeded in '" +
               Prog.name() + "' (non-terminating transform?)");
    charge(Machine.Costs.LoopOverhead);
  }

  bool isWorkTarget(const std::string &Name) const {
    return std::find(Opts.WorkTargets.begin(), Opts.WorkTargets.end(),
                     Name) != Opts.WorkTargets.end();
  }

  bool isWorkCall(const std::string &Name) const {
    return std::find(Opts.WorkCalls.begin(), Opts.WorkCalls.end(), Name) !=
           Opts.WorkCalls.end();
  }

  void recordWorkStep() {
    Result.Stats.WorkSteps += 1;
    Result.Stats.WorkActiveLanes += 1;
    Result.Stats.WorkTotalLanes += 1;
    if (Opts.Watch.empty())
      return;
    Trace::Step Step;
    Step.Values.reserve(Opts.Watch.size());
    for (const std::string &W : Opts.Watch)
      Step.Values.push_back(Store.getInt(W));
    Step.Active.assign(1, 1);
    Result.Tr.Steps.push_back(std::move(Step));
  }

  ScalVal evalCall(const std::string &Callee,
                   const std::vector<ExprPtr> &Args) {
    if (!Externs)
      trap(TrapKind::ExternFailure,
           "no extern registry for call to '" + Callee + "'");
    const ExternImpl *Impl = Externs->lookup(Callee);
    if (!Impl)
      trap(TrapKind::ExternFailure, "unbound extern '" + Callee + "'");
    std::vector<ScalVal> Vals;
    Vals.reserve(Args.size());
    for (const ExprPtr &A : Args)
      Vals.push_back(eval(*A));
    charge(Impl->Cost);
    if (isWorkCall(Callee))
      recordWorkStep();
    try {
      return Impl->Fn(Vals);
    } catch (const ExternError &E) {
      trap(TrapKind::ExternFailure,
           "extern '" + Callee + "' failed: " + E.Message);
    }
  }

  ScalVal eval(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      return ScalVal::makeInt(cast<IntLit>(&E)->value());
    case Expr::Kind::RealLit:
      return ScalVal::makeReal(cast<RealLit>(&E)->value());
    case Expr::Kind::BoolLit:
      return ScalVal::makeBool(cast<BoolLit>(&E)->value());
    case Expr::Kind::VarRef: {
      const Slot &S = Store.slot(cast<VarRef>(&E)->name());
      if (S.Decl->isArray())
        trap(TrapKind::InvalidProgram, "whole-array reference to '" +
                                           S.Decl->Name +
                                           "' outside a reduction");
      ScalVal V;
      V.Kind = S.Decl->Kind;
      if (S.isReal())
        V.R = S.R[0];
      else
        V.I = S.I[0];
      return V;
    }
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      const Slot &S = Store.slot(A->name());
      std::vector<int64_t> Idx;
      Idx.reserve(A->indices().size());
      for (const ExprPtr &I : A->indices())
        Idx.push_back(eval(*I).asInt());
      int64_t Flat = DataStore::flatIndex(*S.Decl, Idx);
      if (Flat < 0)
        trap(TrapKind::OutOfBounds,
             "index out of bounds reading '" + A->name() + "'" +
                 renderIndices(Idx));
      charge(Machine.Costs.GatherOp);
      ScalVal V;
      V.Kind = S.Decl->Kind;
      if (S.isReal())
        V.R = S.R[static_cast<size_t>(Flat)];
      else
        V.I = S.I[static_cast<size_t>(Flat)];
      return V;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      ScalVal V = eval(U->operand());
      if (U->op() == UnOp::Not) {
        charge(Machine.Costs.LogicOp);
        return ScalVal::makeBool(!V.asBool());
      }
      charge(V.Kind == ScalarKind::Real ? Machine.Costs.RealOp
                                        : Machine.Costs.IntOp);
      if (V.Kind == ScalarKind::Real)
        return ScalVal::makeReal(-V.R);
      return ScalVal::makeInt(-V.I);
    }
    case Expr::Kind::Binary:
      return evalBinary(*cast<BinaryExpr>(&E));
    case Expr::Kind::Intrinsic:
      return evalIntrinsic(*cast<IntrinsicExpr>(&E));
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(&E);
      return evalCall(C->callee(), C->args());
    }
    }
    SIMDFLAT_UNREACHABLE("bad Expr kind");
  }

  ScalVal evalBinary(const BinaryExpr &B) {
    ScalVal L = eval(B.lhs());
    ScalVal R = eval(B.rhs());
    BinOp Op = B.op();
    if (Op == BinOp::And || Op == BinOp::Or) {
      charge(Machine.Costs.LogicOp);
      bool LV = L.asBool(), RV = R.asBool();
      return ScalVal::makeBool(Op == BinOp::And ? (LV && RV) : (LV || RV));
    }
    if (isComparison(Op)) {
      charge(Machine.Costs.CmpOp);
      if (L.Kind == ScalarKind::Bool || R.Kind == ScalarKind::Bool) {
        assert(L.Kind == ScalarKind::Bool && R.Kind == ScalarKind::Bool &&
               "mixed bool comparison");
        bool LV = L.asBool(), RV = R.asBool();
        return ScalVal::makeBool(Op == BinOp::Eq ? LV == RV : LV != RV);
      }
      double LV = L.asNumeric(), RV = R.asNumeric();
      bool Out = false;
      switch (Op) {
      case BinOp::Eq:
        Out = LV == RV;
        break;
      case BinOp::Ne:
        Out = LV != RV;
        break;
      case BinOp::Lt:
        Out = LV < RV;
        break;
      case BinOp::Le:
        Out = LV <= RV;
        break;
      case BinOp::Gt:
        Out = LV > RV;
        break;
      case BinOp::Ge:
        Out = LV >= RV;
        break;
      default:
        SIMDFLAT_UNREACHABLE("not a comparison");
      }
      return ScalVal::makeBool(Out);
    }
    // Arithmetic.
    bool RealOp = B.type() == ScalarKind::Real;
    charge(RealOp ? Machine.Costs.RealOp : Machine.Costs.IntOp);
    if (RealOp) {
      double LV = L.asNumeric(), RV = R.asNumeric();
      switch (Op) {
      case BinOp::Add:
        return ScalVal::makeReal(LV + RV);
      case BinOp::Sub:
        return ScalVal::makeReal(LV - RV);
      case BinOp::Mul:
        return ScalVal::makeReal(LV * RV);
      case BinOp::Div:
        return ScalVal::makeReal(LV / RV);
      default:
        SIMDFLAT_UNREACHABLE("bad real arithmetic op");
      }
    }
    int64_t LV = L.asInt(), RV = R.asInt();
    switch (Op) {
    case BinOp::Add:
      return ScalVal::makeInt(LV + RV);
    case BinOp::Sub:
      return ScalVal::makeInt(LV - RV);
    case BinOp::Mul:
      return ScalVal::makeInt(LV * RV);
    case BinOp::Div:
      if (RV == 0)
        trap(TrapKind::DivByZero, "integer division by zero");
      return ScalVal::makeInt(LV / RV);
    case BinOp::Mod:
      if (RV == 0)
        trap(TrapKind::DivByZero, "MOD by zero");
      return ScalVal::makeInt(LV % RV);
    default:
      SIMDFLAT_UNREACHABLE("bad int arithmetic op");
    }
  }

  ScalVal evalIntrinsic(const IntrinsicExpr &I) {
    switch (I.op()) {
    case IntrinsicOp::Max:
    case IntrinsicOp::Min: {
      ScalVal A = eval(*I.args()[0]);
      ScalVal B = eval(*I.args()[1]);
      bool RealOp = I.type() == ScalarKind::Real;
      charge(RealOp ? Machine.Costs.RealOp : Machine.Costs.IntOp);
      bool TakeA = I.op() == IntrinsicOp::Max ? A.asNumeric() >= B.asNumeric()
                                              : A.asNumeric() <= B.asNumeric();
      ScalVal Out = TakeA ? A : B;
      return coerce(Out, I.type());
    }
    case IntrinsicOp::Abs: {
      ScalVal A = eval(*I.args()[0]);
      charge(A.Kind == ScalarKind::Real ? Machine.Costs.RealOp
                                        : Machine.Costs.IntOp);
      if (A.Kind == ScalarKind::Real)
        return ScalVal::makeReal(std::fabs(A.R));
      return ScalVal::makeInt(std::llabs(A.I));
    }
    case IntrinsicOp::Sqrt: {
      ScalVal A = eval(*I.args()[0]);
      charge(Machine.Costs.RealOp);
      if (A.R < 0.0)
        trap(TrapKind::DomainError, "SQRT of a negative value");
      return ScalVal::makeReal(std::sqrt(A.R));
    }
    case IntrinsicOp::LaneIndex:
      return ScalVal::makeInt(1);
    case IntrinsicOp::NumLanes:
      return ScalVal::makeInt(1);
    case IntrinsicOp::Any:
    case IntrinsicOp::All: {
      // Single lane: the reduction is the operand itself.
      ScalVal A = eval(*I.args()[0]);
      charge(Machine.Costs.ReduceOp);
      return ScalVal::makeBool(A.asBool());
    }
    case IntrinsicOp::MaxRed:
    case IntrinsicOp::MinRed:
    case IntrinsicOp::SumRed: {
      ScalVal A = eval(*I.args()[0]);
      charge(Machine.Costs.ReduceOp);
      return A;
    }
    case IntrinsicOp::MaxVal:
    case IntrinsicOp::SumVal: {
      const auto *V = cast<VarRef>(I.args()[0].get());
      const Slot &S = Store.slot(V->name());
      assert(S.Decl->isArray() && "array reduction of a scalar");
      charge(Machine.Costs.ReduceOp *
             static_cast<double>(Machine.layersFor(S.Width)));
      if (S.isReal()) {
        double Acc = I.op() == IntrinsicOp::SumVal
                         ? 0.0
                         : -std::numeric_limits<double>::infinity();
        for (double X : S.R)
          Acc = I.op() == IntrinsicOp::SumVal ? Acc + X : std::max(Acc, X);
        return ScalVal::makeReal(Acc);
      }
      int64_t Acc = I.op() == IntrinsicOp::SumVal
                        ? 0
                        : std::numeric_limits<int64_t>::min();
      for (int64_t X : S.I)
        Acc = I.op() == IntrinsicOp::SumVal ? Acc + X : std::max(Acc, X);
      return ScalVal::makeInt(Acc);
    }
    }
    SIMDFLAT_UNREACHABLE("bad IntrinsicOp");
  }

  void execAssign(const AssignStmt &A) {
    ScalVal V = eval(A.value());
    if (const auto *T = dyn_cast<VarRef>(&A.target())) {
      Slot &S = Store.slot(T->name());
      assert(S.Decl->isScalar() && "assignment to whole array");
      ScalVal C = coerce(V, S.Decl->Kind);
      charge(Machine.Costs.MoveOp);
      if (S.isReal())
        S.R.assign(S.R.size(), C.R);
      else
        S.I.assign(S.I.size(), C.I);
      if (isWorkTarget(T->name()))
        recordWorkStep();
      return;
    }
    const auto *T = cast<ArrayRef>(&A.target());
    Slot &S = Store.slot(T->name());
    std::vector<int64_t> Idx;
    Idx.reserve(T->indices().size());
    for (const ExprPtr &I : T->indices())
      Idx.push_back(eval(*I).asInt());
    int64_t Flat = DataStore::flatIndex(*S.Decl, Idx);
    if (Flat < 0)
      trap(TrapKind::OutOfBounds,
           "index out of bounds writing '" + T->name() + "'" +
               renderIndices(Idx));
    ScalVal C = coerce(V, S.Decl->Kind);
    charge(Machine.Costs.ScatterOp);
    if (S.isReal())
      S.R[static_cast<size_t>(Flat)] = C.R;
    else
      S.I[static_cast<size_t>(Flat)] = C.I;
    if (RecordWrites)
      Result.Writes.push_back({T->name(), Flat, C});
    if (isWorkTarget(T->name()))
      recordWorkStep();
  }

  /// Returns the slice of iterations processor Proc owns for a parallel
  /// loop running Lo..Hi (step 1): [begin, end] with stride Stride.
  struct OwnedRange {
    int64_t Begin, End, Stride;
  };
  OwnedRange ownedRange(int64_t Lo, int64_t Hi) const {
    const ParallelSlice &S = *Slice;
    int64_t Count = Hi - Lo + 1;
    if (Count < 0)
      Count = 0;
    if (S.PartLayout == machine::Layout::Block) {
      int64_t Chunk = (Count + S.NumProcs - 1) / S.NumProcs;
      int64_t Begin = Lo + S.Proc * Chunk;
      int64_t End = std::min(Hi, Begin + Chunk - 1);
      return {Begin, End, 1};
    }
    return {Lo + S.Proc, Hi, S.NumProcs};
  }

  void execDo(const DoStmt &D) {
    int64_t Lo = eval(D.lo()).asInt();
    int64_t Hi = eval(D.hi()).asInt();
    int64_t Step = D.step() ? eval(*D.step()).asInt() : 1;
    if (Step == 0)
      trap(TrapKind::InvalidProgram,
           "DO " + D.indexVar() + " has a step of zero");
    bool DoSlice = D.isParallel() && Slice && SliceDepth == 0;
    if (DoSlice) {
      assert(Step == 1 && "sliced parallel loop must have unit step");
      ++SliceDepth;
      OwnedRange R = ownedRange(Lo, Hi);
      Lo = R.Begin;
      Hi = R.End;
      Step = R.Stride;
    }
    Slot &IV = Store.slot(D.indexVar());
    assert(IV.Decl->isScalar() && !IV.isReal() && "bad DO index variable");
    for (int64_t V = Lo; Step > 0 ? V <= Hi : V >= Hi; V += Step) {
      countLoopIteration();
      IV.I.assign(IV.I.size(), V);
      execBody(D.body());
    }
    // Fortran leaves the index one step past the last iteration.
    int64_t Trips = Step > 0 ? (Hi >= Lo ? (Hi - Lo) / Step + 1 : 0)
                             : (Lo >= Hi ? (Lo - Hi) / (-Step) + 1 : 0);
    IV.I.assign(IV.I.size(), Lo + Trips * Step);
    if (DoSlice)
      --SliceDepth;
  }

  void execForall(const ForallStmt &F) {
    int64_t Lo = eval(F.lo()).asInt();
    int64_t Hi = eval(F.hi()).asInt();
    Slot &IV = Store.slot(F.indexVar());
    for (int64_t V = Lo; V <= Hi; ++V) {
      countLoopIteration();
      IV.I.assign(IV.I.size(), V);
      if (F.mask() && !eval(*F.mask()).asBool())
        continue;
      execBody(F.body());
    }
  }

  void execBody(const Body &B) {
    size_t PC = 0;
    while (PC < B.size()) {
      const Stmt &S = *B[PC];
      StmtStack.push_back(&S);
      switch (S.kind()) {
      case Stmt::Kind::Assign:
        execAssign(*cast<AssignStmt>(&S));
        break;
      case Stmt::Kind::If: {
        const auto *I = cast<IfStmt>(&S);
        charge(Machine.Costs.CmpOp);
        if (eval(I->cond()).asBool())
          execBody(I->thenBody());
        else
          execBody(I->elseBody());
        break;
      }
      case Stmt::Kind::Where: {
        // Single lane: WHERE degenerates to IF.
        const auto *W = cast<WhereStmt>(&S);
        charge(Machine.Costs.LogicOp);
        if (eval(W->cond()).asBool())
          execBody(W->thenBody());
        else
          execBody(W->elseBody());
        break;
      }
      case Stmt::Kind::Do:
        execDo(*cast<DoStmt>(&S));
        break;
      case Stmt::Kind::While: {
        const auto *W = cast<WhileStmt>(&S);
        while (eval(W->cond()).asBool()) {
          countLoopIteration();
          execBody(W->body());
        }
        break;
      }
      case Stmt::Kind::Repeat: {
        const auto *R = cast<RepeatStmt>(&S);
        do {
          countLoopIteration();
          execBody(R->body());
        } while (!eval(R->untilCond()).asBool());
        break;
      }
      case Stmt::Kind::Forall:
        execForall(*cast<ForallStmt>(&S));
        break;
      case Stmt::Kind::Call: {
        const auto *C = cast<CallStmt>(&S);
        evalCall(C->callee(), C->args());
        break;
      }
      case Stmt::Kind::Label:
        break;
      case Stmt::Kind::Goto: {
        const auto *G = cast<GotoStmt>(&S);
        bool Take = true;
        if (G->cond()) {
          charge(Machine.Costs.CmpOp);
          Take = eval(*G->cond()).asBool();
        }
        if (Take) {
          countLoopIteration();
          size_t Target = B.size();
          for (size_t I = 0; I < B.size(); ++I) {
            if (const auto *L = dyn_cast<LabelStmt>(B[I].get());
                L && L->label() == G->label()) {
              Target = I;
              break;
            }
          }
          if (Target == B.size())
            trap(TrapKind::InvalidProgram,
                 "GOTO target not in the same body");
          PC = Target;
        }
        break;
      }
      }
      StmtStack.pop_back();
      ++PC;
    }
  }
};

ScalarInterp::ScalarInterp(const Program &P,
                           const machine::MachineConfig &Machine,
                           const ExternRegistry *Externs, RunOptions Opts)
    : Prog(P), Machine(Machine), Externs(Externs), Opts(std::move(Opts)),
      Store(P, /*Lanes=*/1) {}

RunOutcome<ScalarRunResult> ScalarInterp::run() {
  assert(!HasRun && "ScalarInterp::run() may be called once");
  HasRun = true;
  ScalarRunResult Result;
  // Scalar-mode programs have no lanes, so HostSimd takes the bytecode
  // path by design (the engine enum selects tree vs lowered execution).
  if (Opts.Eng != Engine::Tree) {
    if (!Compiled)
      Compiled = std::make_shared<exec::Program>(
          exec::lower(Prog, exec::Mode::Scalar));
    try {
      exec::runScalar(*Compiled, Machine, Externs, Opts, Store, Slice,
                      RecordWrites, Result);
    } catch (TrapException &E) {
      return std::move(E.T);
    }
    return Result;
  }
  Impl I(Prog, Machine, Externs, Opts, Store, Slice, RecordWrites, Result);
  try {
    I.run();
  } catch (TrapException &E) {
    return std::move(E.T);
  }
  return Result;
}
