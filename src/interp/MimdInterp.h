//===- interp/MimdInterp.h - MIMD reference executor -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an F77 program the way the Fortran D compiler's MIMD backend
/// would (Fig. 3): the outermost parallel (DOALL) loop's iteration space
/// is partitioned across P processors under the owner-computes rule; each
/// processor runs independently with its own name space. The reported
/// time is the *maximum* over processors (Eq. 1: a max of sums), the
/// bound loop flattening reaches on the SIMD machine.
///
/// Stores are merged from per-processor write sets; overlapping writes
/// of different values from different processors are a safety violation
/// and raise a WriteConflict trap (this doubles as a dynamic
/// parallelizability check in the tests). A trap raised by any
/// processor's scalar engine propagates out annotated with the
/// processor index.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_MIMDINTERP_H
#define SIMDFLAT_INTERP_MIMDINTERP_H

#include "interp/ScalarInterp.h"

#include <functional>

namespace simdflat {
namespace interp {

/// Result of a MIMD execution.
struct MimdRunResult {
  /// Per-processor stats (WorkSteps is each processor's Eq. 1 summand).
  std::vector<RunStats> PerProc;
  /// Per-processor traces (Fig. 4 is rendered from these).
  std::vector<Trace> PerProcTrace;
  /// max_p WorkSteps_p - Eq. 1.
  int64_t TimeSteps = 0;
  /// max_p Seconds_p.
  double Seconds = 0.0;
  /// Stores merged from the per-processor write sets.
  std::unique_ptr<DataStore> Merged;
};

/// MIMD executor built on per-processor ScalarInterp slices.
class MimdInterp {
public:
  /// \p NumProcs processors partition the outermost DOALL under
  /// \p PartLayout. \p Init seeds each processor's (identical) input
  /// state and the merged output store.
  MimdInterp(const ir::Program &P, const machine::MachineConfig &Machine,
             const ExternRegistry *Externs, int64_t NumProcs,
             machine::Layout PartLayout, RunOptions Opts = {});

  /// Runs all processors; \p Init is invoked on every processor's store
  /// before execution. A trap on any processor (or a cross-processor
  /// write conflict) stops the run and returns the trap.
  RunOutcome<MimdRunResult> run(const std::function<void(DataStore &)> &Init);

private:
  const ir::Program &Prog;
  const machine::MachineConfig &Machine;
  const ExternRegistry *Externs;
  int64_t NumProcs;
  machine::Layout PartLayout;
  RunOptions Opts;
};

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_MIMDINTERP_H
