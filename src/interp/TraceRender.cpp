//===- interp/TraceRender.cpp ---------------------------------*- C++ -*-===//

#include "interp/TraceRender.h"

#include "support/Format.h"

#include <algorithm>

namespace {

/// Removes trailing spaces before the newline.
void endLine(std::string &Out) {
  while (!Out.empty() && Out.back() == ' ')
    Out.pop_back();
  Out += '\n';
}

} // namespace

using namespace simdflat;
using namespace simdflat::interp;

std::string interp::renderSimdTrace(const Trace &Tr) {
  std::string Out = padRight("Time", 6);
  for (size_t S = 1; S <= Tr.Steps.size(); ++S)
    Out += padLeft(std::to_string(S), 4);
  endLine(Out);
  for (int64_t Lane = 0; Lane < Tr.Lanes; ++Lane) {
    for (size_t W = 0; W < Tr.Watch.size(); ++W) {
      Out += padRight(Tr.Watch[W] + std::to_string(Lane + 1), 6);
      for (size_t S = 0; S < Tr.Steps.size(); ++S)
        Out += padLeft(Tr.active(S, Lane)
                           ? std::to_string(Tr.value(S, W, Lane))
                           : std::string("-"),
                       4);
      endLine(Out);
    }
  }
  return Out;
}

std::string interp::renderMimdTrace(const std::vector<Trace> &PerProc) {
  size_t MaxSteps = 0;
  for (const Trace &T : PerProc)
    MaxSteps = std::max(MaxSteps, T.Steps.size());
  std::string Out = padRight("Time", 6);
  for (size_t S = 1; S <= MaxSteps; ++S)
    Out += padLeft(std::to_string(S), 4);
  endLine(Out);
  for (size_t P = 0; P < PerProc.size(); ++P) {
    const Trace &T = PerProc[P];
    for (size_t W = 0; W < T.Watch.size(); ++W) {
      Out += padRight(T.Watch[W] + std::to_string(P + 1), 6);
      for (size_t S = 0; S < MaxSteps; ++S)
        Out += padLeft(S < T.Steps.size()
                           ? std::to_string(T.value(S, W, 0))
                           : std::string(""),
                       4);
      endLine(Out);
    }
  }
  return Out;
}
