//===- interp/MimdInterp.cpp ----------------------------------*- C++ -*-===//

#include "interp/MimdInterp.h"

#include "exec/Lower.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace simdflat;
using namespace simdflat::interp;

MimdInterp::MimdInterp(const ir::Program &P,
                       const machine::MachineConfig &Machine,
                       const ExternRegistry *Externs, int64_t NumProcs,
                       machine::Layout PartLayout, RunOptions Opts)
    : Prog(P), Machine(Machine), Externs(Externs), NumProcs(NumProcs),
      PartLayout(PartLayout), Opts(std::move(Opts)) {
  assert(NumProcs >= 1 && "need at least one processor");
}

RunOutcome<MimdRunResult>
MimdInterp::run(const std::function<void(DataStore &)> &Init) {
  MimdRunResult Result;
  Result.Merged = std::make_unique<DataStore>(Prog, /*Lanes=*/1);
  if (Init)
    Init(*Result.Merged);

  // Track the first writer of every array element to diagnose overlap.
  // Redundant writes of the *same* value from different processors are
  // benign (replicated computation, e.g. an inspector loop every
  // processor runs); conflicting values raise a WriteConflict trap.
  struct WriterInfo {
    int64_t Proc;
    ScalVal Value;
  };
  std::map<std::pair<std::string, int64_t>, WriterInfo> Writer;

  // Lower once and share the bytecode across all processor engines.
  std::shared_ptr<const exec::Program> Compiled;
  if (Opts.Eng != Engine::Tree)
    Compiled = std::make_shared<exec::Program>(
        exec::lower(Prog, exec::Mode::Scalar));

  for (int64_t P = 0; P < NumProcs; ++P) {
    ScalarInterp Interp(Prog, Machine, Externs, Opts);
    if (Compiled)
      Interp.setCompiled(Compiled);
    if (Init)
      Init(Interp.store());
    Interp.setSlice({P, NumProcs, PartLayout});
    Interp.setRecordWrites(true);
    RunOutcome<ScalarRunResult> Out = Interp.run();
    if (!Out) {
      // Propagate the processor's trap, annotated with who raised it.
      Trap T = Out.error();
      T.Detail = "processor " + std::to_string(P) + ": " + T.Detail;
      return T;
    }
    ScalarRunResult R = std::move(*Out);

    for (const WriteRecord &W : R.Writes) {
      auto Key = std::make_pair(W.Name, W.FlatIndex);
      auto [It, Fresh] = Writer.emplace(Key, WriterInfo{P, W.Value});
      if (!Fresh && It->second.Proc != P) {
        bool SameValue = It->second.Value.Kind == W.Value.Kind &&
                         It->second.Value.I == W.Value.I &&
                         It->second.Value.R == W.Value.R;
        if (!SameValue)
          return Trap{TrapKind::WriteConflict,
                      {It->second.Proc, P},
                      "merge of processor write sets",
                      "processors " + std::to_string(It->second.Proc) +
                          " and " + std::to_string(P) +
                          " wrote different values to " + W.Name +
                          " - the DOALL loop is not parallelizable"};
        It->second = {P, W.Value};
      } else if (!Fresh) {
        It->second = {P, W.Value};
      }
      Slot &S = Result.Merged->slot(W.Name);
      if (S.isReal())
        S.R[static_cast<size_t>(W.FlatIndex)] = W.Value.R;
      else
        S.I[static_cast<size_t>(W.FlatIndex)] = W.Value.I;
    }

    Result.TimeSteps = std::max(Result.TimeSteps, R.Stats.WorkSteps);
    Result.Seconds = std::max(Result.Seconds, R.Stats.Seconds);
    Result.PerProc.push_back(R.Stats);
    Result.PerProcTrace.push_back(std::move(R.Tr));
  }
  return Result;
}
