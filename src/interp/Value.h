//===- interp/Value.h - Runtime values --------------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime value representations: a scalar value (one lane) and a lane
/// vector (one value per lane of the SIMD machine). Ints and logicals
/// share the integer payload (logical = 0/1).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_VALUE_H
#define SIMDFLAT_INTERP_VALUE_H

#include "ir/Type.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace simdflat {
namespace interp {

/// One scalar runtime value.
struct ScalVal {
  ir::ScalarKind Kind = ir::ScalarKind::Int;
  int64_t I = 0;
  double R = 0.0;

  static ScalVal makeInt(int64_t V) { return {ir::ScalarKind::Int, V, 0.0}; }
  static ScalVal makeReal(double V) { return {ir::ScalarKind::Real, 0, V}; }
  static ScalVal makeBool(bool V) {
    return {ir::ScalarKind::Bool, V ? 1 : 0, 0.0};
  }

  bool asBool() const {
    assert(Kind == ir::ScalarKind::Bool && "not a logical");
    return I != 0;
  }
  int64_t asInt() const {
    assert(Kind == ir::ScalarKind::Int && "not an integer");
    return I;
  }
  /// Numeric value as double (int or real).
  double asNumeric() const {
    return Kind == ir::ScalarKind::Real ? R : static_cast<double>(I);
  }
};

/// One value per lane. Only the payload matching \c Kind is populated.
struct VecVal {
  ir::ScalarKind Kind = ir::ScalarKind::Int;
  std::vector<int64_t> I; ///< Int and Bool payloads (Bool is 0/1).
  std::vector<double> R;  ///< Real payload.

  int64_t lanes() const {
    return static_cast<int64_t>(Kind == ir::ScalarKind::Real ? R.size()
                                                             : I.size());
  }

  static VecVal broadcastInt(int64_t V, int64_t Lanes) {
    VecVal Out;
    Out.Kind = ir::ScalarKind::Int;
    Out.I.assign(static_cast<size_t>(Lanes), V);
    return Out;
  }
  static VecVal broadcastReal(double V, int64_t Lanes) {
    VecVal Out;
    Out.Kind = ir::ScalarKind::Real;
    Out.R.assign(static_cast<size_t>(Lanes), V);
    return Out;
  }
  static VecVal broadcastBool(bool V, int64_t Lanes) {
    VecVal Out;
    Out.Kind = ir::ScalarKind::Bool;
    Out.I.assign(static_cast<size_t>(Lanes), V ? 1 : 0);
    return Out;
  }

  ScalVal lane(int64_t L) const {
    ScalVal S;
    S.Kind = Kind;
    if (Kind == ir::ScalarKind::Real)
      S.R = R[static_cast<size_t>(L)];
    else
      S.I = I[static_cast<size_t>(L)];
    return S;
  }
};

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_VALUE_H
