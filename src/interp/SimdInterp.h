//===- interp/SimdInterp.h - Lockstep SIMD machine executor ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes F90simd-dialect programs the way a SIMD machine does: one
/// control unit, Gran lanes stepping in lockstep through every vector
/// instruction, a WHERE mask stack deciding which lanes commit stores.
/// Masked-out lanes pay full instruction time - the restriction the
/// paper's loop flattening attacks.
///
/// Semantics notes:
///  * IF / WHILE / REPEAT conditions and DO bounds must be
///    control-uniform (identical on all lanes); lane-varying conditionals
///    must use WHERE, lane-varying loops WHILE ANY(...). Violations
///    raise NonUniformControl traps - they are exactly the "SIMDization"
///    bugs the transform must avoid.
///  * Lane reductions (ANY/ALL/MAXRED/SUMRED) reduce over the currently
///    *active* lanes and broadcast the result.
///  * FORALL (e = 1 : N) sweeps the distributed index space; when N
///    exceeds the granularity the sweep serializes over memory layers,
///    charging each layer (Sec. 5.2/5.3).
///  * Reads/writes of distributed array elements homed on another lane
///    are counted as communication (the paper's measurements exclude
///    comm; our kernels keep the count at zero and tests assert it).
///  * Out-of-bounds subscripts raise an OutOfBounds trap naming the
///    faulting lanes if any such lane is active, and yield 0 on idle
///    lanes (idle lanes still execute gathers with whatever garbage
///    indices they hold - that is faithful to the hardware).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_INTERP_SIMDINTERP_H
#define SIMDFLAT_INTERP_SIMDINTERP_H

#include "interp/Extern.h"
#include "interp/RunStats.h"
#include "interp/Store.h"
#include "interp/Trap.h"
#include "machine/Machine.h"
#include "machine/MaskStack.h"

#include <memory>

namespace simdflat {
namespace exec {
struct Program;
} // namespace exec

namespace interp {

/// Result of one SIMD execution.
struct SimdRunResult {
  RunStats Stats;
  Trace Tr;
  /// The engine that actually ran. Differs from RunOptions::Eng only
  /// for Engine::Native, which degrades to Bytecode when no toolchain
  /// or compiled artifact is available (serving telemetry reports it).
  Engine EngineUsed = Engine::Bytecode;
};

/// Lockstep interpreter over Gran lanes.
class SimdInterp {
public:
  SimdInterp(const ir::Program &P, const machine::MachineConfig &Machine,
             const ExternRegistry *Externs, RunOptions Opts = {});
  ~SimdInterp();

  DataStore &store();
  const machine::MachineConfig &machineConfig() const;

  /// Supplies an already-lowered bytecode program (Mode::Simd) so
  /// callers running one pipeline stage many times (benches, fuzz
  /// oracle) lower once. Ignored under Engine::Tree.
  void setCompiled(std::shared_ptr<const exec::Program> Prog);

  /// Executes the program body once. May be called once per interpreter.
  /// Lane faults (an active lane out of bounds or dividing by zero,
  /// lane-varying uniform control, an exhausted fuel budget) return a
  /// Trap carrying the faulting lane set and statement location; the
  /// store keeps whatever committed before the fault.
  RunOutcome<SimdRunResult> run();

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace interp
} // namespace simdflat

#endif // SIMDFLAT_INTERP_SIMDINTERP_H
