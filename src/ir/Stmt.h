//===- ir/Stmt.h - Statement nodes of the loop-nest IR ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement AST for the pseudo-Fortran IR. Supports every loop form the
/// paper's Sec. 4/6 handles: DO, WHILE, DO-WHILE (RepeatStmt), FORALL and
/// GOTO loops (LabelStmt/GotoStmt, recovered into WHILEs by the front
/// end). WHERE/ELSEWHERE is the F90simd masked conditional.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_STMT_H
#define SIMDFLAT_IR_STMT_H

#include "ir/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace simdflat {
namespace ir {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
/// An ordered statement list ("block"). Bodies are stored inline in their
/// parent statements; there is no separate block node.
using Body = std::vector<StmtPtr>;

/// Base class of all statement nodes.
class Stmt {
public:
  enum class Kind {
    Assign,
    If,
    Where,
    Do,
    While,
    Repeat,
    Forall,
    Call,
    Label,
    Goto,
  };

  Kind kind() const { return K; }

  virtual ~Stmt() = default;
  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;

protected:
  explicit Stmt(Kind K) : K(K) {}

private:
  const Kind K;
};

/// Assignment `target = value`; target is a VarRef or ArrayRef.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Target, ExprPtr Value)
      : Stmt(Kind::Assign), Target(std::move(Target)),
        Value(std::move(Value)) {}

  const Expr &target() const { return *Target; }
  const Expr &value() const { return *Value; }
  ExprPtr &targetPtr() { return Target; }
  ExprPtr &valuePtr() { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  ExprPtr Target;
  ExprPtr Value;
};

/// IF (cond) THEN ... [ELSE ...] ENDIF. On the SIMD machine the condition
/// must be control-uniform (identical on all active lanes); Simdize turns
/// lane-varying IFs into WHEREs.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, Body Then, Body Else)
      : Stmt(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr &cond() const { return *Cond; }
  ExprPtr &condPtr() { return Cond; }
  const Body &thenBody() const { return Then; }
  const Body &elseBody() const { return Else; }
  Body &thenBody() { return Then; }
  Body &elseBody() { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  Body Then;
  Body Else;
};

/// WHERE (mask) ... [ELSEWHERE ...] ENDWHERE. Lanes where the mask is
/// false sit idle but still pay the instruction time - this is exactly
/// the SIMD inefficiency the paper studies.
class WhereStmt : public Stmt {
public:
  WhereStmt(ExprPtr Cond, Body Then, Body Else)
      : Stmt(Kind::Where), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr &cond() const { return *Cond; }
  ExprPtr &condPtr() { return Cond; }
  const Body &thenBody() const { return Then; }
  const Body &elseBody() const { return Else; }
  Body &thenBody() { return Then; }
  Body &elseBody() { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Where; }

private:
  ExprPtr Cond;
  Body Then;
  Body Else;
};

/// DO var = lo, hi [, step] ... ENDDO. `isParallel` marks a loop the
/// programmer asserted parallel (F77D FORALL-style header); this is the
/// safety information loop flattening needs (Sec. 6).
class DoStmt : public Stmt {
public:
  DoStmt(std::string IndexVar, ExprPtr Lo, ExprPtr Hi, ExprPtr StepOrNull,
         Body B, bool IsParallel = false)
      : Stmt(Kind::Do), IndexVar(std::move(IndexVar)), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Step(std::move(StepOrNull)), B(std::move(B)),
        IsParallel(IsParallel) {}

  const std::string &indexVar() const { return IndexVar; }
  const Expr &lo() const { return *Lo; }
  const Expr &hi() const { return *Hi; }
  /// Null means step 1.
  const Expr *step() const { return Step.get(); }
  ExprPtr &loPtr() { return Lo; }
  ExprPtr &hiPtr() { return Hi; }
  ExprPtr &stepPtr() { return Step; }
  const Body &body() const { return B; }
  Body &body() { return B; }
  bool isParallel() const { return IsParallel; }
  void setParallel(bool P) { IsParallel = P; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Do; }

private:
  std::string IndexVar;
  ExprPtr Lo;
  ExprPtr Hi;
  ExprPtr Step;
  Body B;
  bool IsParallel;
};

/// WHILE (cond) ... ENDWHILE (pre-test).
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, Body B)
      : Stmt(Kind::While), Cond(std::move(Cond)), B(std::move(B)) {}

  const Expr &cond() const { return *Cond; }
  ExprPtr &condPtr() { return Cond; }
  const Body &body() const { return B; }
  Body &body() { return B; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  Body B;
};

/// REPEAT ... UNTIL (cond) - a post-test loop (Fortran DO-WHILE in the
/// paper's terminology). The body runs at least once; iteration continues
/// while the condition is FALSE (i.e. `until`).
class RepeatStmt : public Stmt {
public:
  RepeatStmt(Body B, ExprPtr UntilCond)
      : Stmt(Kind::Repeat), B(std::move(B)), Until(std::move(UntilCond)) {}

  const Body &body() const { return B; }
  Body &body() { return B; }
  const Expr &untilCond() const { return *Until; }
  ExprPtr &untilCondPtr() { return Until; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Repeat; }

private:
  Body B;
  ExprPtr Until;
};

/// FORALL (var = lo : hi [, mask]) assignments ENDFORALL. Iterations are
/// independent by construction; the SIMD interpreter executes them
/// elementwise across lanes (this is how Fig. 16 expresses indirect
/// per-lane addressing).
class ForallStmt : public Stmt {
public:
  ForallStmt(std::string IndexVar, ExprPtr Lo, ExprPtr Hi, ExprPtr MaskOrNull,
             Body B)
      : Stmt(Kind::Forall), IndexVar(std::move(IndexVar)), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Mask(std::move(MaskOrNull)), B(std::move(B)) {}

  const std::string &indexVar() const { return IndexVar; }
  const Expr &lo() const { return *Lo; }
  const Expr &hi() const { return *Hi; }
  ExprPtr &loPtr() { return Lo; }
  ExprPtr &hiPtr() { return Hi; }
  /// Null means no mask.
  const Expr *mask() const { return Mask.get(); }
  ExprPtr &maskPtr() { return Mask; }
  const Body &body() const { return B; }
  Body &body() { return B; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Forall; }

private:
  std::string IndexVar;
  ExprPtr Lo;
  ExprPtr Hi;
  ExprPtr Mask;
  Body B;
};

/// CALL callee(args). The callee is an extern subroutine; it may write
/// array arguments (see interp/Extern.h).
class CallStmt : public Stmt {
public:
  CallStmt(std::string Callee, std::vector<ExprPtr> Args)
      : Stmt(Kind::Call), Callee(std::move(Callee)), Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  std::vector<ExprPtr> &args() { return Args; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// A numeric statement label (`10 CONTINUE`). Only meaningful as a GOTO
/// target; the front end recovers label/goto cycles into WHILE loops
/// before any transformation runs.
class LabelStmt : public Stmt {
public:
  explicit LabelStmt(int Label) : Stmt(Kind::Label), Label(Label) {}

  int label() const { return Label; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Label; }

private:
  int Label;
};

/// GOTO label, or IF (cond) GOTO label when a condition is present.
class GotoStmt : public Stmt {
public:
  GotoStmt(int Label, ExprPtr CondOrNull)
      : Stmt(Kind::Goto), Label(Label), Cond(std::move(CondOrNull)) {}

  int label() const { return Label; }
  /// Null means an unconditional jump.
  const Expr *cond() const { return Cond.get(); }
  ExprPtr &condPtr() { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Goto; }

private:
  int Label;
  ExprPtr Cond;
};

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_STMT_H
