//===- ir/Program.h - Program container with symbol table ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is a flat symbol table (variables with shapes and
/// distribution attributes, extern functions with purity) plus a
/// top-level statement body. Programs exist in two dialects sharing this
/// representation: F77 (sequential; every variable Control) and F90simd
/// (lane-parallel; produced by transform::Simdize).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_PROGRAM_H
#define SIMDFLAT_IR_PROGRAM_H

#include "ir/Stmt.h"
#include "ir/Type.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace simdflat {
namespace ir {

/// Declaration of one variable.
struct VarDecl {
  std::string Name;
  ScalarKind Kind = ScalarKind::Int;
  /// Array extents (Fortran 1-based dims); empty means scalar.
  std::vector<int64_t> Dims;
  Dist Distribution = Dist::Control;

  bool isScalar() const { return Dims.empty(); }
  bool isArray() const { return !Dims.empty(); }
  /// Total number of elements (1 for scalars).
  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    return N;
  }
};

/// Declaration of an externally provided function or subroutine.
struct ExternDecl {
  std::string Name;
  /// Result kind for functions; ignored for subroutines.
  ScalarKind Ret = ScalarKind::Real;
  /// True if calls have no side effects and depend only on arguments and
  /// read-only captured state. Impure externs block the Fig. 11/12
  /// flattening optimizations (Sec. 4 conditions).
  bool Pure = true;
  bool IsSubroutine = false;
};

/// The program dialect. Transformations check this to reject misuse
/// (e.g. running Simdize twice).
enum class Dialect { F77, F90Simd };

/// A complete program: declarations plus a top-level body.
class Program {
public:
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Dialect dialect() const { return Dia; }
  void setDialect(Dialect D) { Dia = D; }

  /// Adds a variable; asserts the name is fresh.
  VarDecl &addVar(const std::string &VarName, ScalarKind Kind,
                  std::vector<int64_t> Dims = {},
                  Dist Distribution = Dist::Control);

  /// Adds a variable whose name is \p Hint if free, else Hint1, Hint2...
  /// Used by transformations to introduce guard flags t1, t2 (Fig. 9).
  VarDecl &addFreshVar(const std::string &Hint, ScalarKind Kind);

  /// Returns the declaration of \p VarName or null.
  const VarDecl *lookupVar(const std::string &VarName) const;
  VarDecl *lookupVar(const std::string &VarName);

  /// Declares an extern function/subroutine; asserts the name is fresh.
  ExternDecl &addExtern(const std::string &FnName, ScalarKind Ret,
                        bool Pure = true, bool IsSubroutine = false);

  /// Returns the extern declaration of \p FnName or null.
  const ExternDecl *lookupExtern(const std::string &FnName) const;

  const std::vector<VarDecl> &vars() const { return Vars; }
  std::vector<VarDecl> &vars() { return Vars; }
  const std::vector<ExternDecl> &externs() const { return Externs; }

  const Body &body() const { return B; }
  Body &body() { return B; }
  void setBody(Body NewBody) { B = std::move(NewBody); }

private:
  std::string Name;
  Dialect Dia = Dialect::F77;
  std::vector<VarDecl> Vars;
  std::vector<ExternDecl> Externs;
  Body B;
};

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_PROGRAM_H
