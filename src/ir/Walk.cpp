//===- ir/Walk.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Walk.h"

#include "support/Error.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::ir;

ExprPtr ir::cloneExpr(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return std::make_unique<IntLit>(cast<IntLit>(&E)->value());
  case Expr::Kind::RealLit:
    return std::make_unique<RealLit>(cast<RealLit>(&E)->value());
  case Expr::Kind::BoolLit:
    return std::make_unique<BoolLit>(cast<BoolLit>(&E)->value());
  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRef>(&E);
    return std::make_unique<VarRef>(V->name(), V->type());
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    std::vector<ExprPtr> Indices;
    Indices.reserve(A->indices().size());
    for (const ExprPtr &I : A->indices())
      Indices.push_back(cloneExpr(*I));
    return std::make_unique<ArrayRef>(A->name(), A->type(),
                                      std::move(Indices));
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    return std::make_unique<UnaryExpr>(U->op(), cloneExpr(U->operand()),
                                       U->type());
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    return std::make_unique<BinaryExpr>(B->op(), cloneExpr(B->lhs()),
                                        cloneExpr(B->rhs()), B->type());
  }
  case Expr::Kind::Intrinsic: {
    const auto *I = cast<IntrinsicExpr>(&E);
    std::vector<ExprPtr> Args;
    Args.reserve(I->args().size());
    for (const ExprPtr &A : I->args())
      Args.push_back(cloneExpr(*A));
    return std::make_unique<IntrinsicExpr>(I->op(), std::move(Args),
                                           I->type());
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(&E);
    std::vector<ExprPtr> Args;
    Args.reserve(C->args().size());
    for (const ExprPtr &A : C->args())
      Args.push_back(cloneExpr(*A));
    return std::make_unique<CallExpr>(C->callee(), std::move(Args),
                                      C->type());
  }
  }
  SIMDFLAT_UNREACHABLE("bad Expr kind");
}

StmtPtr ir::cloneStmt(const Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    return std::make_unique<AssignStmt>(cloneExpr(A->target()),
                                        cloneExpr(A->value()));
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    return std::make_unique<IfStmt>(cloneExpr(I->cond()),
                                    cloneBody(I->thenBody()),
                                    cloneBody(I->elseBody()));
  }
  case Stmt::Kind::Where: {
    const auto *W = cast<WhereStmt>(&S);
    return std::make_unique<WhereStmt>(cloneExpr(W->cond()),
                                       cloneBody(W->thenBody()),
                                       cloneBody(W->elseBody()));
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(&S);
    return std::make_unique<DoStmt>(
        D->indexVar(), cloneExpr(D->lo()), cloneExpr(D->hi()),
        D->step() ? cloneExpr(*D->step()) : nullptr, cloneBody(D->body()),
        D->isParallel());
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    return std::make_unique<WhileStmt>(cloneExpr(W->cond()),
                                       cloneBody(W->body()));
  }
  case Stmt::Kind::Repeat: {
    const auto *R = cast<RepeatStmt>(&S);
    return std::make_unique<RepeatStmt>(cloneBody(R->body()),
                                        cloneExpr(R->untilCond()));
  }
  case Stmt::Kind::Forall: {
    const auto *F = cast<ForallStmt>(&S);
    return std::make_unique<ForallStmt>(
        F->indexVar(), cloneExpr(F->lo()), cloneExpr(F->hi()),
        F->mask() ? cloneExpr(*F->mask()) : nullptr, cloneBody(F->body()));
  }
  case Stmt::Kind::Call: {
    const auto *C = cast<CallStmt>(&S);
    std::vector<ExprPtr> Args;
    Args.reserve(C->args().size());
    for (const ExprPtr &A : C->args())
      Args.push_back(cloneExpr(*A));
    return std::make_unique<CallStmt>(C->callee(), std::move(Args));
  }
  case Stmt::Kind::Label:
    return std::make_unique<LabelStmt>(cast<LabelStmt>(&S)->label());
  case Stmt::Kind::Goto: {
    const auto *G = cast<GotoStmt>(&S);
    return std::make_unique<GotoStmt>(
        G->label(), G->cond() ? cloneExpr(*G->cond()) : nullptr);
  }
  }
  SIMDFLAT_UNREACHABLE("bad Stmt kind");
}

Body ir::cloneBody(const Body &B) {
  Body Out;
  Out.reserve(B.size());
  for (const StmtPtr &S : B)
    Out.push_back(cloneStmt(*S));
  return Out;
}

bool ir::exprEquals(const Expr &A, const Expr &B) {
  if (A.kind() != B.kind() || A.type() != B.type())
    return false;
  switch (A.kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLit>(&A)->value() == cast<IntLit>(&B)->value();
  case Expr::Kind::RealLit:
    return cast<RealLit>(&A)->value() == cast<RealLit>(&B)->value();
  case Expr::Kind::BoolLit:
    return cast<BoolLit>(&A)->value() == cast<BoolLit>(&B)->value();
  case Expr::Kind::VarRef:
    return cast<VarRef>(&A)->name() == cast<VarRef>(&B)->name();
  case Expr::Kind::ArrayRef: {
    const auto *AA = cast<ArrayRef>(&A), *BA = cast<ArrayRef>(&B);
    if (AA->name() != BA->name() ||
        AA->indices().size() != BA->indices().size())
      return false;
    for (size_t I = 0; I < AA->indices().size(); ++I)
      if (!exprEquals(*AA->indices()[I], *BA->indices()[I]))
        return false;
    return true;
  }
  case Expr::Kind::Unary: {
    const auto *AU = cast<UnaryExpr>(&A), *BU = cast<UnaryExpr>(&B);
    return AU->op() == BU->op() && exprEquals(AU->operand(), BU->operand());
  }
  case Expr::Kind::Binary: {
    const auto *AB = cast<BinaryExpr>(&A), *BB = cast<BinaryExpr>(&B);
    return AB->op() == BB->op() && exprEquals(AB->lhs(), BB->lhs()) &&
           exprEquals(AB->rhs(), BB->rhs());
  }
  case Expr::Kind::Intrinsic: {
    const auto *AI = cast<IntrinsicExpr>(&A), *BI = cast<IntrinsicExpr>(&B);
    if (AI->op() != BI->op() || AI->args().size() != BI->args().size())
      return false;
    for (size_t I = 0; I < AI->args().size(); ++I)
      if (!exprEquals(*AI->args()[I], *BI->args()[I]))
        return false;
    return true;
  }
  case Expr::Kind::Call: {
    const auto *AC = cast<CallExpr>(&A), *BC = cast<CallExpr>(&B);
    if (AC->callee() != BC->callee() ||
        AC->args().size() != BC->args().size())
      return false;
    for (size_t I = 0; I < AC->args().size(); ++I)
      if (!exprEquals(*AC->args()[I], *BC->args()[I]))
        return false;
    return true;
  }
  }
  SIMDFLAT_UNREACHABLE("bad Expr kind");
}

bool ir::stmtEquals(const Stmt &A, const Stmt &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Stmt::Kind::Assign: {
    const auto *AA = cast<AssignStmt>(&A), *BA = cast<AssignStmt>(&B);
    return exprEquals(AA->target(), BA->target()) &&
           exprEquals(AA->value(), BA->value());
  }
  case Stmt::Kind::If: {
    const auto *AI = cast<IfStmt>(&A), *BI = cast<IfStmt>(&B);
    return exprEquals(AI->cond(), BI->cond()) &&
           bodyEquals(AI->thenBody(), BI->thenBody()) &&
           bodyEquals(AI->elseBody(), BI->elseBody());
  }
  case Stmt::Kind::Where: {
    const auto *AW = cast<WhereStmt>(&A), *BW = cast<WhereStmt>(&B);
    return exprEquals(AW->cond(), BW->cond()) &&
           bodyEquals(AW->thenBody(), BW->thenBody()) &&
           bodyEquals(AW->elseBody(), BW->elseBody());
  }
  case Stmt::Kind::Do: {
    const auto *AD = cast<DoStmt>(&A), *BD = cast<DoStmt>(&B);
    if (AD->indexVar() != BD->indexVar() ||
        AD->isParallel() != BD->isParallel())
      return false;
    if (static_cast<bool>(AD->step()) != static_cast<bool>(BD->step()))
      return false;
    if (AD->step() && !exprEquals(*AD->step(), *BD->step()))
      return false;
    return exprEquals(AD->lo(), BD->lo()) && exprEquals(AD->hi(), BD->hi()) &&
           bodyEquals(AD->body(), BD->body());
  }
  case Stmt::Kind::While: {
    const auto *AW = cast<WhileStmt>(&A), *BW = cast<WhileStmt>(&B);
    return exprEquals(AW->cond(), BW->cond()) &&
           bodyEquals(AW->body(), BW->body());
  }
  case Stmt::Kind::Repeat: {
    const auto *AR = cast<RepeatStmt>(&A), *BR = cast<RepeatStmt>(&B);
    return exprEquals(AR->untilCond(), BR->untilCond()) &&
           bodyEquals(AR->body(), BR->body());
  }
  case Stmt::Kind::Forall: {
    const auto *AF = cast<ForallStmt>(&A), *BF = cast<ForallStmt>(&B);
    if (AF->indexVar() != BF->indexVar())
      return false;
    if (static_cast<bool>(AF->mask()) != static_cast<bool>(BF->mask()))
      return false;
    if (AF->mask() && !exprEquals(*AF->mask(), *BF->mask()))
      return false;
    return exprEquals(AF->lo(), BF->lo()) && exprEquals(AF->hi(), BF->hi()) &&
           bodyEquals(AF->body(), BF->body());
  }
  case Stmt::Kind::Call: {
    const auto *AC = cast<CallStmt>(&A), *BC = cast<CallStmt>(&B);
    if (AC->callee() != BC->callee() ||
        AC->args().size() != BC->args().size())
      return false;
    for (size_t I = 0; I < AC->args().size(); ++I)
      if (!exprEquals(*AC->args()[I], *BC->args()[I]))
        return false;
    return true;
  }
  case Stmt::Kind::Label:
    return cast<LabelStmt>(&A)->label() == cast<LabelStmt>(&B)->label();
  case Stmt::Kind::Goto: {
    const auto *AG = cast<GotoStmt>(&A), *BG = cast<GotoStmt>(&B);
    if (AG->label() != BG->label())
      return false;
    if (static_cast<bool>(AG->cond()) != static_cast<bool>(BG->cond()))
      return false;
    return !AG->cond() || exprEquals(*AG->cond(), *BG->cond());
  }
  }
  SIMDFLAT_UNREACHABLE("bad Stmt kind");
}

bool ir::bodyEquals(const Body &A, const Body &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!stmtEquals(*A[I], *B[I]))
      return false;
  return true;
}

/// Rewrites \p Slot in place if it is a matching VarRef, else recurses.
static void substituteIn(ExprPtr &Slot, const std::string &Name,
                         const Expr &Replacement) {
  if (const auto *V = dyn_cast<VarRef>(Slot.get())) {
    if (V->name() == Name) {
      Slot = cloneExpr(Replacement);
      return;
    }
  }
  switch (Slot->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::RealLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::ArrayRef:
    for (ExprPtr &I : cast<ArrayRef>(Slot.get())->indices())
      substituteIn(I, Name, Replacement);
    return;
  case Expr::Kind::Unary:
    substituteIn(cast<UnaryExpr>(Slot.get())->operandPtr(), Name,
                 Replacement);
    return;
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(Slot.get());
    substituteIn(B->lhsPtr(), Name, Replacement);
    substituteIn(B->rhsPtr(), Name, Replacement);
    return;
  }
  case Expr::Kind::Intrinsic:
    for (ExprPtr &A : cast<IntrinsicExpr>(Slot.get())->args())
      substituteIn(A, Name, Replacement);
    return;
  case Expr::Kind::Call:
    for (ExprPtr &A : cast<CallExpr>(Slot.get())->args())
      substituteIn(A, Name, Replacement);
    return;
  }
  SIMDFLAT_UNREACHABLE("bad Expr kind");
}

ExprPtr ir::substituteVar(const Expr &E, const std::string &Name,
                          const Expr &Replacement) {
  ExprPtr Copy = cloneExpr(E);
  substituteIn(Copy, Name, Replacement);
  return Copy;
}

void ir::substituteVarInStmt(Stmt &S, const std::string &Name,
                             const Expr &Replacement) {
  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(&S);
    substituteIn(A->targetPtr(), Name, Replacement);
    substituteIn(A->valuePtr(), Name, Replacement);
    return;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(&S);
    substituteIn(I->condPtr(), Name, Replacement);
    substituteVarInBody(I->thenBody(), Name, Replacement);
    substituteVarInBody(I->elseBody(), Name, Replacement);
    return;
  }
  case Stmt::Kind::Where: {
    auto *W = cast<WhereStmt>(&S);
    substituteIn(W->condPtr(), Name, Replacement);
    substituteVarInBody(W->thenBody(), Name, Replacement);
    substituteVarInBody(W->elseBody(), Name, Replacement);
    return;
  }
  case Stmt::Kind::Do: {
    auto *D = cast<DoStmt>(&S);
    assert(D->indexVar() != Name &&
           "substituting a variable rebound by a DO loop");
    substituteIn(D->loPtr(), Name, Replacement);
    substituteIn(D->hiPtr(), Name, Replacement);
    if (D->step())
      substituteIn(D->stepPtr(), Name, Replacement);
    substituteVarInBody(D->body(), Name, Replacement);
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(&S);
    substituteIn(W->condPtr(), Name, Replacement);
    substituteVarInBody(W->body(), Name, Replacement);
    return;
  }
  case Stmt::Kind::Repeat: {
    auto *R = cast<RepeatStmt>(&S);
    substituteVarInBody(R->body(), Name, Replacement);
    substituteIn(R->untilCondPtr(), Name, Replacement);
    return;
  }
  case Stmt::Kind::Forall: {
    auto *F = cast<ForallStmt>(&S);
    assert(F->indexVar() != Name &&
           "substituting a variable rebound by a FORALL");
    substituteIn(F->loPtr(), Name, Replacement);
    substituteIn(F->hiPtr(), Name, Replacement);
    if (F->mask())
      substituteIn(F->maskPtr(), Name, Replacement);
    substituteVarInBody(F->body(), Name, Replacement);
    return;
  }
  case Stmt::Kind::Call:
    for (ExprPtr &A : cast<CallStmt>(&S)->args())
      substituteIn(A, Name, Replacement);
    return;
  case Stmt::Kind::Label:
    return;
  case Stmt::Kind::Goto: {
    auto *G = cast<GotoStmt>(&S);
    if (G->cond())
      substituteIn(G->condPtr(), Name, Replacement);
    return;
  }
  }
  SIMDFLAT_UNREACHABLE("bad Stmt kind");
}

void ir::substituteVarInBody(Body &B, const std::string &Name,
                             const Expr &Replacement) {
  for (StmtPtr &S : B)
    substituteVarInStmt(*S, Name, Replacement);
}

void ir::forEachExpr(const Expr &E,
                     const std::function<void(const Expr &)> &Fn) {
  Fn(E);
  switch (E.kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::RealLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::ArrayRef:
    for (const ExprPtr &I : cast<ArrayRef>(&E)->indices())
      forEachExpr(*I, Fn);
    return;
  case Expr::Kind::Unary:
    forEachExpr(cast<UnaryExpr>(&E)->operand(), Fn);
    return;
  case Expr::Kind::Binary:
    forEachExpr(cast<BinaryExpr>(&E)->lhs(), Fn);
    forEachExpr(cast<BinaryExpr>(&E)->rhs(), Fn);
    return;
  case Expr::Kind::Intrinsic:
    for (const ExprPtr &A : cast<IntrinsicExpr>(&E)->args())
      forEachExpr(*A, Fn);
    return;
  case Expr::Kind::Call:
    for (const ExprPtr &A : cast<CallExpr>(&E)->args())
      forEachExpr(*A, Fn);
    return;
  }
  SIMDFLAT_UNREACHABLE("bad Expr kind");
}

void ir::forEachExprInStmt(const Stmt &S,
                           const std::function<void(const Expr &)> &Fn) {
  auto WalkBody = [&](const Body &B) {
    for (const StmtPtr &Child : B)
      forEachExprInStmt(*Child, Fn);
  };
  switch (S.kind()) {
  case Stmt::Kind::Assign:
    forEachExpr(cast<AssignStmt>(&S)->target(), Fn);
    forEachExpr(cast<AssignStmt>(&S)->value(), Fn);
    return;
  case Stmt::Kind::If:
    forEachExpr(cast<IfStmt>(&S)->cond(), Fn);
    WalkBody(cast<IfStmt>(&S)->thenBody());
    WalkBody(cast<IfStmt>(&S)->elseBody());
    return;
  case Stmt::Kind::Where:
    forEachExpr(cast<WhereStmt>(&S)->cond(), Fn);
    WalkBody(cast<WhereStmt>(&S)->thenBody());
    WalkBody(cast<WhereStmt>(&S)->elseBody());
    return;
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(&S);
    forEachExpr(D->lo(), Fn);
    forEachExpr(D->hi(), Fn);
    if (D->step())
      forEachExpr(*D->step(), Fn);
    WalkBody(D->body());
    return;
  }
  case Stmt::Kind::While:
    forEachExpr(cast<WhileStmt>(&S)->cond(), Fn);
    WalkBody(cast<WhileStmt>(&S)->body());
    return;
  case Stmt::Kind::Repeat:
    WalkBody(cast<RepeatStmt>(&S)->body());
    forEachExpr(cast<RepeatStmt>(&S)->untilCond(), Fn);
    return;
  case Stmt::Kind::Forall: {
    const auto *F = cast<ForallStmt>(&S);
    forEachExpr(F->lo(), Fn);
    forEachExpr(F->hi(), Fn);
    if (F->mask())
      forEachExpr(*F->mask(), Fn);
    WalkBody(F->body());
    return;
  }
  case Stmt::Kind::Call:
    for (const ExprPtr &A : cast<CallStmt>(&S)->args())
      forEachExpr(*A, Fn);
    return;
  case Stmt::Kind::Label:
    return;
  case Stmt::Kind::Goto:
    if (cast<GotoStmt>(&S)->cond())
      forEachExpr(*cast<GotoStmt>(&S)->cond(), Fn);
    return;
  }
  SIMDFLAT_UNREACHABLE("bad Stmt kind");
}

void ir::forEachStmt(const Body &B,
                     const std::function<void(const Stmt &)> &Fn) {
  for (const StmtPtr &S : B) {
    Fn(*S);
    switch (S->kind()) {
    case Stmt::Kind::If:
      forEachStmt(cast<IfStmt>(S.get())->thenBody(), Fn);
      forEachStmt(cast<IfStmt>(S.get())->elseBody(), Fn);
      break;
    case Stmt::Kind::Where:
      forEachStmt(cast<WhereStmt>(S.get())->thenBody(), Fn);
      forEachStmt(cast<WhereStmt>(S.get())->elseBody(), Fn);
      break;
    case Stmt::Kind::Do:
      forEachStmt(cast<DoStmt>(S.get())->body(), Fn);
      break;
    case Stmt::Kind::While:
      forEachStmt(cast<WhileStmt>(S.get())->body(), Fn);
      break;
    case Stmt::Kind::Repeat:
      forEachStmt(cast<RepeatStmt>(S.get())->body(), Fn);
      break;
    case Stmt::Kind::Forall:
      forEachStmt(cast<ForallStmt>(S.get())->body(), Fn);
      break;
    default:
      break;
    }
  }
}

size_t ir::countStmts(const Body &B) {
  size_t N = 0;
  forEachStmt(B, [&N](const Stmt &) { ++N; });
  return N;
}

Program ir::cloneProgram(const Program &P) {
  Program Out(P.name());
  Out.setDialect(P.dialect());
  for (const VarDecl &V : P.vars())
    Out.addVar(V.Name, V.Kind, V.Dims, V.Distribution);
  for (const ExternDecl &E : P.externs())
    Out.addExtern(E.Name, E.Ret, E.Pure, E.IsSubroutine);
  Out.setBody(cloneBody(P.body()));
  return Out;
}
