//===- ir/Verify.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Verify.h"

#include "support/Format.h"

using namespace simdflat;
using namespace simdflat::ir;

namespace {

bool isNumeric(ScalarKind K) {
  return K == ScalarKind::Int || K == ScalarKind::Real;
}

class Verifier {
public:
  explicit Verifier(const Program &P) : P(P) {}

  std::vector<std::string> Issues;

  void run() {
    checkBody(P.body());
    if (P.dialect() == Dialect::F90Simd && HasUnstructured)
      Issues.push_back("F90simd program contains GOTO-form control flow");
  }

private:
  const Program &P;
  bool HasUnstructured = false;

  void issue(std::string Msg) { Issues.push_back(std::move(Msg)); }

  /// Recomputes the type of \p E bottom-up, reporting inconsistencies.
  /// Returns the recomputed type (the stored one on failure, to limit
  /// cascades).
  ScalarKind checkExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      return ScalarKind::Int;
    case Expr::Kind::RealLit:
      return ScalarKind::Real;
    case Expr::Kind::BoolLit:
      return ScalarKind::Bool;
    case Expr::Kind::VarRef: {
      const auto *V = cast<VarRef>(&E);
      const VarDecl *D = P.lookupVar(V->name());
      if (!D) {
        issue("reference to undeclared variable '" + V->name() + "'");
        return E.type();
      }
      if (D->Kind != E.type())
        issue("VarRef '" + V->name() + "' caches the wrong type");
      return D->Kind;
    }
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      const VarDecl *D = P.lookupVar(A->name());
      if (!D) {
        issue("reference to undeclared array '" + A->name() + "'");
        return E.type();
      }
      if (!D->isArray())
        issue("subscripted reference to scalar '" + A->name() + "'");
      else if (D->Dims.size() != A->indices().size())
        issue(formatf("'%s' has rank %zu but %zu subscripts",
                      A->name().c_str(), D->Dims.size(),
                      A->indices().size()));
      for (const ExprPtr &I : A->indices())
        if (checkExpr(*I) != ScalarKind::Int)
          issue("non-integer subscript on '" + A->name() + "'");
      if (D->Kind != E.type())
        issue("ArrayRef '" + A->name() + "' caches the wrong type");
      return D->Kind;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      ScalarKind Op = checkExpr(U->operand());
      if (U->op() == UnOp::Not) {
        if (Op != ScalarKind::Bool)
          issue(".NOT. applied to a non-logical");
        return ScalarKind::Bool;
      }
      if (!isNumeric(Op))
        issue("negation of a non-numeric");
      return Op;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      ScalarKind L = checkExpr(B->lhs());
      ScalarKind R = checkExpr(B->rhs());
      switch (B->op()) {
      case BinOp::And:
      case BinOp::Or:
        if (L != ScalarKind::Bool || R != ScalarKind::Bool)
          issue("logical operator on non-logicals");
        return check(E, ScalarKind::Bool);
      case BinOp::Eq:
      case BinOp::Ne:
        if (!((L == ScalarKind::Bool && R == ScalarKind::Bool) ||
              (isNumeric(L) && isNumeric(R))))
          issue("comparison of incompatible kinds");
        return check(E, ScalarKind::Bool);
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (!isNumeric(L) || !isNumeric(R))
          issue("ordering of non-numerics");
        return check(E, ScalarKind::Bool);
      case BinOp::Mod:
        if (L != ScalarKind::Int || R != ScalarKind::Int)
          issue("MOD of non-integers");
        return check(E, ScalarKind::Int);
      default:
        if (!isNumeric(L) || !isNumeric(R))
          issue("arithmetic on non-numerics");
        return check(E, L == ScalarKind::Real || R == ScalarKind::Real
                            ? ScalarKind::Real
                            : ScalarKind::Int);
      }
    }
    case Expr::Kind::Intrinsic: {
      const auto *I = cast<IntrinsicExpr>(&E);
      for (const ExprPtr &A : I->args())
        checkExpr(*A);
      if (isArrayReduction(I->op())) {
        if (I->args().size() != 1 ||
            !isa<VarRef>(I->args()[0].get())) {
          issue("array reduction needs a whole-array argument");
        } else {
          const auto *V = cast<VarRef>(I->args()[0].get());
          const VarDecl *D = P.lookupVar(V->name());
          if (!D || !D->isArray())
            issue("array reduction of a non-array");
        }
      }
      return E.type();
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(&E);
      const ExternDecl *D = P.lookupExtern(C->callee());
      if (!D)
        issue("call to undeclared extern '" + C->callee() + "'");
      else if (D->IsSubroutine)
        issue("subroutine '" + C->callee() + "' used as a function");
      else if (D->Ret != E.type())
        issue("CallExpr '" + C->callee() + "' caches the wrong type");
      for (const ExprPtr &A : C->args())
        checkExpr(*A);
      return E.type();
    }
    }
    return E.type();
  }

  ScalarKind check(const Expr &E, ScalarKind Want) {
    if (E.type() != Want)
      issue("expression caches the wrong type");
    return Want;
  }

  void checkCond(const Expr &E, const char *What) {
    if (checkExpr(E) != ScalarKind::Bool)
      issue(std::string(What) + " is not logical");
  }

  void checkIndexVar(const std::string &Name, const char *What) {
    const VarDecl *D = P.lookupVar(Name);
    if (!D)
      issue(std::string(What) + " index '" + Name + "' is undeclared");
    else if (D->Kind != ScalarKind::Int || D->isArray())
      issue(std::string(What) + " index '" + Name +
            "' must be an integer scalar");
  }

  void checkBody(const Body &B) {
    for (const StmtPtr &SP : B)
      checkStmt(*SP);
  }

  void checkStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      if (!isa<VarRef>(&A->target()) && !isa<ArrayRef>(&A->target())) {
        issue("assignment target is not a variable or array element");
        return;
      }
      if (const auto *V = dyn_cast<VarRef>(&A->target())) {
        const VarDecl *D = P.lookupVar(V->name());
        if (D && D->isArray())
          issue("assignment to whole array '" + V->name() + "'");
      }
      ScalarKind T = checkExpr(A->target());
      ScalarKind V = checkExpr(A->value());
      if (T != V && !(isNumeric(T) && isNumeric(V)))
        issue("assignment of incompatible kinds");
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      checkCond(I->cond(), "IF condition");
      checkBody(I->thenBody());
      checkBody(I->elseBody());
      return;
    }
    case Stmt::Kind::Where: {
      const auto *W = cast<WhereStmt>(&S);
      checkCond(W->cond(), "WHERE mask");
      checkBody(W->thenBody());
      checkBody(W->elseBody());
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(&S);
      checkIndexVar(D->indexVar(), "DO");
      if (checkExpr(D->lo()) != ScalarKind::Int)
        issue("non-integer DO lower bound");
      if (checkExpr(D->hi()) != ScalarKind::Int)
        issue("non-integer DO upper bound");
      if (D->step() && checkExpr(*D->step()) != ScalarKind::Int)
        issue("non-integer DO step");
      checkBody(D->body());
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&S);
      checkCond(W->cond(), "WHILE condition");
      checkBody(W->body());
      return;
    }
    case Stmt::Kind::Repeat: {
      const auto *R = cast<RepeatStmt>(&S);
      checkBody(R->body());
      checkCond(R->untilCond(), "UNTIL condition");
      return;
    }
    case Stmt::Kind::Forall: {
      const auto *F = cast<ForallStmt>(&S);
      checkIndexVar(F->indexVar(), "FORALL");
      if (checkExpr(F->lo()) != ScalarKind::Int ||
          checkExpr(F->hi()) != ScalarKind::Int)
        issue("non-integer FORALL bounds");
      if (F->mask())
        checkCond(*F->mask(), "FORALL mask");
      checkBody(F->body());
      return;
    }
    case Stmt::Kind::Call: {
      const auto *C = cast<CallStmt>(&S);
      const ExternDecl *D = P.lookupExtern(C->callee());
      if (!D)
        issue("CALL of undeclared extern '" + C->callee() + "'");
      else if (!D->IsSubroutine)
        issue("CALL of function '" + C->callee() + "'");
      for (const ExprPtr &A : C->args())
        checkExpr(*A);
      return;
    }
    case Stmt::Kind::Label:
    case Stmt::Kind::Goto:
      HasUnstructured = true;
      if (const auto *G = dyn_cast<GotoStmt>(&S); G && G->cond())
        checkCond(*G->cond(), "GOTO condition");
      return;
    }
  }
};

} // namespace

std::vector<std::string> ir::verifyProgram(const Program &P) {
  Verifier V(P);
  V.run();
  return V.Issues;
}
