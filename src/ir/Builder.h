//===- ir/Builder.h - Convenience construction of IR nodes -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Builder is bound to a Program and constructs type-checked expression
/// and statement nodes, resolving variable kinds through the program's
/// symbol table. All kernels in this repository (EXAMPLE, GENNEST,
/// NBFORCE, Mandelbrot, ...) are assembled through this API; the front
/// end's parser uses it too.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_BUILDER_H
#define SIMDFLAT_IR_BUILDER_H

#include "ir/Program.h"

namespace simdflat {
namespace ir {

/// Type-checked IR node factory bound to one Program.
class Builder {
public:
  explicit Builder(Program &P) : P(P) {}

  Program &program() { return P; }

  /// \name Literals
  /// @{
  ExprPtr lit(int64_t V) const;
  ExprPtr lit(int V) const { return lit(static_cast<int64_t>(V)); }
  ExprPtr lit(double V) const;
  ExprPtr lit(bool V) const;
  /// @}

  /// \name References
  /// @{

  /// Reference to a declared variable. For arrays this is a whole-array
  /// reference (only valid inside MAXVAL/SUMVAL or as a call argument).
  ExprPtr var(const std::string &Name) const;

  /// Subscripted reference `Name(Indices...)`.
  ExprPtr at(const std::string &Name, std::vector<ExprPtr> Indices) const;
  ExprPtr at(const std::string &Name, ExprPtr I0) const;
  ExprPtr at(const std::string &Name, ExprPtr I0, ExprPtr I1) const;
  ExprPtr at(const std::string &Name, ExprPtr I0, ExprPtr I1,
             ExprPtr I2) const;
  /// @}

  /// \name Arithmetic and logic (types checked, int/real promoted)
  /// @{
  ExprPtr add(ExprPtr L, ExprPtr R) const;
  ExprPtr sub(ExprPtr L, ExprPtr R) const;
  ExprPtr mul(ExprPtr L, ExprPtr R) const;
  ExprPtr div(ExprPtr L, ExprPtr R) const;
  ExprPtr mod(ExprPtr L, ExprPtr R) const;
  ExprPtr eq(ExprPtr L, ExprPtr R) const;
  ExprPtr ne(ExprPtr L, ExprPtr R) const;
  ExprPtr lt(ExprPtr L, ExprPtr R) const;
  ExprPtr le(ExprPtr L, ExprPtr R) const;
  ExprPtr gt(ExprPtr L, ExprPtr R) const;
  ExprPtr ge(ExprPtr L, ExprPtr R) const;
  ExprPtr land(ExprPtr L, ExprPtr R) const;
  ExprPtr lor(ExprPtr L, ExprPtr R) const;
  ExprPtr lnot(ExprPtr E) const;
  ExprPtr neg(ExprPtr E) const;
  /// @}

  /// \name Intrinsics
  /// @{
  ExprPtr max(ExprPtr L, ExprPtr R) const;
  ExprPtr min(ExprPtr L, ExprPtr R) const;
  ExprPtr abs(ExprPtr E) const;
  ExprPtr sqrt(ExprPtr E) const;
  ExprPtr laneIndex() const;
  ExprPtr numLanes() const;
  ExprPtr any(ExprPtr E) const;
  ExprPtr all(ExprPtr E) const;
  ExprPtr maxRed(ExprPtr E) const;
  ExprPtr minRed(ExprPtr E) const;
  ExprPtr sumRed(ExprPtr E) const;
  ExprPtr maxVal(const std::string &ArrayName) const;
  ExprPtr sumVal(const std::string &ArrayName) const;
  /// @}

  /// Call to a declared extern function.
  ExprPtr callFn(const std::string &Callee, std::vector<ExprPtr> Args) const;

  /// \name Statements
  /// @{
  StmtPtr assign(ExprPtr Target, ExprPtr Value) const;
  /// Shorthand for `assign(var(Name), Value)`.
  StmtPtr set(const std::string &Name, ExprPtr Value) const;
  StmtPtr ifStmt(ExprPtr Cond, Body Then, Body Else = {}) const;
  StmtPtr where(ExprPtr Cond, Body Then, Body Else = {}) const;
  StmtPtr doLoop(const std::string &IndexVar, ExprPtr Lo, ExprPtr Hi, Body B,
                 ExprPtr Step = nullptr, bool IsParallel = false) const;
  StmtPtr whileLoop(ExprPtr Cond, Body B) const;
  StmtPtr repeatUntil(Body B, ExprPtr UntilCond) const;
  StmtPtr forall(const std::string &IndexVar, ExprPtr Lo, ExprPtr Hi,
                 ExprPtr MaskOrNull, Body B) const;
  StmtPtr callSub(const std::string &Callee,
                  std::vector<ExprPtr> Args) const;
  StmtPtr label(int Label) const;
  StmtPtr gotoStmt(int Label, ExprPtr CondOrNull = nullptr) const;
  /// @}

  /// Builds a Body from statements.
  template <typename... Ts> static Body body(Ts &&...Stmts) {
    Body B;
    (B.push_back(std::forward<Ts>(Stmts)), ...);
    return B;
  }

private:
  ScalarKind varKind(const std::string &Name) const;
  ExprPtr binary(BinOp Op, ExprPtr L, ExprPtr R) const;

  Program &P;
};

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_BUILDER_H
