//===- ir/Expr.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Expr.h"

#include "support/Error.h"

using namespace simdflat;
using namespace simdflat::ir;

const char *ir::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::Int:
    return "integer";
  case ScalarKind::Real:
    return "real";
  case ScalarKind::Bool:
    return "logical";
  }
  SIMDFLAT_UNREACHABLE("bad ScalarKind");
}

const char *ir::distName(Dist D) {
  switch (D) {
  case Dist::Control:
    return "control";
  case Dist::Replicated:
    return "replicated";
  case Dist::Distributed:
    return "distributed";
  }
  SIMDFLAT_UNREACHABLE("bad Dist");
}

const char *ir::binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "MOD";
  case BinOp::Eq:
    return "=";
  case BinOp::Ne:
    return "/=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::And:
    return ".AND.";
  case BinOp::Or:
    return ".OR.";
  }
  SIMDFLAT_UNREACHABLE("bad BinOp");
}

bool ir::isComparison(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return true;
  default:
    return false;
  }
}

const char *ir::intrinsicName(IntrinsicOp Op) {
  switch (Op) {
  case IntrinsicOp::Max:
    return "MAX";
  case IntrinsicOp::Min:
    return "MIN";
  case IntrinsicOp::Abs:
    return "ABS";
  case IntrinsicOp::Sqrt:
    return "SQRT";
  case IntrinsicOp::LaneIndex:
    return "LANEINDEX";
  case IntrinsicOp::NumLanes:
    return "NUMLANES";
  case IntrinsicOp::Any:
    return "ANY";
  case IntrinsicOp::All:
    return "ALL";
  case IntrinsicOp::MaxRed:
    return "MAXRED";
  case IntrinsicOp::MinRed:
    return "MINRED";
  case IntrinsicOp::SumRed:
    return "SUMRED";
  case IntrinsicOp::MaxVal:
    return "MAXVAL";
  case IntrinsicOp::SumVal:
    return "SUMVAL";
  }
  SIMDFLAT_UNREACHABLE("bad IntrinsicOp");
}

bool ir::isLaneReduction(IntrinsicOp Op) {
  switch (Op) {
  case IntrinsicOp::Any:
  case IntrinsicOp::All:
  case IntrinsicOp::MaxRed:
  case IntrinsicOp::MinRed:
  case IntrinsicOp::SumRed:
    return true;
  default:
    return false;
  }
}

bool ir::isArrayReduction(IntrinsicOp Op) {
  return Op == IntrinsicOp::MaxVal || Op == IntrinsicOp::SumVal;
}
