//===- ir/Walk.h - Clone, compare, substitute, traverse --------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural utilities over the AST: deep cloning (the transformations
/// duplicate init/test/increment phases, Sec. 4), structural equality
/// (tests), variable substitution (SIMDization renames induction
/// variables), and generic traversal callbacks.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_WALK_H
#define SIMDFLAT_IR_WALK_H

#include "ir/Program.h"

#include <functional>

namespace simdflat {
namespace ir {

/// Deep-copies an expression tree.
ExprPtr cloneExpr(const Expr &E);

/// Deep-copies a statement tree.
StmtPtr cloneStmt(const Stmt &S);

/// Deep-copies a statement list.
Body cloneBody(const Body &B);

/// Structural equality of expressions (kinds, operators, names, values).
bool exprEquals(const Expr &A, const Expr &B);

/// Structural equality of statements.
bool stmtEquals(const Stmt &A, const Stmt &B);

/// Structural equality of statement lists.
bool bodyEquals(const Body &A, const Body &B);

/// Returns a copy of \p E in which every scalar VarRef named \p Name is
/// replaced by a clone of \p Replacement. Array names are not touched;
/// subscript expressions are rewritten.
ExprPtr substituteVar(const Expr &E, const std::string &Name,
                      const Expr &Replacement);

/// In-place substitution of scalar VarRefs named \p Name inside \p S
/// (conditions, bounds, subscripts, values). DO/FORALL index-variable
/// *bindings* are left alone; callers must not substitute a variable that
/// is rebound inside \p S (asserted).
void substituteVarInStmt(Stmt &S, const std::string &Name,
                         const Expr &Replacement);

/// In-place substitution over a whole body.
void substituteVarInBody(Body &B, const std::string &Name,
                         const Expr &Replacement);

/// Invokes \p Fn on \p E and every sub-expression, pre-order.
void forEachExpr(const Expr &E, const std::function<void(const Expr &)> &Fn);

/// Invokes \p Fn on every expression occurring in \p S (recursively
/// through nested statements), pre-order within each expression.
void forEachExprInStmt(const Stmt &S,
                       const std::function<void(const Expr &)> &Fn);

/// Invokes \p Fn on every statement in \p B, pre-order, recursing into
/// nested bodies.
void forEachStmt(const Body &B, const std::function<void(const Stmt &)> &Fn);

/// Counts all statements in \p B recursively.
size_t countStmts(const Body &B);

/// Deep-copies a whole program (declarations, externs, body, dialect).
Program cloneProgram(const Program &P);

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_WALK_H
