//===- ir/Printer.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Printer.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::ir;

namespace {

/// Binding strengths for parenthesization (higher binds tighter).
enum Precedence {
  PrecOr = 1,
  PrecAnd = 2,
  PrecNot = 3,
  PrecCmp = 4,
  PrecAdd = 5,
  PrecMul = 6,
  PrecNeg = 7,
  PrecPrimary = 8,
};

int binOpPrecedence(BinOp Op) {
  switch (Op) {
  case BinOp::Or:
    return PrecOr;
  case BinOp::And:
    return PrecAnd;
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return PrecCmp;
  case BinOp::Add:
  case BinOp::Sub:
    return PrecAdd;
  case BinOp::Mul:
  case BinOp::Div:
    return PrecMul;
  case BinOp::Mod:
    return PrecPrimary; // Printed function-style: MOD(a, b).
  }
  SIMDFLAT_UNREACHABLE("bad BinOp");
}

const char *binOpPrintSpelling(BinOp Op) {
  // Like binOpSpelling but with unambiguous equality for re-parsing.
  if (Op == BinOp::Eq)
    return "==";
  return binOpSpelling(Op);
}

class PrinterImpl {
public:
  explicit PrinterImpl(PrintOptions Opts) : Opts(Opts) {}

  std::string Out;

  void expr(const Expr &E, int ParentPrec) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      Out += std::to_string(cast<IntLit>(&E)->value());
      return;
    case Expr::Kind::RealLit: {
      std::string S = formatf("%g", cast<RealLit>(&E)->value());
      if (S.find_first_of(".eE") == std::string::npos)
        S += ".0";
      Out += S;
      return;
    }
    case Expr::Kind::BoolLit:
      Out += cast<BoolLit>(&E)->value() ? ".TRUE." : ".FALSE.";
      return;
    case Expr::Kind::VarRef:
      Out += cast<VarRef>(&E)->name();
      return;
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      Out += A->name();
      Out += "(";
      for (size_t I = 0; I < A->indices().size(); ++I) {
        if (I != 0)
          Out += ", ";
        expr(*A->indices()[I], 0);
      }
      Out += ")";
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      int Prec = U->op() == UnOp::Not ? PrecNot : PrecNeg;
      bool Parens = Prec < ParentPrec;
      if (Parens)
        Out += "(";
      Out += U->op() == UnOp::Not ? ".NOT. " : "-";
      expr(U->operand(), Prec + 1);
      if (Parens)
        Out += ")";
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      if (B->op() == BinOp::Mod) {
        Out += "MOD(";
        expr(B->lhs(), 0);
        Out += ", ";
        expr(B->rhs(), 0);
        Out += ")";
        return;
      }
      int Prec = binOpPrecedence(B->op());
      bool Parens = Prec < ParentPrec;
      if (Parens)
        Out += "(";
      expr(B->lhs(), Prec);
      Out += " ";
      Out += binOpPrintSpelling(B->op());
      Out += " ";
      // Left-associative: the right child needs strictly higher binding.
      expr(B->rhs(), Prec + 1);
      if (Parens)
        Out += ")";
      return;
    }
    case Expr::Kind::Intrinsic: {
      const auto *I = cast<IntrinsicExpr>(&E);
      Out += intrinsicName(I->op());
      Out += "(";
      for (size_t A = 0; A < I->args().size(); ++A) {
        if (A != 0)
          Out += ", ";
        expr(*I->args()[A], 0);
      }
      Out += ")";
      return;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(&E);
      Out += C->callee();
      Out += "(";
      for (size_t A = 0; A < C->args().size(); ++A) {
        if (A != 0)
          Out += ", ";
        expr(*C->args()[A], 0);
      }
      Out += ")";
      return;
    }
    }
    SIMDFLAT_UNREACHABLE("bad Expr kind");
  }

  void indent(int Level) {
    Out += std::string(static_cast<size_t>(Level * Opts.IndentWidth), ' ');
  }

  void body(const Body &B, int Level) {
    for (const StmtPtr &S : B)
      stmt(*S, Level);
  }

  void stmt(const Stmt &S, int Level) {
    switch (S.kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      indent(Level);
      expr(A->target(), 0);
      Out += " = ";
      expr(A->value(), 0);
      Out += "\n";
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      // Conditional GOTO prints on one line (Fortran style).
      if (I->elseBody().empty() && I->thenBody().size() == 1) {
        if (const auto *G = dyn_cast<GotoStmt>(I->thenBody()[0].get());
            G && !G->cond()) {
          indent(Level);
          Out += "IF (";
          expr(I->cond(), 0);
          Out += formatf(") GOTO %d\n", G->label());
          return;
        }
      }
      indent(Level);
      Out += "IF (";
      expr(I->cond(), 0);
      Out += ") THEN\n";
      body(I->thenBody(), Level + 1);
      if (!I->elseBody().empty()) {
        indent(Level);
        Out += "ELSE\n";
        body(I->elseBody(), Level + 1);
      }
      indent(Level);
      Out += "ENDIF\n";
      return;
    }
    case Stmt::Kind::Where: {
      const auto *W = cast<WhereStmt>(&S);
      indent(Level);
      Out += "WHERE (";
      expr(W->cond(), 0);
      Out += ")\n";
      body(W->thenBody(), Level + 1);
      if (!W->elseBody().empty()) {
        indent(Level);
        Out += "ELSEWHERE\n";
        body(W->elseBody(), Level + 1);
      }
      indent(Level);
      Out += "ENDWHERE\n";
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(&S);
      indent(Level);
      Out += D->isParallel() ? "DOALL " : "DO ";
      Out += D->indexVar();
      Out += " = ";
      expr(D->lo(), 0);
      Out += ", ";
      expr(D->hi(), 0);
      if (D->step()) {
        Out += ", ";
        expr(*D->step(), 0);
      }
      Out += "\n";
      body(D->body(), Level + 1);
      indent(Level);
      Out += "ENDDO\n";
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&S);
      indent(Level);
      Out += "WHILE (";
      expr(W->cond(), 0);
      Out += ")\n";
      body(W->body(), Level + 1);
      indent(Level);
      Out += "ENDWHILE\n";
      return;
    }
    case Stmt::Kind::Repeat: {
      const auto *R = cast<RepeatStmt>(&S);
      indent(Level);
      Out += "REPEAT\n";
      body(R->body(), Level + 1);
      indent(Level);
      Out += "UNTIL (";
      expr(R->untilCond(), 0);
      Out += ")\n";
      return;
    }
    case Stmt::Kind::Forall: {
      const auto *F = cast<ForallStmt>(&S);
      indent(Level);
      Out += "FORALL (";
      Out += F->indexVar();
      Out += " = ";
      expr(F->lo(), 0);
      Out += " : ";
      expr(F->hi(), 0);
      if (F->mask()) {
        Out += ", ";
        expr(*F->mask(), 0);
      }
      Out += ")\n";
      body(F->body(), Level + 1);
      indent(Level);
      Out += "ENDFORALL\n";
      return;
    }
    case Stmt::Kind::Call: {
      const auto *C = cast<CallStmt>(&S);
      indent(Level);
      Out += "CALL ";
      Out += C->callee();
      Out += "(";
      for (size_t A = 0; A < C->args().size(); ++A) {
        if (A != 0)
          Out += ", ";
        expr(*C->args()[A], 0);
      }
      Out += ")\n";
      return;
    }
    case Stmt::Kind::Label:
      indent(Level);
      Out += formatf("%d CONTINUE\n", cast<LabelStmt>(&S)->label());
      return;
    case Stmt::Kind::Goto: {
      const auto *G = cast<GotoStmt>(&S);
      indent(Level);
      if (G->cond()) {
        Out += "IF (";
        expr(*G->cond(), 0);
        Out += ") ";
      }
      Out += formatf("GOTO %d\n", G->label());
      return;
    }
    }
    SIMDFLAT_UNREACHABLE("bad Stmt kind");
  }

  void decls(const Program &P) {
    Out += "PROGRAM ";
    Out += P.name();
    Out += "\n";
    for (const ExternDecl &E : P.externs()) {
      Out += "EXTERN ";
      if (!E.Pure)
        Out += "IMPURE ";
      if (E.IsSubroutine) {
        Out += "SUBROUTINE ";
      } else {
        Out += formatf("%s FUNCTION ",
                       scalarKindUpper(scalarKindName(E.Ret)).c_str());
      }
      Out += E.Name;
      Out += "\n";
    }
    for (const VarDecl &V : P.vars()) {
      switch (V.Distribution) {
      case Dist::Control:
        break;
      case Dist::Replicated:
        Out += "REPLICATED ";
        break;
      case Dist::Distributed:
        Out += "DISTRIBUTED ";
        break;
      }
      Out += scalarKindUpper(scalarKindName(V.Kind));
      Out += " ";
      Out += V.Name;
      if (V.isArray()) {
        Out += "(";
        for (size_t D = 0; D < V.Dims.size(); ++D) {
          if (D != 0)
            Out += ", ";
          Out += std::to_string(V.Dims[D]);
        }
        Out += ")";
      }
      Out += "\n";
    }
  }

private:
  static std::string scalarKindUpper(const char *Name) {
    std::string S = Name;
    for (char &C : S)
      C = static_cast<char>(toupper(C));
    return S;
  }

  PrintOptions Opts;
};

} // namespace

std::string ir::printExpr(const Expr &E) {
  PrinterImpl P({});
  P.expr(E, 0);
  return P.Out;
}

std::string ir::printStmt(const Stmt &S, PrintOptions Opts) {
  PrinterImpl P(Opts);
  P.stmt(S, 0);
  return P.Out;
}

std::string ir::printBody(const Body &B, PrintOptions Opts) {
  PrinterImpl P(Opts);
  P.body(B, 0);
  return P.Out;
}

std::string ir::printProgram(const Program &Prog, PrintOptions Opts) {
  PrinterImpl P(Opts);
  if (Opts.ShowDecls) {
    P.decls(Prog);
    P.Out += "BEGIN\n";
  }
  P.body(Prog.body(), Opts.ShowDecls ? 1 : 0);
  if (Opts.ShowDecls)
    P.Out += "END\n";
  return P.Out;
}
