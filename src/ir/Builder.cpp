//===- ir/Builder.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Builder.h"

#include "support/Error.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::ir;

static bool isNumeric(ScalarKind K) {
  return K == ScalarKind::Int || K == ScalarKind::Real;
}

static ScalarKind promote(ScalarKind A, ScalarKind B) {
  assert(isNumeric(A) && isNumeric(B) && "promotion of non-numeric kinds");
  if (A == ScalarKind::Real || B == ScalarKind::Real)
    return ScalarKind::Real;
  return ScalarKind::Int;
}

ExprPtr Builder::lit(int64_t V) const { return std::make_unique<IntLit>(V); }

ExprPtr Builder::lit(double V) const { return std::make_unique<RealLit>(V); }

ExprPtr Builder::lit(bool V) const { return std::make_unique<BoolLit>(V); }

ScalarKind Builder::varKind(const std::string &Name) const {
  const VarDecl *D = P.lookupVar(Name);
  if (!D)
    reportFatalError("builder: reference to undeclared variable '" + Name +
                     "' in program '" + P.name() + "'");
  return D->Kind;
}

ExprPtr Builder::var(const std::string &Name) const {
  return std::make_unique<VarRef>(Name, varKind(Name));
}

ExprPtr Builder::at(const std::string &Name,
                    std::vector<ExprPtr> Indices) const {
  const VarDecl *D = P.lookupVar(Name);
  if (!D)
    reportFatalError("builder: reference to undeclared array '" + Name + "'");
  if (D->Dims.size() != Indices.size())
    reportFatalError("builder: rank mismatch subscripting '" + Name + "'");
  for (const ExprPtr &I : Indices)
    assert(I->type() == ScalarKind::Int && "array index must be integer");
  return std::make_unique<ArrayRef>(Name, D->Kind, std::move(Indices));
}

ExprPtr Builder::at(const std::string &Name, ExprPtr I0) const {
  std::vector<ExprPtr> Indices;
  Indices.push_back(std::move(I0));
  return at(Name, std::move(Indices));
}

ExprPtr Builder::at(const std::string &Name, ExprPtr I0, ExprPtr I1) const {
  std::vector<ExprPtr> Indices;
  Indices.push_back(std::move(I0));
  Indices.push_back(std::move(I1));
  return at(Name, std::move(Indices));
}

ExprPtr Builder::at(const std::string &Name, ExprPtr I0, ExprPtr I1,
                    ExprPtr I2) const {
  std::vector<ExprPtr> Indices;
  Indices.push_back(std::move(I0));
  Indices.push_back(std::move(I1));
  Indices.push_back(std::move(I2));
  return at(Name, std::move(Indices));
}

ExprPtr Builder::binary(BinOp Op, ExprPtr L, ExprPtr R) const {
  ScalarKind LK = L->type(), RK = R->type();
  ScalarKind Ty = ScalarKind::Int;
  switch (Op) {
  case BinOp::Add:
  case BinOp::Sub:
  case BinOp::Mul:
  case BinOp::Div:
    Ty = promote(LK, RK);
    break;
  case BinOp::Mod:
    assert(LK == ScalarKind::Int && RK == ScalarKind::Int &&
           "MOD requires integers");
    Ty = ScalarKind::Int;
    break;
  case BinOp::Eq:
  case BinOp::Ne:
    assert((LK == RK || (isNumeric(LK) && isNumeric(RK))) &&
           "comparison of incompatible kinds");
    Ty = ScalarKind::Bool;
    break;
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    assert(isNumeric(LK) && isNumeric(RK) && "ordering of non-numerics");
    Ty = ScalarKind::Bool;
    break;
  case BinOp::And:
  case BinOp::Or:
    assert(LK == ScalarKind::Bool && RK == ScalarKind::Bool &&
           "logical op on non-logicals");
    Ty = ScalarKind::Bool;
    break;
  }
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Ty);
}

ExprPtr Builder::add(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Add, std::move(L), std::move(R));
}
ExprPtr Builder::sub(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Sub, std::move(L), std::move(R));
}
ExprPtr Builder::mul(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Mul, std::move(L), std::move(R));
}
ExprPtr Builder::div(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Div, std::move(L), std::move(R));
}
ExprPtr Builder::mod(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Mod, std::move(L), std::move(R));
}
ExprPtr Builder::eq(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Eq, std::move(L), std::move(R));
}
ExprPtr Builder::ne(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Ne, std::move(L), std::move(R));
}
ExprPtr Builder::lt(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Lt, std::move(L), std::move(R));
}
ExprPtr Builder::le(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Le, std::move(L), std::move(R));
}
ExprPtr Builder::gt(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Gt, std::move(L), std::move(R));
}
ExprPtr Builder::ge(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Ge, std::move(L), std::move(R));
}
ExprPtr Builder::land(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::And, std::move(L), std::move(R));
}
ExprPtr Builder::lor(ExprPtr L, ExprPtr R) const {
  return binary(BinOp::Or, std::move(L), std::move(R));
}

ExprPtr Builder::lnot(ExprPtr E) const {
  assert(E->type() == ScalarKind::Bool && ".NOT. on a non-logical");
  return std::make_unique<UnaryExpr>(UnOp::Not, std::move(E),
                                     ScalarKind::Bool);
}

ExprPtr Builder::neg(ExprPtr E) const {
  assert(isNumeric(E->type()) && "negation of a non-numeric");
  ScalarKind Ty = E->type();
  return std::make_unique<UnaryExpr>(UnOp::Neg, std::move(E), Ty);
}

ExprPtr Builder::max(ExprPtr L, ExprPtr R) const {
  ScalarKind Ty = promote(L->type(), R->type());
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(L));
  Args.push_back(std::move(R));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::Max, std::move(Args),
                                         Ty);
}

ExprPtr Builder::min(ExprPtr L, ExprPtr R) const {
  ScalarKind Ty = promote(L->type(), R->type());
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(L));
  Args.push_back(std::move(R));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::Min, std::move(Args),
                                         Ty);
}

ExprPtr Builder::abs(ExprPtr E) const {
  ScalarKind Ty = E->type();
  assert(isNumeric(Ty) && "ABS of a non-numeric");
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::Abs, std::move(Args),
                                         Ty);
}

ExprPtr Builder::sqrt(ExprPtr E) const {
  assert(E->type() == ScalarKind::Real && "SQRT requires a real operand");
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::Sqrt, std::move(Args),
                                         ScalarKind::Real);
}

ExprPtr Builder::laneIndex() const {
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::LaneIndex,
                                         std::vector<ExprPtr>{},
                                         ScalarKind::Int);
}

ExprPtr Builder::numLanes() const {
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::NumLanes,
                                         std::vector<ExprPtr>{},
                                         ScalarKind::Int);
}

ExprPtr Builder::any(ExprPtr E) const {
  assert(E->type() == ScalarKind::Bool && "ANY of a non-logical");
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::Any, std::move(Args),
                                         ScalarKind::Bool);
}

ExprPtr Builder::all(ExprPtr E) const {
  assert(E->type() == ScalarKind::Bool && "ALL of a non-logical");
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::All, std::move(Args),
                                         ScalarKind::Bool);
}

ExprPtr Builder::maxRed(ExprPtr E) const {
  ScalarKind Ty = E->type();
  assert(isNumeric(Ty) && "MAXRED of a non-numeric");
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::MaxRed, std::move(Args),
                                         Ty);
}

ExprPtr Builder::minRed(ExprPtr E) const {
  ScalarKind Ty = E->type();
  assert(isNumeric(Ty) && "MINRED of a non-numeric");
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::MinRed, std::move(Args),
                                         Ty);
}

ExprPtr Builder::sumRed(ExprPtr E) const {
  ScalarKind Ty = E->type();
  assert(isNumeric(Ty) && "SUMRED of a non-numeric");
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::SumRed, std::move(Args),
                                         Ty);
}

ExprPtr Builder::maxVal(const std::string &ArrayName) const {
  const VarDecl *D = P.lookupVar(ArrayName);
  if (!D || !D->isArray())
    reportFatalError("builder: MAXVAL of non-array '" + ArrayName + "'");
  std::vector<ExprPtr> Args;
  Args.push_back(var(ArrayName));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::MaxVal, std::move(Args),
                                         D->Kind);
}

ExprPtr Builder::sumVal(const std::string &ArrayName) const {
  const VarDecl *D = P.lookupVar(ArrayName);
  if (!D || !D->isArray())
    reportFatalError("builder: SUMVAL of non-array '" + ArrayName + "'");
  std::vector<ExprPtr> Args;
  Args.push_back(var(ArrayName));
  return std::make_unique<IntrinsicExpr>(IntrinsicOp::SumVal, std::move(Args),
                                         D->Kind);
}

ExprPtr Builder::callFn(const std::string &Callee,
                        std::vector<ExprPtr> Args) const {
  const ExternDecl *E = P.lookupExtern(Callee);
  if (!E || E->IsSubroutine)
    reportFatalError("builder: call to undeclared function '" + Callee + "'");
  return std::make_unique<CallExpr>(Callee, std::move(Args), E->Ret);
}

StmtPtr Builder::assign(ExprPtr Target, ExprPtr Value) const {
  assert((isa<VarRef>(Target.get()) || isa<ArrayRef>(Target.get())) &&
         "assignment target must be a variable or array element");
  assert((Target->type() == Value->type() ||
          (isNumeric(Target->type()) && isNumeric(Value->type()))) &&
         "assignment of incompatible kinds");
  return std::make_unique<AssignStmt>(std::move(Target), std::move(Value));
}

StmtPtr Builder::set(const std::string &Name, ExprPtr Value) const {
  return assign(var(Name), std::move(Value));
}

StmtPtr Builder::ifStmt(ExprPtr Cond, Body Then, Body Else) const {
  assert(Cond->type() == ScalarKind::Bool && "IF condition must be logical");
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Builder::where(ExprPtr Cond, Body Then, Body Else) const {
  assert(Cond->type() == ScalarKind::Bool &&
         "WHERE condition must be logical");
  return std::make_unique<WhereStmt>(std::move(Cond), std::move(Then),
                                     std::move(Else));
}

StmtPtr Builder::doLoop(const std::string &IndexVar, ExprPtr Lo, ExprPtr Hi,
                        Body B, ExprPtr Step, bool IsParallel) const {
  assert(varKind(IndexVar) == ScalarKind::Int && "DO index must be integer");
  return std::make_unique<DoStmt>(IndexVar, std::move(Lo), std::move(Hi),
                                  std::move(Step), std::move(B), IsParallel);
}

StmtPtr Builder::whileLoop(ExprPtr Cond, Body B) const {
  assert(Cond->type() == ScalarKind::Bool &&
         "WHILE condition must be logical");
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(B));
}

StmtPtr Builder::repeatUntil(Body B, ExprPtr UntilCond) const {
  assert(UntilCond->type() == ScalarKind::Bool &&
         "UNTIL condition must be logical");
  return std::make_unique<RepeatStmt>(std::move(B), std::move(UntilCond));
}

StmtPtr Builder::forall(const std::string &IndexVar, ExprPtr Lo, ExprPtr Hi,
                        ExprPtr MaskOrNull, Body B) const {
  assert(varKind(IndexVar) == ScalarKind::Int &&
         "FORALL index must be integer");
  return std::make_unique<ForallStmt>(IndexVar, std::move(Lo), std::move(Hi),
                                      std::move(MaskOrNull), std::move(B));
}

StmtPtr Builder::callSub(const std::string &Callee,
                         std::vector<ExprPtr> Args) const {
  const ExternDecl *E = P.lookupExtern(Callee);
  if (!E || !E->IsSubroutine)
    reportFatalError("builder: CALL to undeclared subroutine '" + Callee +
                     "'");
  return std::make_unique<CallStmt>(Callee, std::move(Args));
}

StmtPtr Builder::label(int Label) const {
  return std::make_unique<LabelStmt>(Label);
}

StmtPtr Builder::gotoStmt(int Label, ExprPtr CondOrNull) const {
  assert((!CondOrNull || CondOrNull->type() == ScalarKind::Bool) &&
         "GOTO condition must be logical");
  return std::make_unique<GotoStmt>(Label, std::move(CondOrNull));
}
