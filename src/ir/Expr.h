//===- ir/Expr.h - Expression nodes of the loop-nest IR --------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression AST for the pseudo-Fortran IR. Expressions are typed at
/// construction (the builder and the front-end sema enforce consistency).
/// Lane-reduction intrinsics (ANY/ALL/MAXRED/...) and the LANEINDEX /
/// NUMLANES intrinsics only make sense at the F90simd level; the scalar
/// interpreter treats them as single-lane degenerate forms so that F77
/// programs containing them still have a sequential meaning.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_EXPR_H
#define SIMDFLAT_IR_EXPR_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace simdflat {
namespace ir {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all expression nodes.
class Expr {
public:
  enum class Kind {
    IntLit,
    RealLit,
    BoolLit,
    VarRef,
    ArrayRef,
    Unary,
    Binary,
    Intrinsic,
    Call,
  };

  Kind kind() const { return K; }
  ScalarKind type() const { return Ty; }

  virtual ~Expr() = default;
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

protected:
  Expr(Kind K, ScalarKind Ty) : K(K), Ty(Ty) {}

private:
  const Kind K;
  const ScalarKind Ty;
};

/// Integer literal.
class IntLit : public Expr {
public:
  explicit IntLit(int64_t Value) : Expr(Kind::IntLit, ScalarKind::Int),
                                   Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// Real (double) literal.
class RealLit : public Expr {
public:
  explicit RealLit(double Value) : Expr(Kind::RealLit, ScalarKind::Real),
                                   Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::RealLit; }

private:
  double Value;
};

/// Logical literal (.true. / .false.).
class BoolLit : public Expr {
public:
  explicit BoolLit(bool Value) : Expr(Kind::BoolLit, ScalarKind::Bool),
                                 Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLit; }

private:
  bool Value;
};

/// Reference to a scalar variable, or to a whole array when used as the
/// operand of a whole-array reduction intrinsic (MAXVAL/SUMVAL) or as a
/// subroutine argument. The stored type is the element kind.
class VarRef : public Expr {
public:
  VarRef(std::string Name, ScalarKind Ty)
      : Expr(Kind::VarRef, Ty), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
};

/// Subscripted array reference `A(i1, ..., ik)` with 1-based Fortran
/// index semantics. Indices may be arbitrary integer expressions
/// (indirect addressing, e.g. `partners(At1, pr)` in Fig. 13).
class ArrayRef : public Expr {
public:
  ArrayRef(std::string Name, ScalarKind ElemTy, std::vector<ExprPtr> Indices)
      : Expr(Kind::ArrayRef, ElemTy), Name(std::move(Name)),
        Indices(std::move(Indices)) {}

  const std::string &name() const { return Name; }
  const std::vector<ExprPtr> &indices() const { return Indices; }
  std::vector<ExprPtr> &indices() { return Indices; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRef; }

private:
  std::string Name;
  std::vector<ExprPtr> Indices;
};

/// Unary operator kinds.
enum class UnOp { Neg, Not };

/// Unary expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnOp Op, ExprPtr Operand, ScalarKind Ty)
      : Expr(Kind::Unary, Ty), Op(Op), Operand(std::move(Operand)) {}

  UnOp op() const { return Op; }
  const Expr &operand() const { return *Operand; }
  ExprPtr &operandPtr() { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnOp Op;
  ExprPtr Operand;
};

/// Binary operator kinds.
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// Returns the Fortran-ish spelling of \p Op ("+", ".AND.", "<=", ...).
const char *binOpSpelling(BinOp Op);

/// Returns true for Eq/Ne/Lt/Le/Gt/Ge.
bool isComparison(BinOp Op);

/// Binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, ExprPtr LHS, ExprPtr RHS, ScalarKind Ty)
      : Expr(Kind::Binary, Ty), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinOp op() const { return Op; }
  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }
  ExprPtr &lhsPtr() { return LHS; }
  ExprPtr &rhsPtr() { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// Built-in intrinsics.
enum class IntrinsicOp {
  // Elementwise.
  Max,       ///< max(a, b)
  Min,       ///< min(a, b)
  Abs,       ///< abs(a)
  Sqrt,      ///< sqrt(a), real only
  // SIMD machine queries (control values).
  LaneIndex, ///< 1-based id of the executing lane; 1 on the scalar machine
  NumLanes,  ///< number of lanes P; 1 on the scalar machine
  // Lane reductions over a replicated operand (F90simd level).
  Any,       ///< OR-reduction of a lane-varying logical
  All,       ///< AND-reduction of a lane-varying logical
  MaxRed,    ///< max-reduction of a lane-varying numeric
  MinRed,    ///< min-reduction of a lane-varying numeric
  SumRed,    ///< sum-reduction of a lane-varying numeric
  // Whole-array reductions; operand is a VarRef naming the array.
  MaxVal,    ///< maxval(A)
  SumVal,    ///< sum(A)
};

/// Returns the source spelling of \p Op ("MAX", "ANY", "MAXVAL", ...).
const char *intrinsicName(IntrinsicOp Op);

/// Returns true for ANY/ALL/MAXRED/SUMRED (reductions across lanes).
bool isLaneReduction(IntrinsicOp Op);

/// Returns true for MAXVAL/SUMVAL (reductions across a whole array).
bool isArrayReduction(IntrinsicOp Op);

/// Intrinsic application.
class IntrinsicExpr : public Expr {
public:
  IntrinsicExpr(IntrinsicOp Op, std::vector<ExprPtr> Args, ScalarKind Ty)
      : Expr(Kind::Intrinsic, Ty), Op(Op), Args(std::move(Args)) {}

  IntrinsicOp op() const { return Op; }
  const std::vector<ExprPtr> &args() const { return Args; }
  std::vector<ExprPtr> &args() { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Intrinsic; }

private:
  IntrinsicOp Op;
  std::vector<ExprPtr> Args;
};

/// Call to an externally provided function (e.g. `Force(At1, At2)` in the
/// NBFORCE kernel). Purity is declared in the enclosing Program's extern
/// table; impure calls constrain the transformations (Sec. 4).
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, ScalarKind Ty)
      : Expr(Kind::Call, Ty), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  std::vector<ExprPtr> &args() { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_EXPR_H
