//===- ir/Program.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Program.h"

#include "support/Format.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::ir;

VarDecl &Program::addVar(const std::string &VarName, ScalarKind Kind,
                         std::vector<int64_t> Dims, Dist Distribution) {
  assert(!lookupVar(VarName) && "variable redeclared");
  Vars.push_back({VarName, Kind, std::move(Dims), Distribution});
  return Vars.back();
}

VarDecl &Program::addFreshVar(const std::string &Hint, ScalarKind Kind) {
  if (!lookupVar(Hint))
    return addVar(Hint, Kind);
  for (int I = 1;; ++I) {
    std::string Candidate = Hint + std::to_string(I);
    if (!lookupVar(Candidate))
      return addVar(Candidate, Kind);
  }
}

const VarDecl *Program::lookupVar(const std::string &VarName) const {
  for (const VarDecl &V : Vars)
    if (V.Name == VarName)
      return &V;
  return nullptr;
}

VarDecl *Program::lookupVar(const std::string &VarName) {
  for (VarDecl &V : Vars)
    if (V.Name == VarName)
      return &V;
  return nullptr;
}

ExternDecl &Program::addExtern(const std::string &FnName, ScalarKind Ret,
                               bool Pure, bool IsSubroutine) {
  assert(!lookupExtern(FnName) && "extern redeclared");
  Externs.push_back({FnName, Ret, Pure, IsSubroutine});
  return Externs.back();
}

const ExternDecl *Program::lookupExtern(const std::string &FnName) const {
  for (const ExternDecl &E : Externs)
    if (E.Name == FnName)
      return &E;
  return nullptr;
}
