//===- ir/Verify.h - Program well-formedness checking ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type verification of a whole program: every reference
/// resolves, every node's cached type matches a bottom-up recomputation,
/// control-flow conditions are logical, subscript ranks match, calls
/// target declared externs of the right kind, and dialect invariants
/// hold (an F90simd program has no unstructured control flow). The
/// transformations run this after themselves in the test suite, so a
/// transform that builds an inconsistent tree fails loudly instead of
/// mis-executing.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_VERIFY_H
#define SIMDFLAT_IR_VERIFY_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace simdflat {
namespace ir {

/// Returns all well-formedness violations (empty means the program is
/// valid). Messages are human-readable, one per problem.
std::vector<std::string> verifyProgram(const Program &P);

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_VERIFY_H
