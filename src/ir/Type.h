//===- ir/Type.h - Scalar kinds and distribution attributes ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type and data-distribution vocabulary for the loop-nest IR. The IR
/// models the paper's pseudo-Fortran dialects (Sec. 2): a variable has a
/// scalar element kind, an optional array shape, and a distribution
/// attribute that only becomes meaningful at the F90simd level.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_TYPE_H
#define SIMDFLAT_IR_TYPE_H

namespace simdflat {
namespace ir {

/// Element type of a value. Ints are 64-bit, reals are doubles.
enum class ScalarKind { Int, Real, Bool };

/// Returns a printable name ("integer", "real", "logical").
const char *scalarKindName(ScalarKind K);

/// How a variable is laid out when the program runs on the SIMD machine
/// (F90simd level). At the F77 level every variable is Control.
enum class Dist {
  /// One value, held by the array control unit / front end.
  Control,
  /// One private copy per lane. The paper's default for F77 scalars after
  /// SIMDization ("scalars ... will be replicated", Sec. 2).
  Replicated,
  /// Dimension 0 spread across lanes using the machine layout (block on
  /// the CM-2, cyclic "cut-and-stack" on the DECmpp, Sec. 5.2). Elements
  /// beyond the data granularity go to serial memory layers.
  Distributed,
};

/// Returns a printable name ("control", "replicated", "distributed").
const char *distName(Dist D);

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_TYPE_H
