//===- ir/Printer.h - Pseudo-Fortran pretty-printer ------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR back to the pseudo-Fortran notation the paper's figures
/// use (DO/ENDDO, WHILE/ENDWHILE, WHERE/ELSEWHERE/ENDWHERE, ...). The
/// printer output is also the concrete syntax the front end parses, so
/// print -> parse round-trips (tested).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_IR_PRINTER_H
#define SIMDFLAT_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace simdflat {
namespace ir {

/// Pretty-printing options.
struct PrintOptions {
  /// Spaces per nesting level.
  int IndentWidth = 2;
  /// Emit declaration lines before the body.
  bool ShowDecls = true;
};

/// Renders a full program (declarations + body).
std::string printProgram(const Program &P, PrintOptions Opts = {});

/// Renders a statement list at indent level 0.
std::string printBody(const Body &B, PrintOptions Opts = {});

/// Renders a single statement (and its nested bodies).
std::string printStmt(const Stmt &S, PrintOptions Opts = {});

/// Renders an expression.
std::string printExpr(const Expr &E);

} // namespace ir
} // namespace simdflat

#endif // SIMDFLAT_IR_PRINTER_H
