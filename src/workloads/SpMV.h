//===- workloads/SpMV.h - Sparse matrix-vector product ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSR sparse matrix-vector multiply: the canonical irregular kernel of
/// the Krylov-solver work the paper cites (Berryman/Saltz on the CM-2,
/// refs [2, 19]). Row lengths vary wildly in real matrices, so the
/// row-parallel nest
///
/// \code
///   DOALL r = 1, nRows
///     DO k = rowPtr(r), rowPtr(r+1) - 1
///       y(r) = y(r) + val(k) * x(col(k))
///     ENDDO
///   ENDDO
/// \endcode
///
/// is exactly the paper's shape, with *indirect addressing* in the body
/// (the x(col(k)) gather) on top. We synthesize matrices with power-law
/// row lengths (mesh/graph-like) and run the kernel through the full
/// pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_WORKLOADS_SPMV_H
#define SIMDFLAT_WORKLOADS_SPMV_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace simdflat {
namespace workloads {

/// A CSR matrix with double values.
struct CsrMatrix {
  int64_t Rows = 0;
  int64_t Cols = 0;
  /// 1-based CSR: row r's entries are RowPtr[r-1] .. RowPtr[r]-1
  /// (1-based positions into Col/Val); RowPtr has Rows+1 entries.
  std::vector<int64_t> RowPtr;
  std::vector<int64_t> Col; ///< 1-based column ids
  std::vector<double> Val;

  int64_t nnz() const { return static_cast<int64_t>(Col.size()); }
  int64_t rowLength(int64_t R) const {
    return RowPtr[static_cast<size_t>(R)] -
           RowPtr[static_cast<size_t>(R - 1)];
  }
  /// Largest row length.
  int64_t maxRowLength() const;
  /// Per-row lengths (for profitability analysis).
  std::vector<int64_t> rowLengths() const;

  /// y = A x computed directly in C++ (the oracle).
  std::vector<double> multiply(const std::vector<double> &X) const;
};

/// Parameters of the synthetic matrix.
struct SpMVSpec {
  int64_t Rows = 256;
  int64_t Cols = 256;
  /// Mean nonzeros per row; actual lengths follow a power law with a
  /// diagonal band (graph/mesh-like).
  int64_t MeanRowNnz = 8;
  uint64_t Seed = 2;
};

/// Builds a synthetic power-law CSR matrix. Every row has at least one
/// entry (the diagonal), columns are sorted and distinct per row.
CsrMatrix makeSparseMatrix(const SpMVSpec &Spec);

/// Builds the F77 SpMV kernel for matrices up to \p MaxNnz nonzeros.
/// Runtime inputs: nRows, rowPtr, col, val, x.
ir::Program spmvF77(int64_t MaxRows, int64_t MaxNnz);

} // namespace workloads
} // namespace simdflat

#endif // SIMDFLAT_WORKLOADS_SPMV_H
