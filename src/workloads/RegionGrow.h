//===- workloads/RegionGrow.h - Image region growing -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sec. 1 motivating citation (Willebeek-LeMair & Reeves, region
/// growing on the MPP): "the complexity of each iteration in the SIMD
/// environment is dominated by the largest region in the image". We
/// synthesize an image segmentation by multi-seed BFS flood fill; each
/// region's pixel count becomes the trip count of its growth loop, and
/// the growth kernel is the same outer-parallel / inner-varying nest the
/// paper studies.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_WORKLOADS_REGIONGROW_H
#define SIMDFLAT_WORKLOADS_REGIONGROW_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace simdflat {
namespace workloads {

/// Synthetic image segmentation parameters.
struct RegionGrowSpec {
  int64_t Width = 96;
  int64_t Height = 96;
  int64_t NumRegions = 48;
  uint64_t Seed = 1990; // Frontiers '90
};

/// Segments the image by breadth-first growth from randomly placed
/// seeds (seeds expand at uniform speed; randomly sized Voronoi-like
/// cells result). Returns per-region pixel counts; all counts are >= 1
/// and sum to Width*Height.
std::vector<int64_t> regionSizes(const RegionGrowSpec &Spec);

/// Builds the F77 growth kernel: each region r grows for SIZE(r) steps,
/// accumulating its perimeter-merge work into GROWN(r).
/// \code
///   DOALL r = 1, nRegions
///     DO s = 1, SIZE(r)
///       GROWN(r) = GROWN(r) + s
///     ENDDO
///   ENDDO
/// \endcode
ir::Program regionGrowF77(int64_t NumRegions, int64_t MaxSize);

} // namespace workloads
} // namespace simdflat

#endif // SIMDFLAT_WORKLOADS_REGIONGROW_H
