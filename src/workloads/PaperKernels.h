//===- workloads/PaperKernels.h - Loop nests from the paper ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the loop nests that appear as figures in the paper:
/// EXAMPLE (Fig. 1/2) and GENNEST-shaped nests over arbitrary loop forms.
/// These are shared by the unit tests, the trace benchmarks and the
/// examples.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_WORKLOADS_PAPERKERNELS_H
#define SIMDFLAT_WORKLOADS_PAPERKERNELS_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace simdflat {
namespace workloads {

/// Problem instance for the EXAMPLE nest: outer trip count K and inner
/// trip counts L(1:K).
struct ExampleSpec {
  int64_t K = 0;
  std::vector<int64_t> L;

  /// Largest inner trip count (0 for empty L).
  int64_t maxL() const;
};

/// The instance used throughout Sec. 3: K = 8, L = 4,1,2,1,1,3,1,3.
ExampleSpec paperExampleSpec();

/// Which loop form the nest uses; the paper's Sec. 4 requires the
/// transformation to handle all of them.
enum class LoopForm {
  Do,      ///< DO j = 1, L(i)
  While,   ///< j = 1; WHILE (j <= L(i)) { ...; j = j + 1 }
  Repeat,  ///< j = 1; REPEAT { ...; j = j + 1 } UNTIL (j > L(i)) - needs L >= 1
  GotoLoop ///< j = 1; 10 CONTINUE; ...; IF (j <= L(i)) GOTO 10
};

/// Builds the F77 EXAMPLE program of Fig. 1:
/// \code
///   DO i = 1, K          (parallelizable)
///     DO j = 1, L(i)
///       X(i, j) = i * j
///     ENDDO
///   ENDDO
/// \endcode
/// Declares K (control), L(K) and X(K, maxL) (distributed), i, j.
/// \p Inner selects the syntactic form of the inner loop; \p Outer of the
/// outer loop (GotoLoop outer not supported for Do/Forall-only callers).
ir::Program makeExample(const ExampleSpec &Spec,
                        LoopForm Inner = LoopForm::Do,
                        LoopForm Outer = LoopForm::Do);

/// Builds a variant of EXAMPLE whose inner loop guard calls an *impure*
/// extern function `Bump()` (integer, side-effecting): the inner loop is
/// `WHILE (Bump() <= L(i))`. Used to test that guard introduction
/// (Fig. 9) preserves the number and order of guard evaluations and that
/// the Fig. 11/12 optimizations are rejected.
ir::Program makeExampleImpureGuard(const ExampleSpec &Spec);

} // namespace workloads
} // namespace simdflat

#endif // SIMDFLAT_WORKLOADS_PAPERKERNELS_H
