//===- workloads/Mandelbrot.cpp -------------------------------*- C++ -*-===//

#include "workloads/Mandelbrot.h"

#include "ir/Builder.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::workloads;

std::vector<int64_t>
workloads::mandelbrotIterations(const MandelbrotSpec &Spec) {
  std::vector<int64_t> Out;
  Out.reserve(static_cast<size_t>(Spec.numPixels()));
  double DX = (Spec.XMax - Spec.XMin) / static_cast<double>(Spec.Width);
  double DY = (Spec.YMax - Spec.YMin) / static_cast<double>(Spec.Height);
  for (int64_t P = 0; P < Spec.numPixels(); ++P) {
    double CX = Spec.XMin + static_cast<double>(P % Spec.Width) * DX;
    double CY = Spec.YMin + static_cast<double>(P / Spec.Width) * DY;
    double ZX = 0.0, ZY = 0.0;
    int64_t It = 0;
    while (It < Spec.MaxIter && ZX * ZX + ZY * ZY <= 4.0) {
      double Tmp = ZX * ZX - ZY * ZY + CX;
      ZY = 2.0 * ZX * ZY + CY;
      ZX = Tmp;
      ++It;
    }
    Out.push_back(It);
  }
  return Out;
}

ir::Program workloads::mandelbrotF77(const MandelbrotSpec &Spec) {
  assert(Spec.MaxIter >= 1 && "MaxIter must be positive");
  Program P("MANDELBROT");
  int64_t N = Spec.numPixels();
  P.addVar("maxIter", ScalarKind::Int);
  P.addVar("p", ScalarKind::Int);
  P.addVar("it", ScalarKind::Int);
  P.addVar("cx", ScalarKind::Real);
  P.addVar("cy", ScalarKind::Real);
  P.addVar("zx", ScalarKind::Real);
  P.addVar("zy", ScalarKind::Real);
  P.addVar("tmp", ScalarKind::Real);
  P.addVar("IT", ScalarKind::Int, {N}, Dist::Distributed);
  Builder B(P);

  double DX = (Spec.XMax - Spec.XMin) / static_cast<double>(Spec.Width);
  double DY = (Spec.YMax - Spec.YMin) / static_cast<double>(Spec.Height);

  Body WhileBody = Builder::body(
      B.set("tmp", B.add(B.sub(B.mul(B.var("zx"), B.var("zx")),
                               B.mul(B.var("zy"), B.var("zy"))),
                         B.var("cx"))),
      B.set("zy", B.add(B.mul(B.mul(B.lit(2.0), B.var("zx")),
                              B.var("zy")),
                        B.var("cy"))),
      B.set("zx", B.var("tmp")),
      B.set("it", B.add(B.var("it"), B.lit(1))));

  ExprPtr Cond = B.land(
      B.lt(B.var("it"), B.var("maxIter")),
      B.le(B.add(B.mul(B.var("zx"), B.var("zx")),
                 B.mul(B.var("zy"), B.var("zy"))),
           B.lit(4.0)));

  // cx = XMin + MOD(p - 1, W) * DX ; cy = YMin + ((p - 1) / W) * DY
  Body OuterBody = Builder::body(
      B.set("cx",
            B.add(B.lit(Spec.XMin),
                  B.mul(B.mod(B.sub(B.var("p"), B.lit(1)),
                              B.lit(Spec.Width)),
                        B.lit(DX)))),
      B.set("cy",
            B.add(B.lit(Spec.YMin),
                  B.mul(B.div(B.sub(B.var("p"), B.lit(1)),
                              B.lit(Spec.Width)),
                        B.lit(DY)))),
      B.set("zx", B.lit(0.0)), B.set("zy", B.lit(0.0)),
      B.set("it", B.lit(0)),
      B.whileLoop(std::move(Cond), std::move(WhileBody)),
      B.assign(B.at("IT", B.var("p")), B.var("it")));

  P.body().push_back(B.doLoop("p", B.lit(1), B.lit(N),
                              std::move(OuterBody), nullptr,
                              /*IsParallel=*/true));
  return P;
}
