//===- workloads/Mandelbrot.h - Escape-time workload -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Mandelbrot set as an irregular SIMD workload: per-pixel iteration
/// counts vary wildly, which is why Tomboulian & Pappas used indirect
/// addressing to speed it up on SIMD machines - the paper cites their
/// technique as a special case of loop flattening (Sec. 7). We provide
/// both a native escape-time evaluator (ground truth) and the F77
/// kernel (DOALL over pixels, inner WHILE of varying trip count) that
/// the flattening pipeline consumes.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_WORKLOADS_MANDELBROT_H
#define SIMDFLAT_WORKLOADS_MANDELBROT_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace simdflat {
namespace workloads {

/// View rectangle and iteration cap.
struct MandelbrotSpec {
  int64_t Width = 40;
  int64_t Height = 32;
  double XMin = -2.1, XMax = 0.7;
  double YMin = -1.2, YMax = 1.2;
  int64_t MaxIter = 64;

  int64_t numPixels() const { return Width * Height; }
};

/// Ground truth: per-pixel escape iteration counts (1..MaxIter), pixel
/// order row-major, 0-based vector.
std::vector<int64_t> mandelbrotIterations(const MandelbrotSpec &Spec);

/// Builds the F77 kernel:
/// \code
///   DOALL p = 1, W*H
///     cx, cy from p ; zx = zy = 0 ; it = 0
///     WHILE (it < maxIter .AND. zx*zx + zy*zy <= 4.0)
///       tmp = zx*zx - zy*zy + cx ; zy = 2*zx*zy + cy ; zx = tmp
///       it = it + 1
///     ENDWHILE
///     IT(p) = it
///   ENDDO
/// \endcode
/// Inputs at run time: maxIter. The first loop iteration always runs
/// (z = 0 is inside the escape circle and MaxIter >= 1), so flattening
/// may assume one trip.
ir::Program mandelbrotF77(const MandelbrotSpec &Spec);

} // namespace workloads
} // namespace simdflat

#endif // SIMDFLAT_WORKLOADS_MANDELBROT_H
