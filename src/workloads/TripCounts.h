//===- workloads/TripCounts.h - Inner trip-count generators ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parametric inner-trip-count distributions for the variance ablation
/// (the paper's conclusion: "the relative performance difference ...
/// will depend on the variance of the cost of the inner loops").
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_WORKLOADS_TRIPCOUNTS_H
#define SIMDFLAT_WORKLOADS_TRIPCOUNTS_H

#include <cstdint>
#include <vector>

namespace simdflat {
namespace workloads {

/// Shape of the trip-count distribution. All generators produce strictly
/// positive counts with (approximately) the requested mean.
enum class TripDist {
  Constant,  ///< zero variance: flattening's break-even case
  Uniform,   ///< uniform on [1, 2*mean - 1]
  Geometric, ///< memoryless decay, long tail
  Bimodal,   ///< 90% tiny rows, 10% heavy rows
  Zipf,      ///< power-law row weights
};

/// Printable name of \p D.
const char *tripDistName(TripDist D);

/// All distributions, for parameter sweeps.
inline const TripDist AllTripDists[] = {
    TripDist::Constant, TripDist::Uniform, TripDist::Geometric,
    TripDist::Bimodal, TripDist::Zipf};

/// Generates \p K trip counts with target mean \p Mean (>= 1).
std::vector<int64_t> generateTripCounts(TripDist D, int64_t K, int64_t Mean,
                                        uint64_t Seed);

} // namespace workloads
} // namespace simdflat

#endif // SIMDFLAT_WORKLOADS_TRIPCOUNTS_H
