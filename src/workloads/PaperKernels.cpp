//===- workloads/PaperKernels.cpp ------------------------------*- C++ -*-===//

#include "workloads/PaperKernels.h"

#include "ir/Builder.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int64_t ExampleSpec::maxL() const {
  int64_t M = 0;
  for (int64_t V : L)
    M = std::max(M, V);
  return M;
}

ExampleSpec workloads::paperExampleSpec() {
  return {8, {4, 1, 2, 1, 1, 3, 1, 3}};
}

/// Wraps `BodyStmts` in the loop form \p Form iterating \p IndexVar from
/// 1 while <= \p Limit. The GotoLoop and Repeat forms are post-test and
/// require Limit >= 1 at run time.
static StmtPtr makeCountedLoop(Builder &B, LoopForm Form,
                               const std::string &IndexVar, ExprPtr Limit,
                               Body BodyStmts, bool IsParallel,
                               Body &Prologue, int GotoLabel) {
  switch (Form) {
  case LoopForm::Do:
    return B.doLoop(IndexVar, B.lit(1), std::move(Limit),
                    std::move(BodyStmts), nullptr, IsParallel);
  case LoopForm::While: {
    Prologue.push_back(B.set(IndexVar, B.lit(1)));
    Body WB = std::move(BodyStmts);
    WB.push_back(B.set(IndexVar, B.add(B.var(IndexVar), B.lit(1))));
    return B.whileLoop(B.le(B.var(IndexVar), std::move(Limit)),
                       std::move(WB));
  }
  case LoopForm::Repeat: {
    Prologue.push_back(B.set(IndexVar, B.lit(1)));
    Body RB = std::move(BodyStmts);
    RB.push_back(B.set(IndexVar, B.add(B.var(IndexVar), B.lit(1))));
    return B.repeatUntil(std::move(RB),
                         B.gt(B.var(IndexVar), std::move(Limit)));
  }
  case LoopForm::GotoLoop: {
    // j = 1; <label> CONTINUE; body; j = j + 1; IF (j <= Limit) GOTO label
    // The caller splices the returned statements via the prologue trick:
    // we return the trailing GOTO and push everything before it into
    // Prologue. GOTO loops cannot nest another statement inside
    // themselves structurally, so the caller receives a flat sequence.
    Prologue.push_back(B.set(IndexVar, B.lit(1)));
    Prologue.push_back(B.label(GotoLabel));
    for (StmtPtr &S : BodyStmts)
      Prologue.push_back(std::move(S));
    Prologue.push_back(B.set(IndexVar, B.add(B.var(IndexVar), B.lit(1))));
    return B.gotoStmt(GotoLabel, B.le(B.var(IndexVar), std::move(Limit)));
  }
  }
  SIMDFLAT_UNREACHABLE("bad LoopForm");
}

ir::Program workloads::makeExample(const ExampleSpec &Spec, LoopForm Inner,
                                   LoopForm Outer) {
  assert(Spec.K >= 1 && static_cast<int64_t>(Spec.L.size()) == Spec.K &&
         "spec must provide one inner trip count per outer iteration");
  Program P("EXAMPLE");
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {Spec.K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {Spec.K, std::max<int64_t>(Spec.maxL(), 1)},
           Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  Builder B(P);

  Body InnerBody = Builder::body(
      B.assign(B.at("X", B.var("i"), B.var("j")),
               B.mul(B.var("i"), B.var("j"))));

  Body OuterBody;
  StmtPtr InnerLoop =
      makeCountedLoop(B, Inner, "j", B.at("L", B.var("i")),
                      std::move(InnerBody), /*IsParallel=*/false, OuterBody,
                      /*GotoLabel=*/20);
  OuterBody.push_back(std::move(InnerLoop));

  Body TopLevel;
  StmtPtr OuterLoop =
      makeCountedLoop(B, Outer, "i", B.var("K"), std::move(OuterBody),
                      /*IsParallel=*/true, TopLevel, /*GotoLabel=*/10);
  TopLevel.push_back(std::move(OuterLoop));
  P.setBody(std::move(TopLevel));
  return P;
}

ir::Program workloads::makeExampleImpureGuard(const ExampleSpec &Spec) {
  assert(Spec.K >= 1 && static_cast<int64_t>(Spec.L.size()) == Spec.K);
  Program P("EXAMPLE_IMPURE");
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {Spec.K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {Spec.K, std::max<int64_t>(Spec.maxL(), 1)},
           Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addExtern("Bump", ScalarKind::Int, /*Pure=*/false);
  Builder B(P);

  // DO i = 1, K
  //   j = 1
  //   WHILE (Bump() <= L(i))    <- impure guard; Bump() returns j's value
  //     X(i, j) = i * j         <- and advances internal state.
  //     j = j + 1
  //   ENDWHILE
  // ENDDO
  Body InnerBody = Builder::body(
      B.assign(B.at("X", B.var("i"), B.var("j")),
               B.mul(B.var("i"), B.var("j"))),
      B.set("j", B.add(B.var("j"), B.lit(1))));
  StmtPtr InnerLoop = B.whileLoop(
      B.le(B.callFn("Bump", {}), B.at("L", B.var("i"))), std::move(InnerBody));
  Body OuterBody =
      Builder::body(B.set("j", B.lit(1)), std::move(InnerLoop));
  P.setBody(Builder::body(B.doLoop("i", B.lit(1), B.var("K"),
                                   std::move(OuterBody), nullptr,
                                   /*IsParallel=*/true)));
  return P;
}
