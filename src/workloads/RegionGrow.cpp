//===- workloads/RegionGrow.cpp -------------------------------*- C++ -*-===//

#include "workloads/RegionGrow.h"

#include "ir/Builder.h"
#include "support/Random.h"

#include <cassert>
#include <deque>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::workloads;

std::vector<int64_t> workloads::regionSizes(const RegionGrowSpec &Spec) {
  assert(Spec.NumRegions >= 1 &&
         Spec.NumRegions <= Spec.Width * Spec.Height &&
         "too many regions for the image");
  Rng R(Spec.Seed);
  int64_t W = Spec.Width, H = Spec.Height;
  std::vector<int64_t> Owner(static_cast<size_t>(W * H), -1);
  std::deque<std::pair<int64_t, int64_t>> Frontier; // (pixel, region)

  // Place distinct random seeds.
  for (int64_t Reg = 0; Reg < Spec.NumRegions; ++Reg) {
    int64_t Pix;
    do {
      Pix = R.uniformInt(0, W * H - 1);
    } while (Owner[static_cast<size_t>(Pix)] != -1);
    Owner[static_cast<size_t>(Pix)] = Reg;
    Frontier.emplace_back(Pix, Reg);
  }

  // Multi-source BFS: regions expand one ring per wave.
  std::vector<int64_t> Sizes(static_cast<size_t>(Spec.NumRegions), 1);
  while (!Frontier.empty()) {
    auto [Pix, Reg] = Frontier.front();
    Frontier.pop_front();
    int64_t X = Pix % W, Y = Pix / W;
    const int64_t DX[4] = {1, -1, 0, 0};
    const int64_t DY[4] = {0, 0, 1, -1};
    for (int Dir = 0; Dir < 4; ++Dir) {
      int64_t NX = X + DX[Dir], NY = Y + DY[Dir];
      if (NX < 0 || NX >= W || NY < 0 || NY >= H)
        continue;
      int64_t NPix = NY * W + NX;
      if (Owner[static_cast<size_t>(NPix)] != -1)
        continue;
      Owner[static_cast<size_t>(NPix)] = Reg;
      Sizes[static_cast<size_t>(Reg)] += 1;
      Frontier.emplace_back(NPix, Reg);
    }
  }
  return Sizes;
}

ir::Program workloads::regionGrowF77(int64_t NumRegions, int64_t MaxSize) {
  Program P("REGIONGROW");
  P.addVar("nRegions", ScalarKind::Int);
  P.addVar("r", ScalarKind::Int);
  P.addVar("s", ScalarKind::Int);
  P.addVar("SIZE", ScalarKind::Int, {NumRegions}, Dist::Distributed);
  P.addVar("GROWN", ScalarKind::Int, {NumRegions}, Dist::Distributed);
  (void)MaxSize;
  Builder B(P);
  Body Inner = Builder::body(B.assign(
      B.at("GROWN", B.var("r")),
      B.add(B.at("GROWN", B.var("r")), B.var("s"))));
  Body Outer = Builder::body(
      B.doLoop("s", B.lit(1), B.at("SIZE", B.var("r")), std::move(Inner)));
  P.body().push_back(B.doLoop("r", B.lit(1), B.var("nRegions"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));
  return P;
}
