//===- workloads/TripCounts.cpp -------------------------------*- C++ -*-===//

#include "workloads/TripCounts.h"

#include "support/Error.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace simdflat;
using namespace simdflat::workloads;

const char *workloads::tripDistName(TripDist D) {
  switch (D) {
  case TripDist::Constant:
    return "constant";
  case TripDist::Uniform:
    return "uniform";
  case TripDist::Geometric:
    return "geometric";
  case TripDist::Bimodal:
    return "bimodal";
  case TripDist::Zipf:
    return "zipf";
  }
  SIMDFLAT_UNREACHABLE("bad TripDist");
}

std::vector<int64_t> workloads::generateTripCounts(TripDist D, int64_t K,
                                                   int64_t Mean,
                                                   uint64_t Seed) {
  assert(K >= 1 && Mean >= 1 && "degenerate workload");
  Rng R(Seed);
  std::vector<int64_t> Out;
  Out.reserve(static_cast<size_t>(K));
  switch (D) {
  case TripDist::Constant:
    Out.assign(static_cast<size_t>(K), Mean);
    return Out;
  case TripDist::Uniform:
    for (int64_t I = 0; I < K; ++I)
      Out.push_back(R.uniformInt(1, 2 * Mean - 1));
    return Out;
  case TripDist::Geometric: {
    // P(X = k) = p (1-p)^(k-1), k >= 1, mean = 1/p.
    double P = 1.0 / static_cast<double>(Mean);
    for (int64_t I = 0; I < K; ++I) {
      double U = R.uniformReal();
      if (U >= 1.0)
        U = 1.0 - 1e-12;
      int64_t V = 1 + static_cast<int64_t>(std::floor(
                          std::log1p(-U) / std::log1p(-P)));
      Out.push_back(std::max<int64_t>(1, V));
    }
    return Out;
  }
  case TripDist::Bimodal: {
    // 90% light (1), 10% heavy so the mean still lands at Mean.
    int64_t Heavy = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               (static_cast<double>(Mean) - 0.9) / 0.1)));
    for (int64_t I = 0; I < K; ++I)
      Out.push_back(R.chance(0.1) ? Heavy : 1);
    return Out;
  }
  case TripDist::Zipf: {
    // Row count for rank r is proportional to 1/r^1.2, scaled so the
    // mean matches, then shuffled so ranks do not correlate with lanes.
    const double S = 1.2;
    double Norm = 0.0;
    for (int64_t I = 1; I <= K; ++I)
      Norm += 1.0 / std::pow(static_cast<double>(I), S);
    double Scale =
        static_cast<double>(Mean) * static_cast<double>(K) / Norm;
    for (int64_t I = 1; I <= K; ++I)
      Out.push_back(std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 Scale / std::pow(static_cast<double>(I), S)))));
    R.shuffle(Out);
    return Out;
  }
  }
  SIMDFLAT_UNREACHABLE("bad TripDist");
}
