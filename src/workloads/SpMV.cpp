//===- workloads/SpMV.cpp -------------------------------------*- C++ -*-===//

#include "workloads/SpMV.h"

#include "ir/Builder.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int64_t CsrMatrix::maxRowLength() const {
  int64_t M = 0;
  for (int64_t R = 1; R <= Rows; ++R)
    M = std::max(M, rowLength(R));
  return M;
}

std::vector<int64_t> CsrMatrix::rowLengths() const {
  std::vector<int64_t> Out;
  Out.reserve(static_cast<size_t>(Rows));
  for (int64_t R = 1; R <= Rows; ++R)
    Out.push_back(rowLength(R));
  return Out;
}

std::vector<double> CsrMatrix::multiply(const std::vector<double> &X) const {
  assert(static_cast<int64_t>(X.size()) == Cols && "dimension mismatch");
  std::vector<double> Y(static_cast<size_t>(Rows), 0.0);
  for (int64_t R = 1; R <= Rows; ++R)
    for (int64_t K = RowPtr[static_cast<size_t>(R - 1)];
         K < RowPtr[static_cast<size_t>(R)]; ++K)
      Y[static_cast<size_t>(R - 1)] +=
          Val[static_cast<size_t>(K - 1)] *
          X[static_cast<size_t>(Col[static_cast<size_t>(K - 1)] - 1)];
  return Y;
}

CsrMatrix workloads::makeSparseMatrix(const SpMVSpec &Spec) {
  assert(Spec.Rows >= 1 && Spec.Cols >= 1 && Spec.MeanRowNnz >= 1);
  Rng R(Spec.Seed);
  CsrMatrix M;
  M.Rows = Spec.Rows;
  M.Cols = Spec.Cols;
  M.RowPtr.push_back(1);
  for (int64_t Row = 1; Row <= Spec.Rows; ++Row) {
    // Power-law row length (graph-like degree distribution).
    double U = std::max(R.uniformReal(), 1e-9);
    int64_t Len = static_cast<int64_t>(std::llround(
        0.45 * static_cast<double>(Spec.MeanRowNnz) * std::pow(U, -0.55)));
    Len = std::clamp<int64_t>(Len, 1, Spec.Cols);
    std::set<int64_t> Cols;
    // Diagonal element first (keeps every row nonempty and the matrix
    // banded-ish like a mesh).
    Cols.insert(std::min(Row, Spec.Cols));
    while (static_cast<int64_t>(Cols.size()) < Len) {
      int64_t C;
      if (R.chance(0.7)) {
        // Band neighbor.
        C = std::min(Row, Spec.Cols) + R.uniformInt(-8, 8);
      } else {
        // Long-range coupling.
        C = R.uniformInt(1, Spec.Cols);
      }
      if (C >= 1 && C <= Spec.Cols)
        Cols.insert(C);
    }
    for (int64_t C : Cols) {
      M.Col.push_back(C);
      M.Val.push_back(R.uniformReal(-1.0, 1.0));
    }
    M.RowPtr.push_back(static_cast<int64_t>(M.Col.size()) + 1);
  }
  return M;
}

ir::Program workloads::spmvF77(int64_t MaxRows, int64_t MaxNnz) {
  Program P("SPMV");
  P.addVar("nRows", ScalarKind::Int);
  P.addVar("r", ScalarKind::Int);
  P.addVar("k2", ScalarKind::Int);
  P.addVar("k", ScalarKind::Int);
  P.addVar("len", ScalarKind::Int);
  P.addVar("rowPtr", ScalarKind::Int, {MaxRows + 1}, Dist::Distributed);
  P.addVar("col", ScalarKind::Int, {MaxNnz}, Dist::Distributed);
  P.addVar("val", ScalarKind::Real, {MaxNnz}, Dist::Distributed);
  P.addVar("x", ScalarKind::Real, {MaxRows}, Dist::Distributed);
  P.addVar("y", ScalarKind::Real, {MaxRows}, Dist::Distributed);
  Builder B(P);

  // len = rowPtr(r+1) - rowPtr(r)
  // DO k2 = 1, len:
  //   k = rowPtr(r) + k2 - 1
  //   y(r) = y(r) + val(k) * x(col(k))
  Body Inner = Builder::body(
      B.set("k", B.sub(B.add(B.at("rowPtr", B.var("r")), B.var("k2")),
                       B.lit(1))),
      B.assign(B.at("y", B.var("r")),
               B.add(B.at("y", B.var("r")),
                     B.mul(B.at("val", B.var("k")),
                           B.at("x", B.at("col", B.var("k")))))));
  Body Outer = Builder::body(
      B.set("len", B.sub(B.at("rowPtr", B.add(B.var("r"), B.lit(1))),
                         B.at("rowPtr", B.var("r")))),
      B.doLoop("k2", B.lit(1), B.var("len"), std::move(Inner)));
  P.body().push_back(B.doLoop("r", B.lit(1), B.var("nRows"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));
  return P;
}
