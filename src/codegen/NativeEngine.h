//===- codegen/NativeEngine.h - Run programs via JIT'd loops ---*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Engine::Native execution path: emits C++ for a lowered SIMD
/// program (CppEmitter), compiles + loads it (JitCache), marshals one
/// run through the SfContext ABI (NativeAbi.h), and replays every host
/// side effect - traps, deadline polls, work steps, trip samples,
/// extern calls - exactly as the interpreter's Core<IsSimd, Kern>
/// would. Observable behavior (stores, stats, traces, traps, per-lane
/// fault sets, extern call order) is bit-identical to runSimd; the
/// quad-engine fuzz oracle enforces it.
///
/// Every entry point degrades instead of failing: when the build has no
/// JIT, the program is not emittable (scalar mode, unknown opcode), or
/// the compile fails, runSimdNative returns false and the caller runs
/// the bytecode engine. Selecting Engine::Native is therefore always
/// safe.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_CODEGEN_NATIVEENGINE_H
#define SIMDFLAT_CODEGEN_NATIVEENGINE_H

namespace simdflat {
namespace ir {
class Program;
} // namespace ir
namespace exec {
struct Program;
} // namespace exec
namespace machine {
struct MachineConfig;
} // namespace machine
namespace interp {
class DataStore;
class ExternRegistry;
struct RunOptions;
struct SimdRunResult;
} // namespace interp

namespace codegen {

/// True when this build can ever run natively (SIMDFLAT_ENABLE_JIT was
/// ON and a compiler is configured). A true return does not guarantee a
/// given program compiles - runSimdNative still reports per-program.
bool nativeAvailable();

/// Warms the JIT cache for \p EP: emits + compiles + loads without
/// running. Returns true when a native entry point is ready (serve
/// calls this off the hot path, under its single-flight compile).
bool prepareNative(const exec::Program &EP, const ir::Program &IRP,
                   const machine::MachineConfig &Machine);

/// Runs \p EP natively over \p Store. Returns true when the native
/// module ran to completion or trapped (traps propagate as
/// interp::TrapException exactly like runSimd); false when no native
/// path exists for this program - the caller then falls back to the
/// bytecode engine with \p Result untouched.
bool runSimdNative(const exec::Program &EP, const ir::Program &IRP,
                   const machine::MachineConfig &Machine,
                   const interp::ExternRegistry *Externs,
                   const interp::RunOptions &Opts,
                   interp::DataStore &Store,
                   interp::SimdRunResult &Result);

} // namespace codegen
} // namespace simdflat

#endif // SIMDFLAT_CODEGEN_NATIVEENGINE_H
