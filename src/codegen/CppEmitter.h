//===- codegen/CppEmitter.h - exec::Program -> C++ source ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a self-contained C++ translation unit from a lowered SIMD-mode
/// exec::Program: the flattened/coalesced schedule as straight-line
/// native loops over a fixed lane count, masked commits as blends,
/// per-lane fuel/deadline polling and trap collection semantically
/// identical to the interpreter's Core<IsSimd, Kern> (the quad-engine
/// fuzz oracle enforces bit-identity of stores, counters, traps, extern
/// logs and trip histograms).
///
/// The emitter bakes every compile-time fact - lane count, data layout,
/// constant pools (reals as bit-exact hexfloat literals), slot shapes /
/// kinds / names, messages, prerendered trap locations - and leaves
/// per-run state to the SfContext ABI (NativeAbi.h). One emitted source
/// therefore serves exactly one (program, lanes, layout) shape;
/// JitCache keys compiled artifacts by a hash of the source text.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_CODEGEN_CPPEMITTER_H
#define SIMDFLAT_CODEGEN_CPPEMITTER_H

#include <string>

namespace simdflat {
namespace ir {
class Program;
} // namespace ir
namespace exec {
struct Program;
} // namespace exec
namespace machine {
struct MachineConfig;
} // namespace machine

namespace codegen {

/// Emits the native translation unit for \p EP (which must be a
/// Mode::Simd lowering of \p IRP) under \p Machine's lane count and
/// layout. Returns the C++ source, or an empty string when the program
/// cannot be emitted (scalar mode, an undeclared slot, an opcode
/// outside the SIMD set) - callers then fall back to the bytecode
/// engine.
std::string emitCpp(const exec::Program &EP, const ir::Program &IRP,
                    const machine::MachineConfig &Machine);

} // namespace codegen
} // namespace simdflat

#endif // SIMDFLAT_CODEGEN_CPPEMITTER_H
