//===- codegen/NativeEngine.cpp -------------------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/NativeEngine.h"

#include "codegen/CppEmitter.h"
#include "codegen/JitCache.h"
#include "codegen/NativeAbi.h"
#include "exec/Bytecode.h"
#include "interp/Extern.h"
#include "interp/SimdInterp.h"
#include "interp/Store.h"
#include "machine/Machine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

using namespace simdflat;
using namespace simdflat::codegen;

namespace {

/// Content hash of everything emission depends on: re-emitting the
/// source just to discover a cache hit would put O(source) string work
/// on the hot path, so repeated runs key the entry point off the
/// program content directly.
uint64_t programKey(const exec::Program &EP,
                    const machine::MachineConfig &Machine) {
  uint64_t H = 14695981039346656037ULL;
  auto Mix = [&H](const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ULL;
    }
  };
  auto MixStr = [&](const std::string &S) {
    Mix(S.data(), S.size());
    Mix("\0", 1);
  };
  MixStr(EP.ProgName);
  int64_t Shape[4] = {Machine.Gran,
                      Machine.DataLayout == machine::Layout::Cyclic ? 1
                                                                    : 0,
                      EP.NumRegs, EP.NumCtl};
  Mix(Shape, sizeof(Shape));
  if (!EP.Code.empty())
    Mix(EP.Code.data(), EP.Code.size() * sizeof(exec::Instr));
  if (!EP.IntPool.empty())
    Mix(EP.IntPool.data(), EP.IntPool.size() * sizeof(int64_t));
  if (!EP.RealPool.empty())
    Mix(EP.RealPool.data(), EP.RealPool.size() * sizeof(double));
  if (!EP.Extra.empty())
    Mix(EP.Extra.data(), EP.Extra.size() * sizeof(int32_t));
  for (const std::string &S : EP.SlotNames)
    MixStr(S);
  for (const std::string &S : EP.Callees)
    MixStr(S);
  for (const std::string &S : EP.Msgs)
    MixStr(S);
  return H;
}

struct Memo {
  std::mutex Mu;
  /// Key -> entry point; null means "tried and failed" (an unemittable
  /// or uncompilable program stays on bytecode without re-trying).
  std::map<uint64_t, SfNativeRunFn> Entries;
};

Memo &memo() {
  static Memo M;
  return M;
}

/// Emits + compiles + loads (or replays the memoized outcome).
SfNativeRunFn entryFor(const exec::Program &EP, const ir::Program &IRP,
                       const machine::MachineConfig &Machine) {
  if (!jitAvailable() || EP.M != exec::Mode::Simd || Machine.Gran < 1)
    return nullptr;
  uint64_t Key = programKey(EP, Machine);
  Memo &M = memo();
  {
    std::lock_guard<std::mutex> Lk(M.Mu);
    auto It = M.Entries.find(Key);
    if (It != M.Entries.end())
      return It->second;
  }
  // Emission and compilation run unlocked; JitCache's own single-flight
  // dedups concurrent compiles of the same source.
  std::string Source = emitCpp(EP, IRP, Machine);
  SfNativeRunFn Fn =
      Source.empty() ? nullptr : getOrCompile(Source);
  {
    std::lock_guard<std::mutex> Lk(M.Mu);
    M.Entries[Key] = Fn;
  }
  return Fn;
}

/// Per-run host state the generated module's callbacks operate on.
struct HostState {
  const exec::Program *EP = nullptr;
  const machine::MachineConfig *Machine = nullptr;
  const interp::ExternRegistry *Externs = nullptr;
  const interp::RunOptions *Opts = nullptr;
  interp::DataStore *Store = nullptr;
  interp::RunStats *Stats = nullptr;
  interp::Trace *Tr = nullptr;
  int64_t Lanes = 1;
  std::vector<const interp::ExternImpl *> CalleeImpls;
  /// Watched slots resolved once (Trace::Step reads them per step).
  std::vector<const interp::Slot *> WatchSlots;
  SfContext *Ctx = nullptr;

  void syncStats() {
    Stats->Cycles = Ctx->Cycles;
    Stats->Instructions = Ctx->Instructions;
    Stats->CommAccesses = Ctx->CommAccesses;
  }

  [[noreturn]] void trap(int32_t Kind, int32_t LocIdx, std::string Detail,
                         const int64_t *Lanes_, int64_t NumLanes) {
    interp::Trap T;
    T.Kind = static_cast<interp::TrapKind>(Kind);
    if (Lanes_ && NumLanes > 0)
      T.Lanes.assign(Lanes_, Lanes_ + NumLanes);
    if (LocIdx >= 0)
      T.Location = EP->Locs[static_cast<size_t>(LocIdx)];
    T.Detail = std::move(Detail);
    throw interp::TrapException{std::move(T)};
  }
};

void cbTrap(void *Host, int32_t Kind, int32_t LocIdx, const char *Detail,
            const int64_t *Lanes, int64_t NumLanes) {
  HostState &H = *static_cast<HostState *>(Host);
  H.syncStats();
  H.trap(Kind, LocIdx, Detail ? Detail : "", Lanes, NumLanes);
}

int32_t cbDeadlineExpired(void *Host, int64_t /*Instructions*/) {
  HostState &H = *static_cast<HostState *>(Host);
  // The module already applied the DeadlineCheckInterval cadence and
  // the HasDeadline gate; only the clock comparison lives here.
  return H.Opts->Deadline &&
                 std::chrono::steady_clock::now() >= *H.Opts->Deadline
             ? 1
             : 0;
}

void cbTripRec(void *Host, int32_t LoopId, int64_t Trips) {
  HostState &H = *static_cast<HostState *>(Host);
  H.Stats->TripNests[static_cast<size_t>(LoopId)].Hist.record(Trips);
}

void cbWorkStep(void *Host, const uint8_t *Mask) {
  HostState &H = *static_cast<HostState *>(Host);
  interp::RunStats &Stats = *H.Stats;
  Stats.WorkSteps += 1;
  int64_t Active = 0;
  for (int64_t L = 0; L < H.Lanes; ++L)
    Active += Mask[L] != 0;
  Stats.WorkActiveLanes += Active;
  Stats.WorkTotalLanes += H.Lanes;
  if (H.WatchSlots.empty())
    return;
  interp::Trace::Step Step;
  Step.Values.reserve(H.WatchSlots.size() * static_cast<size_t>(H.Lanes));
  for (const interp::Slot *S : H.WatchSlots)
    for (int64_t L = 0; L < H.Lanes; ++L)
      Step.Values.push_back(
          S->I[static_cast<size_t>(S->Width == 1 ? 0 : L)]);
  Step.Active.assign(Mask, Mask + H.Lanes);
  H.Tr->Steps.push_back(std::move(Step));
}

void cbCallLane(void *Host, int32_t Callee, int64_t Lane, int32_t LocIdx,
                int32_t NumArgs, const int8_t *ArgKinds,
                const int64_t *ArgI, const double *ArgR, int64_t *RetI,
                double *RetR) {
  HostState &H = *static_cast<HostState *>(Host);
  const interp::ExternImpl *Impl =
      H.CalleeImpls[static_cast<size_t>(Callee)];
  std::vector<interp::ScalVal> Args(static_cast<size_t>(NumArgs));
  for (int32_t A = 0; A < NumArgs; ++A) {
    auto K = static_cast<ir::ScalarKind>(ArgKinds[A]);
    // Reproduces VecVal::lane(): the kind plus exactly the matching
    // payload, the other one zero.
    if (K == ir::ScalarKind::Real)
      Args[static_cast<size_t>(A)] = interp::ScalVal::makeReal(ArgR[A]);
    else
      Args[static_cast<size_t>(A)] =
          interp::ScalVal{K, ArgI[A], 0.0};
  }
  interp::ScalVal R;
  try {
    R = Impl->Fn(Args);
  } catch (const interp::ExternError &E) {
    H.syncStats();
    H.trap(static_cast<int32_t>(interp::TrapKind::ExternFailure), LocIdx,
           "extern '" + H.EP->Callees[static_cast<size_t>(Callee)] +
               "' failed: " + E.Message,
           &Lane, 1);
  }
  *RetI = R.I;
  *RetR = R.asNumeric();
}

} // namespace

bool codegen::nativeAvailable() { return jitAvailable(); }

bool codegen::prepareNative(const exec::Program &EP,
                            const ir::Program &IRP,
                            const machine::MachineConfig &Machine) {
  return entryFor(EP, IRP, Machine) != nullptr;
}

bool codegen::runSimdNative(const exec::Program &EP,
                            const ir::Program &IRP,
                            const machine::MachineConfig &Machine,
                            const interp::ExternRegistry *Externs,
                            const interp::RunOptions &Opts,
                            interp::DataStore &Store,
                            interp::SimdRunResult &Result) {
  SfNativeRunFn Fn = entryFor(EP, IRP, Machine);
  if (!Fn)
    return false;

  int64_t Lanes = Machine.Gran;
  interp::RunStats &Stats = Result.Stats;
  interp::Trace &Tr = Result.Tr;

  // Pre-run setup identical to Core<IsSimd, Kern>'s constructor.
  Tr.Watch = Opts.Watch;
  Tr.Lanes = Lanes;
  if (Stats.TripNests.size() != EP.LoopNames.size()) {
    Stats.TripNests.resize(EP.LoopNames.size());
    for (size_t K = 0; K < EP.LoopNames.size(); ++K) {
      Stats.TripNests[K].Name = EP.LoopNames[K];
      Stats.TripNests[K].Depth = EP.LoopDepths[K];
    }
  }

  HostState H;
  H.EP = &EP;
  H.Machine = &Machine;
  H.Externs = Externs;
  H.Opts = &Opts;
  H.Store = &Store;
  H.Stats = &Stats;
  H.Tr = &Tr;
  H.Lanes = Lanes;

  size_t NumSlots = EP.SlotNames.size();
  size_t NumCallees = EP.Callees.size();
  std::vector<SfSlot> Slots(std::max<size_t>(NumSlots, 1));
  std::vector<uint8_t> SlotWork(std::max<size_t>(NumSlots, 1), 0);
  for (size_t I = 0; I < NumSlots; ++I) {
    interp::Slot &S = Store.slot(EP.SlotNames[I]);
    Slots[I].I = S.I.empty() ? nullptr : S.I.data();
    Slots[I].R = S.R.empty() ? nullptr : S.R.data();
    Slots[I].Width = S.Width;
    SlotWork[I] =
        std::find(Opts.WorkTargets.begin(), Opts.WorkTargets.end(),
                  EP.SlotNames[I]) != Opts.WorkTargets.end()
            ? 1
            : 0;
  }
  H.CalleeImpls.resize(NumCallees, nullptr);
  std::vector<double> CalleeCosts(std::max<size_t>(NumCallees, 1), 0.0);
  std::vector<uint8_t> CalleeBound(std::max<size_t>(NumCallees, 1), 0);
  std::vector<uint8_t> CalleeWork(std::max<size_t>(NumCallees, 1), 0);
  for (size_t I = 0; I < NumCallees; ++I) {
    const interp::ExternImpl *Impl =
        Externs ? Externs->lookup(EP.Callees[I]) : nullptr;
    H.CalleeImpls[I] = Impl;
    CalleeCosts[I] = Impl ? Impl->Cost : 0.0;
    CalleeBound[I] = Impl ? 1 : 0;
    CalleeWork[I] = std::find(Opts.WorkCalls.begin(),
                              Opts.WorkCalls.end(),
                              EP.Callees[I]) != Opts.WorkCalls.end()
                        ? 1
                        : 0;
  }
  H.WatchSlots.reserve(Opts.Watch.size());
  for (const std::string &W : Opts.Watch)
    H.WatchSlots.push_back(&Store.slot(W));

  SfContext Ctx;
  std::memset(&Ctx, 0, sizeof(Ctx));
  Ctx.AbiVersion = SfNativeAbiVersion;
  Ctx.StructBytes = static_cast<uint32_t>(sizeof(SfContext));
  Ctx.Host = &H;
  Ctx.Slots = Slots.data();
  const machine::CostTable &C = Machine.Costs;
  double Costs[10] = {C.IntOp,     C.RealOp,    C.CmpOp,   C.LogicOp,
                      C.MoveOp,    C.GatherOp,  C.ScatterOp,
                      C.ReduceOp,  C.LayerCheck, C.LoopOverhead};
  std::memcpy(Ctx.Costs, Costs, sizeof(Costs));
  Ctx.Fuel = Opts.Fuel;
  Ctx.MaxLoopIterations = Opts.MaxLoopIterations;
  Ctx.HasDeadline = Opts.Deadline ? 1 : 0;
  Ctx.HasExterns = Externs ? 1 : 0;
  // In-out stats seeded from the accumulated record (fuel and cycle
  // budgets span runs against one RunStats, exactly like charge()).
  Ctx.Cycles = Stats.Cycles;
  Ctx.Instructions = Stats.Instructions;
  Ctx.CommAccesses = Stats.CommAccesses;
  Ctx.CalleeCosts = CalleeCosts.data();
  Ctx.CalleeBound = CalleeBound.data();
  Ctx.CalleeWork = CalleeWork.data();
  Ctx.SlotWork = SlotWork.data();
  Ctx.Trap = cbTrap;
  Ctx.DeadlineExpired = cbDeadlineExpired;
  Ctx.TripRec = cbTripRec;
  Ctx.WorkStep = cbWorkStep;
  Ctx.CallLane = cbCallLane;
  H.Ctx = &Ctx;

  int32_t RC;
  try {
    RC = Fn(&Ctx);
  } catch (...) {
    // Traps unwind through the module frame; the trapping callback
    // already synced, but a sync here also covers a throwing extern the
    // registry let escape as something other than ExternError.
    H.syncStats();
    throw;
  }
  if (RC != 0)
    return false; // ABI skew: clean bytecode fallback.
  H.syncStats();
  Stats.Seconds = Stats.Cycles * Machine.SecondsPerCycle;
  return true;
}
