//===- codegen/NativeAbi.h - Host <-> JIT'd loop ABI -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C ABI between the host process and a translation unit emitted by
/// codegen::CppEmitter, compiled by the host toolchain and dlopen'd by
/// codegen::JitCache. The emitted source carries its own textual copy of
/// these structs (an .so must stay self-contained), so any layout change
/// here must bump SfNativeAbiVersion and update the emitter's prologue;
/// the entry point cross-checks both the version and sizeof(SfContext)
/// and refuses to run on a mismatch, turning skew into a clean bytecode
/// fallback instead of memory corruption.
///
/// Division of labor: everything statically known at emit time (lane
/// count, data layout, pools, slot shapes/kinds/names, messages, trap
/// locations) is baked into the generated code; everything per-run
/// (store payloads, cost table, fuel/deadline, work-step flags, extern
/// bindings) flows through SfContext. Side effects the generated loops
/// cannot perform themselves - throwing traps, reading the wall clock,
/// recording work steps and trip samples, invoking extern bindings -
/// are host callbacks.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_CODEGEN_NATIVEABI_H
#define SIMDFLAT_CODEGEN_NATIVEABI_H

#include <cstdint>

namespace simdflat {
namespace codegen {

/// Bumped whenever SfSlot/SfContext change layout.
constexpr int32_t SfNativeAbiVersion = 1;

/// Name of the exported entry point of every generated module.
constexpr const char *SfNativeEntryName = "simdflat_native_run";

/// Runtime payload of one store slot, in exec::Program::SlotNames
/// order. Shape, kind and name are baked into the generated code; only
/// the (per-run) payload pointers and width cross the ABI.
struct SfSlot {
  int64_t *I; ///< Integer/logical payload (null for real slots).
  double *R;  ///< Real payload (null for integer slots).
  int64_t Width;
};

/// Everything a generated module needs for one run. All callbacks take
/// the opaque \c Host pointer first. The stat fields are in-out: the
/// host seeds them from the accumulated RunStats (fuel spans runs of
/// one interpreter) and the module writes them back at every host
/// upcall and at halt.
struct SfContext {
  int32_t AbiVersion;   ///< Host writes SfNativeAbiVersion.
  uint32_t StructBytes; ///< Host writes sizeof(SfContext).
  void *Host;           ///< Opaque host state, first arg of callbacks.
  SfSlot *Slots;        ///< SlotNames-indexed runtime payloads.

  /// machine::CostTable entries in exec::CostKind order.
  double Costs[10];
  int64_t Fuel;              ///< RunOptions::Fuel (0 = unlimited).
  int64_t MaxLoopIterations; ///< RunOptions::MaxLoopIterations.
  int32_t HasDeadline;       ///< 1 when RunOptions::Deadline is set.
  int32_t HasExterns;        ///< 1 when an ExternRegistry is present.

  /// In-out accumulated stats (see struct comment).
  double Cycles;
  int64_t Instructions;
  int64_t CommAccesses;

  /// Per-callee runtime facts, exec::Program::Callees order (null when
  /// the program declares no externs).
  double *CalleeCosts;   ///< ExternImpl::Cost per callee.
  uint8_t *CalleeBound;  ///< 1 when the registry binds the callee.
  uint8_t *CalleeWork;   ///< 1 when the callee is in WorkCalls.
  /// Per-slot work flag, SlotNames order (1 = name in WorkTargets).
  uint8_t *SlotWork;

  /// Throws the trap on the host side; never returns. \p Lanes may be
  /// null when \p NumLanes is 0. \p LocIdx indexes Program::Locs (-1 =
  /// no location).
  void (*Trap)(void *Host, int32_t Kind, int32_t LocIdx,
               const char *Detail, const int64_t *Lanes, int64_t NumLanes);
  /// Wall-clock poll at a DeadlineCheckInterval boundary; returns 1
  /// when the deadline has passed.
  int32_t (*DeadlineExpired)(void *Host, int64_t Instructions);
  /// Records one trip-count sample for loop \p LoopId.
  void (*TripRec)(void *Host, int32_t LoopId, int64_t Trips);
  /// Records one work step; \p Mask points at the current per-lane
  /// activity mask (lane count is baked and known to the host).
  void (*WorkStep)(void *Host, const uint8_t *Mask);
  /// Invokes extern \p Callee for one active lane. Argument kinds use
  /// ir::ScalarKind values (0=Int, 1=Real, 2=Bool); for each argument
  /// exactly the payload matching its kind is meaningful. On return the
  /// host has stored the raw integer payload in *RetI and the numeric
  /// (asNumeric) value in *RetR; extern failures throw on the host side
  /// and do not return.
  void (*CallLane)(void *Host, int32_t Callee, int64_t Lane,
                   int32_t LocIdx, int32_t NumArgs, const int8_t *ArgKinds,
                   const int64_t *ArgI, const double *ArgR,
                   int64_t *RetI, double *RetR);
};

/// Entry point type: returns 0 on a completed run, 1 on an ABI
/// mismatch (the host then falls back to bytecode). Traps leave via a
/// host callback that throws.
using SfNativeRunFn = int32_t (*)(SfContext *);

} // namespace codegen
} // namespace simdflat

#endif // SIMDFLAT_CODEGEN_NATIVEABI_H
