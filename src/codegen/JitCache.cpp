//===- codegen/JitCache.cpp -----------------------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/JitCache.h"

#include "codegen/JitConfig.h"

#include <cstdlib>
#include <map>
#include <mutex>

#if SIMDFLAT_JIT_ENABLED
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <dlfcn.h>
#include <unistd.h>
#endif

using namespace simdflat;
using namespace simdflat::codegen;

uint64_t codegen::sourceKey(const std::string &Source) {
  // FNV-1a 64.
  uint64_t H = 14695981039346656037ULL;
  for (unsigned char C : Source) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

namespace {

struct CacheEntry {
  bool Done = false;
  bool Building = false;
  SfNativeRunFn Fn = nullptr; ///< Null once Done => cached failure.
};

struct Cache {
  std::mutex Mu;
#if SIMDFLAT_JIT_ENABLED
  std::condition_variable Cv;
#endif
  std::map<uint64_t, CacheEntry> Entries;
  JitStats Stats;
};

Cache &cache() {
  static Cache C;
  return C;
}

#if SIMDFLAT_JIT_ENABLED

std::string compilerPath() {
  if (const char *Env = std::getenv("SIMDFLAT_JIT_CC"))
    return Env;
  return SIMDFLAT_JIT_COMPILER;
}

std::filesystem::path artifactDir() {
  if (const char *Env = std::getenv("SIMDFLAT_JIT_DIR"))
    return Env;
  return std::filesystem::temp_directory_path() / "simdflat-jit";
}

/// Builds + loads one artifact outside any lock. Returns null on any
/// failure; updates only local *Out counters (caller folds them in
/// under the lock).
SfNativeRunFn buildOne(const std::string &Source, uint64_t Key,
                       bool &WasCompile, int64_t &Bytes) {
  std::error_code EC;
  std::filesystem::path Dir = artifactDir();
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return nullptr;

  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx",
                static_cast<unsigned long long>(Key));
  std::filesystem::path So = Dir / (std::string(Name) + ".so");
  std::filesystem::path Cpp = Dir / (std::string(Name) + ".cpp");
  std::filesystem::path Log = Dir / (std::string(Name) + ".log");

  if (!std::filesystem::exists(So, EC)) {
    // Write the source via temp + rename so a concurrent process never
    // compiles a half-written file.
    std::filesystem::path Tmp =
        Dir / (std::string(Name) + ".cpp.tmp" +
               std::to_string(static_cast<long>(::getpid())));
    {
      std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
      if (!Out)
        return nullptr;
      Out << Source;
      if (!Out.flush())
        return nullptr;
    }
    std::filesystem::rename(Tmp, Cpp, EC);
    if (EC) {
      std::filesystem::remove(Tmp, EC);
      return nullptr;
    }

    // -ffp-contract=off: the emitted loops must not fuse a mul+add that
    // the bytecode engine executes as two rounded instructions, or the
    // quad-engine oracle loses FP bit-identity. -march=native is safe
    // for a JIT (artifacts never leave the host that compiled them) and
    // lets the per-lane loops vectorize; -fno-math-errno frees sqrt to
    // inline (the emitted code pre-sweeps negative operands exactly
    // like the interpreter, so errno was already dead). Both keep every
    // operation individually IEEE-rounded. -w: generated code has
    // unused labels/locals by construction.
    std::filesystem::path SoTmp = Dir / (std::string(Name) + ".so.tmp");
    std::ostringstream Cmd;
    Cmd << "\"" << compilerPath() << "\""
        << " -std=c++20 -O3 -march=native -fno-math-errno -fPIC -shared"
        << " -ffp-contract=off -w"
        << " -o \"" << SoTmp.string() << "\" \"" << Cpp.string() << "\""
        << " 2> \"" << Log.string() << "\"";
    if (std::system(Cmd.str().c_str()) != 0) {
      std::filesystem::remove(SoTmp, EC);
      return nullptr;
    }
    std::filesystem::rename(SoTmp, So, EC);
    if (EC)
      return nullptr;
    WasCompile = true;
    Bytes = static_cast<int64_t>(std::filesystem::file_size(So, EC));
  }

  void *Handle = ::dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle)
    return nullptr;
  // Never dlclosed - see the header comment.
  void *Sym = ::dlsym(Handle, SfNativeEntryName);
  return reinterpret_cast<SfNativeRunFn>(Sym);
}

#endif // SIMDFLAT_JIT_ENABLED

} // namespace

bool codegen::jitAvailable() {
#if SIMDFLAT_JIT_ENABLED
  return !compilerPath().empty();
#else
  return false;
#endif
}

SfNativeRunFn codegen::getOrCompile(const std::string &Source) {
#if SIMDFLAT_JIT_ENABLED
  if (!jitAvailable() || Source.empty())
    return nullptr;
  uint64_t Key = sourceKey(Source);
  Cache &C = cache();

  {
    std::unique_lock<std::mutex> Lk(C.Mu);
    CacheEntry &E = C.Entries[Key];
    // Single-flight: exactly one thread builds; the rest wait for the
    // verdict (success or cached failure) instead of re-compiling.
    while (E.Building)
      C.Cv.wait(Lk);
    if (E.Done) {
      C.Stats.Hits += 1;
      return E.Fn;
    }
    E.Building = true;
  }

  bool WasCompile = false;
  int64_t Bytes = 0;
  SfNativeRunFn Fn = buildOne(Source, Key, WasCompile, Bytes);

  {
    std::unique_lock<std::mutex> Lk(C.Mu);
    CacheEntry &E = C.Entries[Key];
    E.Building = false;
    E.Done = true;
    E.Fn = Fn;
    if (!Fn)
      C.Stats.Failures += 1;
    else if (WasCompile) {
      C.Stats.Compiles += 1;
      C.Stats.ArtifactBytes += Bytes;
    } else
      C.Stats.DiskHits += 1;
    C.Cv.notify_all();
  }
  return Fn;
#else
  (void)Source;
  return nullptr;
#endif
}

JitStats codegen::jitStats() {
  Cache &C = cache();
  std::lock_guard<std::mutex> Lk(C.Mu);
  return C.Stats;
}
