//===- codegen/JitCache.h - Compile + dlopen cache -------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns emitted C++ source (codegen::CppEmitter) into a loaded native
/// entry point: shells out to the host compiler, dlopen's the shared
/// object, and caches the result keyed by a hash of the source text.
/// Artifacts live under $SIMDFLAT_JIT_DIR (default: a per-user
/// directory under the system temp dir), so identical programs compile
/// once per machine, not once per process.
///
/// Failure is a first-class outcome, not an error: when the build was
/// configured with SIMDFLAT_ENABLE_JIT=OFF, when the configured
/// compiler is missing, or when a compile fails, getOrCompile returns
/// null and the caller degrades to the bytecode engine. Compile
/// *failures are cached per key* so a serving layer doesn't pay the
/// failed-compile cost on every request (the breaker-degrades story).
///
/// Loaded modules are never dlclosed: an entry point may be referenced
/// by concurrently running requests, and the handful of resident
/// modules is bounded by the number of distinct (program, lanes,
/// layout) shapes.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_CODEGEN_JITCACHE_H
#define SIMDFLAT_CODEGEN_JITCACHE_H

#include "codegen/NativeAbi.h"

#include <cstdint>
#include <string>

namespace simdflat {
namespace codegen {

/// Cumulative counters for one process (all JitCache queries share one
/// global cache).
struct JitStats {
  int64_t Hits = 0;          ///< In-memory entry-point hits.
  int64_t Compiles = 0;      ///< Successful compiler invocations.
  int64_t DiskHits = 0;      ///< Artifact already on disk; dlopen only.
  int64_t Failures = 0;      ///< Failed compiles/loads (also cached).
  int64_t ArtifactBytes = 0; ///< Total bytes of .so files produced.
};

/// True when this build can ever JIT: SIMDFLAT_ENABLE_JIT was ON and a
/// compiler path is configured (it may still fail at runtime if the
/// compiler was removed; that failure is cached like any other).
bool jitAvailable();

/// Returns the entry point for \p Source, compiling and loading on the
/// first request. Null means unavailable (disabled build, compile or
/// load failure) - callers must fall back to bytecode. Thread-safe;
/// concurrent requests for the same source single-flight behind one
/// compile.
SfNativeRunFn getOrCompile(const std::string &Source);

/// Process-wide counters (copied under the cache lock).
JitStats jitStats();

/// The FNV-1a 64-bit hash of \p Source - the cache key, also the
/// artifact base name. Exposed for tests and cache-key plumbing.
uint64_t sourceKey(const std::string &Source);

} // namespace codegen
} // namespace simdflat

#endif // SIMDFLAT_CODEGEN_JITCACHE_H
