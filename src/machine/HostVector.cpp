//===- machine/HostVector.cpp - Host vector-unit capabilities --*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/HostVector.h"

using namespace simdflat;
using namespace simdflat::machine;

HostVectorCaps machine::hostVectorCaps() {
#ifdef SIMDFLAT_HOSTSIMD_AVX2
  return {"avx2", 4, true};
#else
  return {"portable", 4, false};
#endif
}
