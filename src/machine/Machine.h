//===- machine/Machine.h - SIMD machine configuration ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models of the machines from the paper's Sec. 5.2:
///
///  * CM-2 (Thinking Machines): 8192 one-bit PEs + 64-bit FPAs, slicewise
///    compiler => data granularity Gran = P/8, blockwise layout, and a
///    virtual-processor model that cycles through ALL memory layers even
///    when only a prefix is active.
///  * DECmpp 12000 / MasPar MP-1200: Gran = P, cyclic "cut-and-stack"
///    layout, prunes inactive memory layers at a small per-layer checking
///    cost.
///  * Sparc 2: the sequential reference (Gran = 1).
///
/// The cost model charges per executed vector instruction; masked-out
/// lanes pay anyway, which is precisely the effect loop flattening
/// attacks. Costs are expressed in "machine cycles"; `secondsPerCycle`
/// scales them to wall-clock-shaped numbers. We reproduce the paper's
/// *shape* (who wins, by what factor, where crossovers are), not 1992
/// absolute seconds.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_MACHINE_MACHINE_H
#define SIMDFLAT_MACHINE_MACHINE_H

#include <cstdint>
#include <string>

namespace simdflat {
namespace machine {

/// How the distributed dimension of an array maps to lanes.
enum class Layout {
  /// Contiguous chunks per lane (CM-2 slicewise).
  Block,
  /// Element e lives on lane (e-1) mod Gran, layer (e-1) / Gran
  /// ("cut-and-stack", DECmpp).
  Cyclic,
};

/// Per-operation cycle costs of one vector instruction (all lanes step
/// together, so these do not depend on how many lanes are active).
struct CostTable {
  double IntOp = 1.0;      ///< integer add/sub/mul/...
  double RealOp = 4.0;     ///< floating-point op
  double CmpOp = 1.0;      ///< comparison
  double LogicOp = 0.5;    ///< mask/logical op
  double MoveOp = 1.0;     ///< register move / literal broadcast
  double GatherOp = 6.0;   ///< indexed load (indirect addressing)
  double ScatterOp = 6.0;  ///< indexed masked store
  double ReduceOp = 12.0;  ///< ANY/ALL/MAXRED/... (log-tree across lanes)
  double LayerCheck = 2.0; ///< testing whether a memory layer is active
  double LoopOverhead = 2.0; ///< per-iteration control (branch + counter)
};

/// A complete machine description.
struct MachineConfig {
  std::string Name;
  /// Marketing processor count P (1-bit PEs on the CM-2).
  int64_t Processors = 1;
  /// Data granularity: number of lanes a vector instruction covers; the
  /// smallest economical distributed-array extent (Sec. 5.2).
  int64_t Gran = 1;
  Layout DataLayout = Layout::Cyclic;
  /// True if the compiler's virtual-processor model sweeps all declared
  /// memory layers even when only a prefix holds live data (CM-2
  /// slicewise; Sec. 5.3: "the processors will always cycle through all
  /// layers of memory").
  bool VirtualProcessorSweep = false;
  /// Seconds per cycle: scales model cycles into reported "seconds".
  double SecondsPerCycle = 1e-6;
  CostTable Costs;

  /// Memory layers needed for \p Elements elements of a distributed
  /// dimension (ceil(Elements / Gran)); at least 1.
  int64_t layersFor(int64_t Elements) const;

  /// Home lane (0-based) of 1-based element \p Index of a distributed
  /// dimension with \p Extent elements.
  int64_t laneOf(int64_t Index, int64_t Extent) const;

  /// Memory layer (0-based) of 1-based element \p Index.
  int64_t layerOf(int64_t Index, int64_t Extent) const;

  /// The CM-2 model at \p Processors one-bit PEs (Gran = P/8).
  static MachineConfig cm2(int64_t Processors);

  /// The DECmpp 12000 / MasPar MP-1200 model at \p Processors PEs
  /// (Gran = P).
  static MachineConfig decmpp(int64_t Processors);

  /// The Sparc 2 sequential reference (Gran = 1).
  static MachineConfig sparc2();
};

} // namespace machine
} // namespace simdflat

#endif // SIMDFLAT_MACHINE_MACHINE_H
