//===- machine/MaskStack.h - Nested WHERE activity masks -------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack of lane-activity masks maintained by the SIMD control unit
/// for nested WHERE/ELSEWHERE regions. Lanes outside the current mask
/// still step through every instruction (and pay for it); they just do
/// not commit stores.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_MACHINE_MASKSTACK_H
#define SIMDFLAT_MACHINE_MASKSTACK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simdflat {
namespace machine {

/// Stack of AND-composed lane masks.
class MaskStack {
public:
  explicit MaskStack(int64_t Lanes)
      : Lanes(Lanes), Current(static_cast<size_t>(Lanes), 1) {}

  int64_t lanes() const { return Lanes; }

  /// The effective mask (already AND-composed through all levels).
  const std::vector<uint8_t> &current() const { return Current; }

  /// Is lane \p L active?
  bool isActive(int64_t L) const {
    return Current[static_cast<size_t>(L)] != 0;
  }

  /// Pushes `current AND Cond` (entering a WHERE body).
  void pushAnd(const std::vector<uint8_t> &Cond);

  /// Pushes `parent AND NOT Cond` where parent is the mask *below* the
  /// top (entering an ELSEWHERE body after its WHERE body was popped is
  /// not how we drive it; instead call flipTop() while the WHERE mask is
  /// on top).
  void flipTop();

  /// Pops one level.
  void pop();

  /// Number of pushed levels (0 at top level).
  size_t depth() const { return Saved.size(); }

  /// Number of active lanes.
  int64_t activeCount() const;

  /// True if no lane is active.
  bool noneActive() const { return activeCount() == 0; }

private:
  int64_t Lanes;
  std::vector<uint8_t> Current;
  /// Saved (parent mask, condition) pairs for pop/flip.
  struct Level {
    std::vector<uint8_t> Parent;
    std::vector<uint8_t> Cond;
  };
  std::vector<Level> Saved;
};

} // namespace machine
} // namespace simdflat

#endif // SIMDFLAT_MACHINE_MASKSTACK_H
