//===- machine/HostVector.h - Host vector-unit capabilities ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configure-time capability query for the HostSimd backend: which
/// kernel architecture this build executes model lanes with, and how
/// wide its registers are. The answer is baked in by the top-level
/// CMake AVX2 detection (a check_cxx_source_runs probe, so it guards
/// both the compiler and the build host's CPU) and the
/// SIMDFLAT_FORCE_PORTABLE_SIMD override - there is no runtime
/// dispatch, which keeps bench numbers attributable to one code path.
///
/// This lives in src/machine rather than src/exec because it describes
/// the *host* machine the way MachineConfig describes the *modeled*
/// machine; tools report both side by side.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_MACHINE_HOSTVECTOR_H
#define SIMDFLAT_MACHINE_HOSTVECTOR_H

namespace simdflat {
namespace machine {

/// What the HostSimd backend's kernels compile to in this build.
struct HostVectorCaps {
  /// "avx2" or "portable".
  const char *Arch;
  /// Double lanes per vector register (4 for AVX2; the portable
  /// fallback processes fixed blocks of the same width).
  int Width;
  /// True when Arch is a real instruction-set extension rather than
  /// the hand-rolled fallback.
  bool IsHardware;
};

/// The capabilities baked into this build.
HostVectorCaps hostVectorCaps();

} // namespace machine
} // namespace simdflat

#endif // SIMDFLAT_MACHINE_HOSTVECTOR_H
