//===- machine/Machine.cpp ------------------------------------*- C++ -*-===//

#include "machine/Machine.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::machine;

int64_t MachineConfig::layersFor(int64_t Elements) const {
  assert(Elements >= 0 && "negative extent");
  if (Elements <= 0)
    return 1;
  return (Elements + Gran - 1) / Gran;
}

int64_t MachineConfig::laneOf(int64_t Index, int64_t Extent) const {
  assert(Index >= 1 && Index <= Extent && "element index out of range");
  switch (DataLayout) {
  case Layout::Cyclic:
    return (Index - 1) % Gran;
  case Layout::Block: {
    int64_t Chunk = layersFor(Extent);
    return (Index - 1) / Chunk;
  }
  }
  return 0;
}

int64_t MachineConfig::layerOf(int64_t Index, int64_t Extent) const {
  assert(Index >= 1 && Index <= Extent && "element index out of range");
  switch (DataLayout) {
  case Layout::Cyclic:
    return (Index - 1) / Gran;
  case Layout::Block: {
    int64_t Chunk = layersFor(Extent);
    return (Index - 1) % Chunk;
  }
  }
  return 0;
}

MachineConfig MachineConfig::cm2(int64_t Processors) {
  assert(Processors % 8 == 0 && "CM-2 slicewise needs P divisible by 8");
  MachineConfig M;
  M.Name = "CM-2";
  M.Processors = Processors;
  // Slicewise model: 32 PEs per FPA node pair, vector length 4
  // => Gran = P * 4 / 32 = P / 8 (Sec. 5.2).
  M.Gran = Processors / 8;
  M.DataLayout = Layout::Block;
  M.VirtualProcessorSweep = true;
  M.SecondsPerCycle = 0.35e-5;
  return M;
}

MachineConfig MachineConfig::decmpp(int64_t Processors) {
  MachineConfig M;
  M.Name = "DECmpp-12000";
  M.Processors = Processors;
  M.Gran = Processors; // Sec. 5.2: Gran = P on the DECmpp.
  M.DataLayout = Layout::Cyclic;
  M.VirtualProcessorSweep = false;
  M.SecondsPerCycle = 0.95e-5;
  return M;
}

MachineConfig MachineConfig::sparc2() {
  MachineConfig M;
  M.Name = "Sparc-2";
  M.Processors = 1;
  M.Gran = 1;
  M.DataLayout = Layout::Cyclic;
  M.VirtualProcessorSweep = false;
  // 28 Mips workstation (Sec. 5.2).
  M.SecondsPerCycle = 1.0 / 28.0e6;
  return M;
}
