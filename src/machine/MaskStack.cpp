//===- machine/MaskStack.cpp ----------------------------------*- C++ -*-===//

#include "machine/MaskStack.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::machine;

void MaskStack::pushAnd(const std::vector<uint8_t> &Cond) {
  assert(Cond.size() == Current.size() && "mask width mismatch");
  Level L;
  L.Parent = Current;
  L.Cond = Cond;
  for (size_t I = 0; I < Current.size(); ++I)
    Current[I] = static_cast<uint8_t>(Current[I] & Cond[I]);
  Saved.push_back(std::move(L));
}

void MaskStack::flipTop() {
  assert(!Saved.empty() && "flipTop at top level");
  const Level &L = Saved.back();
  for (size_t I = 0; I < Current.size(); ++I)
    Current[I] = static_cast<uint8_t>(L.Parent[I] & !L.Cond[I]);
}

void MaskStack::pop() {
  assert(!Saved.empty() && "pop at top level");
  Current = Saved.back().Parent;
  Saved.pop_back();
}

int64_t MaskStack::activeCount() const {
  int64_t N = 0;
  for (uint8_t M : Current)
    N += M != 0;
  return N;
}
