//===- analysis/SideEffects.h - Purity and read/write sets -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Side-effect and access-set analyses. Sec. 4 of the paper introduces
/// guard flags precisely because loop tests may have side effects; the
/// optimized flattenings (Figs. 11/12) require side-effect-free control
/// phases. These helpers answer those questions conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_ANALYSIS_SIDEEFFECTS_H
#define SIMDFLAT_ANALYSIS_SIDEEFFECTS_H

#include "ir/Program.h"

#include <set>
#include <string>

namespace simdflat {
namespace analysis {

/// True if evaluating \p E may have observable side effects (calls an
/// impure or unknown extern).
bool exprHasSideEffects(const ir::Expr &E, const ir::Program &P);

/// True if executing \p B may call an impure or unknown extern. Writes
/// to variables are reported separately through namesWritten.
bool bodyCallsImpure(const ir::Body &B, const ir::Program &P);

/// Names of variables and arrays assigned anywhere in \p B (including
/// DO/FORALL index variables).
std::set<std::string> namesWritten(const ir::Body &B);

/// Names of variables and arrays read anywhere in \p E.
std::set<std::string> namesRead(const ir::Expr &E);

/// Names of variables and arrays read anywhere in \p B (conditions,
/// bounds, subscripts - including subscripts of assignment targets - and
/// right-hand sides).
std::set<std::string> namesRead(const ir::Body &B);

} // namespace analysis
} // namespace simdflat

#endif // SIMDFLAT_ANALYSIS_SIDEEFFECTS_H
