//===- analysis/Safety.cpp ------------------------------------*- C++ -*-===//

#include "analysis/Safety.h"

#include "analysis/SideEffects.h"
#include "ir/Walk.h"

#include <set>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

namespace {

/// Collects write targets of \p B, separated into scalars and arrays.
void collectWrites(const Body &B, std::set<std::string> &Scalars,
                   std::set<std::string> &Arrays) {
  forEachStmt(B, [&](const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S)) {
      if (const auto *V = dyn_cast<VarRef>(&A->target()))
        Scalars.insert(V->name());
      else if (const auto *AR = dyn_cast<ArrayRef>(&A->target()))
        Arrays.insert(AR->name());
    }
  });
}

/// Checker state threaded through the recursive scan.
struct Scan {
  const std::string &IV;
  const std::set<std::string> &WrittenScalars;
  const std::set<std::string> &WrittenArrays;
  std::string Reason;

  bool fail(const std::string &R) {
    if (Reason.empty())
      Reason = R;
    return false;
  }

  /// All reads in \p E must be of privatized-safe scalars, and reads of
  /// written arrays must be subscripted by the loop index.
  bool checkExprReads(const Expr &E, const std::set<std::string> &Safe) {
    bool OK = true;
    forEachExpr(E, [&](const Expr &Sub) {
      if (!OK)
        return;
      if (const auto *V = dyn_cast<VarRef>(&Sub)) {
        if (V->name() != IV && WrittenScalars.count(V->name()) &&
            !Safe.count(V->name()))
          OK = fail("scalar '" + V->name() +
                    "' carries a value across outer iterations");
      } else if (const auto *A = dyn_cast<ArrayRef>(&Sub)) {
        if (WrittenArrays.count(A->name())) {
          const auto *First =
              A->indices().empty()
                  ? nullptr
                  : dyn_cast<VarRef>(A->indices()[0].get());
          if (!First || First->name() != IV)
            OK = fail("array '" + A->name() +
                      "' is written and accessed with a subscript other "
                      "than the loop index");
        }
      }
    });
    return OK;
  }

  bool checkBody(const Body &B, std::set<std::string> Safe) {
    for (const StmtPtr &SP : B) {
      const Stmt &S = *SP;
      switch (S.kind()) {
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(&S);
        if (!checkExprReads(A->value(), Safe))
          return false;
        if (const auto *AR = dyn_cast<ArrayRef>(&A->target())) {
          for (const ExprPtr &I : AR->indices())
            if (!checkExprReads(*I, Safe))
              return false;
          const auto *First =
              AR->indices().empty()
                  ? nullptr
                  : dyn_cast<VarRef>(AR->indices()[0].get());
          if (!First || First->name() != IV)
            return fail("array '" + AR->name() +
                        "' is written with a first subscript other than "
                        "the loop index");
        } else {
          const auto *V = cast<VarRef>(&A->target());
          if (V->name() == IV)
            return fail("the loop index is modified inside the loop");
          Safe.insert(V->name());
        }
        break;
      }
      case Stmt::Kind::Do: {
        const auto *D = cast<DoStmt>(&S);
        if (!checkExprReads(D->lo(), Safe) || !checkExprReads(D->hi(), Safe))
          return false;
        if (D->step() && !checkExprReads(*D->step(), Safe))
          return false;
        if (D->indexVar() == IV)
          return fail("the loop index is rebound by an inner loop");
        std::set<std::string> Inner = Safe;
        Inner.insert(D->indexVar());
        if (!checkBody(D->body(), std::move(Inner)))
          return false;
        break;
      }
      case Stmt::Kind::Forall: {
        const auto *F = cast<ForallStmt>(&S);
        if (!checkExprReads(F->lo(), Safe) || !checkExprReads(F->hi(), Safe))
          return false;
        std::set<std::string> Inner = Safe;
        Inner.insert(F->indexVar());
        if (F->mask() && !checkExprReads(*F->mask(), Inner))
          return false;
        if (!checkBody(F->body(), std::move(Inner)))
          return false;
        break;
      }
      case Stmt::Kind::While: {
        const auto *W = cast<WhileStmt>(&S);
        if (!checkExprReads(W->cond(), Safe))
          return false;
        if (!checkBody(W->body(), Safe))
          return false;
        break;
      }
      case Stmt::Kind::Repeat: {
        const auto *R = cast<RepeatStmt>(&S);
        if (!checkBody(R->body(), Safe))
          return false;
        if (!checkExprReads(R->untilCond(), Safe))
          return false;
        break;
      }
      case Stmt::Kind::If: {
        const auto *I = cast<IfStmt>(&S);
        if (!checkExprReads(I->cond(), Safe))
          return false;
        if (!checkBody(I->thenBody(), Safe) ||
            !checkBody(I->elseBody(), Safe))
          return false;
        break;
      }
      case Stmt::Kind::Where: {
        const auto *W = cast<WhereStmt>(&S);
        if (!checkExprReads(W->cond(), Safe))
          return false;
        if (!checkBody(W->thenBody(), Safe) ||
            !checkBody(W->elseBody(), Safe))
          return false;
        break;
      }
      case Stmt::Kind::Call:
        return fail("subroutine call with unknown effects");
      case Stmt::Kind::Label:
      case Stmt::Kind::Goto:
        return fail("unstructured control flow; recover GOTO loops first");
      }
    }
    return true;
  }
};

} // namespace

SafetyResult analysis::checkParallelizable(const DoStmt &Loop,
                                           const Program &P) {
  SafetyResult R;
  if (bodyCallsImpure(Loop.body(), P)) {
    R.Reason = "the loop calls an impure or undeclared routine";
    return R;
  }
  std::set<std::string> Scalars, Arrays;
  collectWrites(Loop.body(), Scalars, Arrays);
  Scan S{Loop.indexVar(), Scalars, Arrays, {}};
  if (!S.checkBody(Loop.body(), {})) {
    R.Reason = S.Reason;
    return R;
  }
  R.Parallelizable = true;
  return R;
}
