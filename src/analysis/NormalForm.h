//===- analysis/NormalForm.h - init/test/increment extraction --*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Breaks a loop's control pattern into the three phases of Sec. 4 /
/// Fig. 8 - an initialization phase `init`, a guard `test`, and an
/// incrementing step `increment` - plus, when available, the `done`
/// last-iteration test that enables the Fig. 12 optimization. Handles
/// DO, WHILE and REPEAT (DO-WHILE) loops; GOTO loops are recovered into
/// WHILEs by the front end before analysis (Sec. 6 "GOTO loops:
/// identify the phases by their position between labels and jumps").
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_ANALYSIS_NORMALFORM_H
#define SIMDFLAT_ANALYSIS_NORMALFORM_H

#include "ir/Program.h"

#include <optional>
#include <string>

namespace simdflat {
namespace analysis {

/// The normal form of one loop. All expressions/statements are fresh
/// clones owned by this object.
struct LoopNormalForm {
  /// Statements establishing the loop's control state (`i = lo`). Empty
  /// for WHILE/REPEAT loops, whose initialization happens before the
  /// loop in user code.
  ir::Body Init;
  /// The pre-test guard: iteration continues while this holds.
  ir::ExprPtr Test;
  /// The loop body excluding control (for WHILE/REPEAT loops the
  /// increment is inside the body and "stays with BODY", Sec. 6).
  ir::Body BodyStmts;
  /// Control-advance statements (`i = i + step`); empty for WHILE/REPEAT.
  ir::Body Increment;
  /// Last-iteration test (`i >= hi`), present only for unit-step counted
  /// loops (Sec. 4 condition 3).
  ir::ExprPtr Done;
  /// The counted loop's index variable, if any.
  std::string IndexVar;
  /// True for REPEAT loops: the body runs before the first test, so the
  /// loop is guaranteed at least one trip (Sec. 4 condition 2 holds
  /// structurally).
  bool PostTest = false;
  /// True if Test/Init/Increment call no impure externs.
  bool ControlIsPure = true;
  /// True if the loop provably runs at least once (constant bounds or
  /// post-test form).
  bool ProvablyMinOneTrip = false;
};

/// Extracts the normal form of \p Loop (a DoStmt, WhileStmt or
/// RepeatStmt). Returns nullopt for other statement kinds, or for DO
/// loops with a non-literal step (the phase split would need the step's
/// sign). Label/Goto loops must be structured first.
std::optional<LoopNormalForm> normalFormOf(const ir::Stmt &Loop,
                                           const ir::Program &P);

/// True if \p S is a loop statement normalFormOf understands.
bool isLoopStmt(const ir::Stmt &S);

} // namespace analysis
} // namespace simdflat

#endif // SIMDFLAT_ANALYSIS_NORMALFORM_H
