//===- analysis/Profitability.cpp -----------------------------*- C++ -*-===//

#include "analysis/Profitability.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

using namespace simdflat;
using namespace simdflat::analysis;

TripDistribution::TripDistribution(std::span<const int64_t> TripCounts)
    : View(TripCounts) {
  Samples = static_cast<int64_t>(TripCounts.size());
  bool AnyNegative = false;
  for (int64_t T : TripCounts) {
    int64_t C = std::max<int64_t>(T, 0);
    AnyNegative |= T < 0;
    Sum += C;
    Max = std::max(Max, C);
  }
  // A negative trip count means "zero iterations" (Fortran DO
  // semantics); clamp into an owned copy so the evaluation below only
  // ever sees the executable counts.
  if (AnyNegative) {
    Owned.reserve(TripCounts.size());
    for (int64_t T : TripCounts)
      Owned.push_back(std::max<int64_t>(T, 0));
  }
}

TripDistribution::TripDistribution(const interp::TripHistogram &H) {
  Samples = H.Samples;
  Sum = H.Sum;
  Max = H.Max;
  if (H.Samples == 0)
    return;
  // Downsample factor: keep every occupied bucket (outliers must
  // survive), scale populous buckets so the expansion stays <=
  // ExpandCap entries.
  double Scale = H.Samples <= ExpandCap
                     ? 1.0
                     : static_cast<double>(ExpandCap) /
                           static_cast<double>(H.Samples);
  auto Emit = [&](int64_t Value, int64_t Count) {
    if (Count <= 0)
      return;
    int64_t N = std::max<int64_t>(
        1, static_cast<int64_t>(std::floor(
               static_cast<double>(Count) * Scale)));
    Owned.insert(Owned.end(), static_cast<size_t>(N), Value);
  };
  for (int64_t V = 0; V < interp::TripHistogram::NumExact; ++V)
    Emit(V, H.Exact[static_cast<size_t>(V)]);
  for (int64_t B = 0; B < interp::TripHistogram::NumLog2; ++B)
    Emit(interp::TripHistogram::log2BucketMid(B),
         H.Log2[static_cast<size_t>(B)]);
}

const interp::NestTripStats *analysis::dominantTripNest(
    const std::vector<interp::NestTripStats> &Nests) {
  const interp::NestTripStats *Best = nullptr;
  for (const interp::NestTripStats &N : Nests) {
    if (N.Hist.Samples <= 0)
      continue;
    if (!Best || N.Depth > Best->Depth ||
        (N.Depth == Best->Depth &&
         (N.Hist.Samples > Best->Hist.Samples ||
          (N.Hist.Samples == Best->Hist.Samples && N.Name < Best->Name))))
      Best = &N;
  }
  return Best;
}

ProfitEstimate analysis::estimateProfit(std::span<const int64_t> TripCounts,
                                        int64_t NumProcs,
                                        machine::Layout PartLayout) {
  assert(NumProcs >= 1 && "need at least one processor");
  ProfitEstimate E;
  int64_t K = static_cast<int64_t>(TripCounts.size());
  if (K == 0)
    return E;

  // Owner of outer iteration k (0-based) and its local position.
  int64_t Chunk = (K + NumProcs - 1) / NumProcs;
  auto OwnerOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter / Chunk
                                                : Iter % NumProcs;
  };
  auto LocalOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter % Chunk
                                                : Iter / NumProcs;
  };

  std::vector<int64_t> PerProcSum(static_cast<size_t>(NumProcs), 0);
  std::vector<int64_t> PerRowMax(static_cast<size_t>(Chunk), 0);
  int64_t Total = 0, MaxTrip = 0;
  for (int64_t Iter = 0; Iter < K; ++Iter) {
    int64_t L = TripCounts[static_cast<size_t>(Iter)];
    assert(L >= 0 && "negative trip count");
    PerProcSum[static_cast<size_t>(OwnerOf(Iter))] += L;
    int64_t Row = LocalOf(Iter);
    PerRowMax[static_cast<size_t>(Row)] =
        std::max(PerRowMax[static_cast<size_t>(Row)], L);
    Total += L;
    MaxTrip = std::max(MaxTrip, L);
  }

  for (int64_t S : PerProcSum)
    E.FlattenedSteps = std::max(E.FlattenedSteps, S);
  for (int64_t M : PerRowMax)
    E.UnflattenedSteps += M;

  E.Speedup = E.FlattenedSteps == 0
                  ? 1.0
                  : static_cast<double>(E.UnflattenedSteps) /
                        static_cast<double>(E.FlattenedSteps);
  double Avg = static_cast<double>(Total) / static_cast<double>(K);
  E.MaxOverAvg = Avg == 0.0 ? 1.0 : static_cast<double>(MaxTrip) / Avg;
  return E;
}

ProfitEstimate analysis::estimateProfit(const TripDistribution &Dist,
                                        int64_t NumProcs,
                                        machine::Layout PartLayout) {
  return estimateProfit(Dist.trips(), NumProcs, PartLayout);
}

StrategyChoice analysis::chooseStrategy(const TripDistribution &Dist,
                                        int64_t NumProcs,
                                        machine::Layout PartLayout,
                                        const StrategyCosts &Costs) {
  assert(NumProcs >= 1 && "need at least one processor");
  StrategyChoice C;
  if (Dist.empty())
    return C; // Static default: Flattened, zero confidence.

  C.Estimate = estimateProfit(Dist, NumProcs, PartLayout);

  constexpr double Inf = std::numeric_limits<double>::infinity();
  double Unflat = static_cast<double>(C.Estimate.UnflattenedSteps);
  double Flat =
      static_cast<double>(C.Estimate.FlattenedSteps) * Costs.FlattenOverhead;

  // Coalesced: the executor is a perfectly balanced DOALL over the
  // total iteration space (ceil(total / P) steps) after an inspector
  // pass over the outer iterations. Exact sample counts are known even
  // for histogram inputs, so use them rather than the expansion.
  int64_t Outer = Dist.samples();
  int64_t Total = Dist.sum();
  double Coal = std::ceil(static_cast<double>(Total) /
                          static_cast<double>(NumProcs)) +
                Costs.CoalesceInspectorPerOuter *
                    static_cast<double>(Outer);
  bool CoalEligible = true;
  if (Costs.CoalesceMaxOuter > 0 && Outer > Costs.CoalesceMaxOuter)
    CoalEligible = false;
  if (Costs.CoalesceMaxTotal > 0 &&
      static_cast<double>(Total) >
          Costs.CoalesceTotalMargin *
              static_cast<double>(Costs.CoalesceMaxTotal))
    CoalEligible = false;
  if (!CoalEligible)
    Coal = Inf;

  C.Score[static_cast<size_t>(Strategy::Unflattened)] = Unflat;
  C.Score[static_cast<size_t>(Strategy::Flattened)] = Flat;
  C.Score[static_cast<size_t>(Strategy::Coalesced)] = Coal;

  // Stable ranking: sort by score, ties broken by the static pipeline's
  // historical preference order (Flattened, Unflattened, Coalesced).
  std::array<Strategy, 3> Order = {Strategy::Flattened,
                                   Strategy::Unflattened,
                                   Strategy::Coalesced};
  std::stable_sort(Order.begin(), Order.end(),
                   [&](Strategy A, Strategy B) {
                     return C.scoreOf(A) < C.scoreOf(B);
                   });
  C.Ranked = Order;
  C.Primary = Order[0];

  double Best = C.scoreOf(Order[0]);
  double Runner = C.scoreOf(Order[1]);
  if (std::isinf(Runner))
    C.Confidence = 1.0;
  else if (Runner <= 0.0)
    C.Confidence = 0.0;
  else
    C.Confidence = std::clamp((Runner - Best) / Runner, 0.0, 1.0);
  return C;
}

int64_t analysis::estimateMsimdSteps(std::span<const int64_t> TripCounts,
                                     int64_t NumProcs, int64_t Groups,
                                     machine::Layout PartLayout) {
  assert(Groups >= 1 && NumProcs >= Groups && NumProcs % Groups == 0 &&
         "lanes must split evenly into clusters");
  int64_t K = static_cast<int64_t>(TripCounts.size());
  if (K == 0)
    return 0;
  int64_t Chunk = (K + NumProcs - 1) / NumProcs;
  int64_t LanesPerGroup = NumProcs / Groups;
  auto OwnerOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter / Chunk
                                                : Iter % NumProcs;
  };
  auto LocalOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter % Chunk
                                                : Iter / NumProcs;
  };
  // PerGroupRowMax[g * Chunk + row] = max trip among the group's lanes
  // at that local row.
  std::vector<int64_t> PerGroupRowMax(
      static_cast<size_t>(Groups * Chunk), 0);
  for (int64_t Iter = 0; Iter < K; ++Iter) {
    int64_t G = OwnerOf(Iter) / LanesPerGroup;
    int64_t Row = LocalOf(Iter);
    int64_t &Slot = PerGroupRowMax[static_cast<size_t>(G * Chunk + Row)];
    Slot = std::max(Slot, TripCounts[static_cast<size_t>(Iter)]);
  }
  int64_t Worst = 0;
  for (int64_t G = 0; G < Groups; ++G) {
    int64_t Sum = 0;
    for (int64_t Row = 0; Row < Chunk; ++Row)
      Sum += PerGroupRowMax[static_cast<size_t>(G * Chunk + Row)];
    Worst = std::max(Worst, Sum);
  }
  return Worst;
}
