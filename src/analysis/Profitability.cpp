//===- analysis/Profitability.cpp -----------------------------*- C++ -*-===//

#include "analysis/Profitability.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace simdflat;
using namespace simdflat::analysis;

ProfitEstimate analysis::estimateProfit(std::span<const int64_t> TripCounts,
                                        int64_t NumProcs,
                                        machine::Layout PartLayout) {
  assert(NumProcs >= 1 && "need at least one processor");
  ProfitEstimate E;
  int64_t K = static_cast<int64_t>(TripCounts.size());
  if (K == 0)
    return E;

  // Owner of outer iteration k (0-based) and its local position.
  int64_t Chunk = (K + NumProcs - 1) / NumProcs;
  auto OwnerOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter / Chunk
                                                : Iter % NumProcs;
  };
  auto LocalOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter % Chunk
                                                : Iter / NumProcs;
  };

  std::vector<int64_t> PerProcSum(static_cast<size_t>(NumProcs), 0);
  std::vector<int64_t> PerRowMax(static_cast<size_t>(Chunk), 0);
  int64_t Total = 0, MaxTrip = 0;
  for (int64_t Iter = 0; Iter < K; ++Iter) {
    int64_t L = TripCounts[static_cast<size_t>(Iter)];
    assert(L >= 0 && "negative trip count");
    PerProcSum[static_cast<size_t>(OwnerOf(Iter))] += L;
    int64_t Row = LocalOf(Iter);
    PerRowMax[static_cast<size_t>(Row)] =
        std::max(PerRowMax[static_cast<size_t>(Row)], L);
    Total += L;
    MaxTrip = std::max(MaxTrip, L);
  }

  for (int64_t S : PerProcSum)
    E.FlattenedSteps = std::max(E.FlattenedSteps, S);
  for (int64_t M : PerRowMax)
    E.UnflattenedSteps += M;

  E.Speedup = E.FlattenedSteps == 0
                  ? 1.0
                  : static_cast<double>(E.UnflattenedSteps) /
                        static_cast<double>(E.FlattenedSteps);
  double Avg = static_cast<double>(Total) / static_cast<double>(K);
  E.MaxOverAvg = Avg == 0.0 ? 1.0 : static_cast<double>(MaxTrip) / Avg;
  return E;
}

int64_t analysis::estimateMsimdSteps(std::span<const int64_t> TripCounts,
                                     int64_t NumProcs, int64_t Groups,
                                     machine::Layout PartLayout) {
  assert(Groups >= 1 && NumProcs >= Groups && NumProcs % Groups == 0 &&
         "lanes must split evenly into clusters");
  int64_t K = static_cast<int64_t>(TripCounts.size());
  if (K == 0)
    return 0;
  int64_t Chunk = (K + NumProcs - 1) / NumProcs;
  int64_t LanesPerGroup = NumProcs / Groups;
  auto OwnerOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter / Chunk
                                                : Iter % NumProcs;
  };
  auto LocalOf = [&](int64_t Iter) {
    return PartLayout == machine::Layout::Block ? Iter % Chunk
                                                : Iter / NumProcs;
  };
  // PerGroupRowMax[g * Chunk + row] = max trip among the group's lanes
  // at that local row.
  std::vector<int64_t> PerGroupRowMax(
      static_cast<size_t>(Groups * Chunk), 0);
  for (int64_t Iter = 0; Iter < K; ++Iter) {
    int64_t G = OwnerOf(Iter) / LanesPerGroup;
    int64_t Row = LocalOf(Iter);
    int64_t &Slot = PerGroupRowMax[static_cast<size_t>(G * Chunk + Row)];
    Slot = std::max(Slot, TripCounts[static_cast<size_t>(Iter)]);
  }
  int64_t Worst = 0;
  for (int64_t G = 0; G < Groups; ++G) {
    int64_t Sum = 0;
    for (int64_t Row = 0; Row < Chunk; ++Row)
      Sum += PerGroupRowMax[static_cast<size_t>(G * Chunk + Row)];
    Worst = std::max(Worst, Sum);
  }
  return Worst;
}
