//===- analysis/LoopNests.h - Loop tree discovery --------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the loop tree of a program and classifies each nest the way
/// the flattener's applicability test does (Sec. 6: "applicability is
/// ensured whenever there are multiple loops fully contained in each
/// other ... easily derived from the abstract syntax tree"). Used by
/// `flattenc --analyze` and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_ANALYSIS_LOOPNESTS_H
#define SIMDFLAT_ANALYSIS_LOOPNESTS_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace simdflat {
namespace analysis {

/// One loop in the tree.
struct LoopNestNode {
  /// The loop statement (owned by the program).
  const ir::Stmt *Loop = nullptr;
  /// "DOALL", "DO", "WHILE" or "REPEAT".
  std::string Kind;
  /// Counted-loop index variable (empty otherwise).
  std::string IndexVar;
  bool Parallel = false;
  /// True if this loop's body has the flattenable [Pre..., child,
  /// Post...] shape: exactly one child loop and no other loops hiding in
  /// the straight-line code.
  bool FlattenableShape = false;
  std::vector<LoopNestNode> Children;

  /// Depth of the subtree rooted here (1 for a leaf loop).
  int depth() const;
};

/// Returns the roots of the program's loop tree.
std::vector<LoopNestNode> findLoopNests(const ir::Program &P);

/// Renders the tree as indented text, one loop per line, e.g.
/// `DOALL i [flattenable, depth 2]`.
std::string renderLoopNests(const std::vector<LoopNestNode> &Roots);

} // namespace analysis
} // namespace simdflat

#endif // SIMDFLAT_ANALYSIS_LOOPNESTS_H
