//===- analysis/Safety.h - Parallelizability checking ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative dependence checking for loop flattening (Sec. 6: "A
/// sufficient condition is that the loop into which we lift an inner
/// loop body can be parallelized"). Safety can come from user assertion
/// (a DOALL header) or from this analysis; the paper notes the same
/// technology parallelizing compilers use applies, so we implement the
/// standard conservative subset:
///
///  * every array assignment inside the loop must subscript its first
///    dimension with exactly the loop index variable (owner-computes
///    disjointness across iterations);
///  * an array that is written may only be read with the same
///    first-dimension subscript;
///  * scalars assigned inside the loop must be privatizable: they are
///    either inner-loop index variables or are assigned before being
///    read on every path (we check the simple syntactic case: assigned
///    at statement level before any use in the iteration).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_ANALYSIS_SAFETY_H
#define SIMDFLAT_ANALYSIS_SAFETY_H

#include "ir/Program.h"

#include <string>

namespace simdflat {
namespace analysis {

/// Outcome of the parallelizability check.
struct SafetyResult {
  bool Parallelizable = false;
  /// Human-readable reason when not parallelizable.
  std::string Reason;
};

/// Checks whether the iterations of \p Loop (a DO loop) can run in
/// parallel, conservatively.
SafetyResult checkParallelizable(const ir::DoStmt &Loop,
                                 const ir::Program &P);

} // namespace analysis
} // namespace simdflat

#endif // SIMDFLAT_ANALYSIS_SAFETY_H
