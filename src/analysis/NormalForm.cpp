//===- analysis/NormalForm.cpp --------------------------------*- C++ -*-===//

#include "analysis/NormalForm.h"

#include "analysis/SideEffects.h"
#include "ir/Walk.h"

#include <cassert>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

bool analysis::isLoopStmt(const Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Do:
  case Stmt::Kind::While:
  case Stmt::Kind::Repeat:
    return true;
  default:
    return false;
  }
}

std::optional<LoopNormalForm> analysis::normalFormOf(const Stmt &Loop,
                                                     const Program &P) {
  LoopNormalForm NF;
  switch (Loop.kind()) {
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(&Loop);
    int64_t Step = 1;
    if (D->step()) {
      const auto *Lit = dyn_cast<IntLit>(D->step());
      if (!Lit || Lit->value() == 0)
        return std::nullopt; // Sign of the step is unknown.
      Step = Lit->value();
    }
    const std::string &IV = D->indexVar();
    const VarDecl *IVDecl = P.lookupVar(IV);
    assert(IVDecl && "undeclared DO index");
    auto IVRef = [&] {
      return std::make_unique<VarRef>(IV, IVDecl->Kind);
    };
    // init: i = lo
    NF.Init.push_back(
        std::make_unique<AssignStmt>(IVRef(), cloneExpr(D->lo())));
    // test: i <= hi (or >= for negative step)
    NF.Test = std::make_unique<BinaryExpr>(
        Step > 0 ? BinOp::Le : BinOp::Ge, IVRef(), cloneExpr(D->hi()),
        ScalarKind::Bool);
    // increment: i = i + step
    NF.Increment.push_back(std::make_unique<AssignStmt>(
        IVRef(),
        std::make_unique<BinaryExpr>(BinOp::Add, IVRef(),
                                     std::make_unique<IntLit>(Step),
                                     ScalarKind::Int)));
    // done: i >= hi, unit step only (Sec. 4 condition 3).
    if (Step == 1)
      NF.Done = std::make_unique<BinaryExpr>(BinOp::Ge, IVRef(),
                                             cloneExpr(D->hi()),
                                             ScalarKind::Bool);
    NF.BodyStmts = cloneBody(D->body());
    NF.IndexVar = IV;
    // Provably >= 1 trip for constant bounds.
    const auto *LoLit = dyn_cast<IntLit>(&D->lo());
    const auto *HiLit = dyn_cast<IntLit>(&D->hi());
    if (LoLit && HiLit)
      NF.ProvablyMinOneTrip = Step > 0 ? LoLit->value() <= HiLit->value()
                                       : LoLit->value() >= HiLit->value();
    NF.ControlIsPure = !exprHasSideEffects(D->lo(), P) &&
                       !exprHasSideEffects(D->hi(), P);
    return NF;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&Loop);
    NF.Test = cloneExpr(W->cond());
    NF.BodyStmts = cloneBody(W->body());
    NF.ControlIsPure = !exprHasSideEffects(W->cond(), P);
    return NF;
  }
  case Stmt::Kind::Repeat: {
    const auto *R = cast<RepeatStmt>(&Loop);
    // Pre-test form of `REPEAT B UNTIL c` continues while .NOT. c; the
    // first test is skipped structurally (PostTest).
    NF.Test = std::make_unique<UnaryExpr>(
        UnOp::Not, cloneExpr(R->untilCond()), ScalarKind::Bool);
    NF.BodyStmts = cloneBody(R->body());
    NF.PostTest = true;
    NF.ProvablyMinOneTrip = true;
    NF.ControlIsPure = !exprHasSideEffects(R->untilCond(), P);
    return NF;
  }
  default:
    return std::nullopt;
  }
}
