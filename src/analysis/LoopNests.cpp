//===- analysis/LoopNests.cpp ---------------------------------*- C++ -*-===//

#include "analysis/LoopNests.h"

#include "analysis/NormalForm.h"
#include "ir/Walk.h"
#include "support/Format.h"

#include <algorithm>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

int LoopNestNode::depth() const {
  int D = 0;
  for (const LoopNestNode &C : Children)
    D = std::max(D, C.depth());
  return D + 1;
}

namespace {

void collectLoops(const Body &B, std::vector<LoopNestNode> &Out);

LoopNestNode makeNode(const Stmt &S) {
  LoopNestNode N;
  N.Loop = &S;
  const Body *LoopBody = nullptr;
  switch (S.kind()) {
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(&S);
    N.Kind = D->isParallel() ? "DOALL" : "DO";
    N.IndexVar = D->indexVar();
    N.Parallel = D->isParallel();
    LoopBody = &D->body();
    break;
  }
  case Stmt::Kind::While:
    N.Kind = "WHILE";
    LoopBody = &cast<WhileStmt>(&S)->body();
    break;
  case Stmt::Kind::Repeat:
    N.Kind = "REPEAT";
    LoopBody = &cast<RepeatStmt>(&S)->body();
    break;
  default:
    break;
  }
  if (LoopBody) {
    collectLoops(*LoopBody, N.Children);
    // The flattenable shape: exactly one child loop at the top level of
    // the body, and every loop in the body is that child (nothing
    // hiding inside IFs).
    size_t TopLevelLoops = 0;
    for (const StmtPtr &C : *LoopBody)
      TopLevelLoops += isLoopStmt(*C);
    N.FlattenableShape =
        TopLevelLoops == 1 && N.Children.size() == 1;
  }
  return N;
}

void collectLoops(const Body &B, std::vector<LoopNestNode> &Out) {
  for (const StmtPtr &SP : B) {
    const Stmt &S = *SP;
    switch (S.kind()) {
    case Stmt::Kind::Do:
    case Stmt::Kind::While:
    case Stmt::Kind::Repeat:
      Out.push_back(makeNode(S));
      break;
    case Stmt::Kind::If:
      collectLoops(cast<IfStmt>(&S)->thenBody(), Out);
      collectLoops(cast<IfStmt>(&S)->elseBody(), Out);
      break;
    case Stmt::Kind::Where:
      collectLoops(cast<WhereStmt>(&S)->thenBody(), Out);
      collectLoops(cast<WhereStmt>(&S)->elseBody(), Out);
      break;
    case Stmt::Kind::Forall:
      collectLoops(cast<ForallStmt>(&S)->body(), Out);
      break;
    default:
      break;
    }
  }
}

void render(const std::vector<LoopNestNode> &Nodes, int Indent,
            std::string &Out) {
  for (const LoopNestNode &N : Nodes) {
    Out += std::string(static_cast<size_t>(Indent) * 2, ' ');
    Out += N.Kind;
    if (!N.IndexVar.empty()) {
      Out += ' ';
      Out += N.IndexVar;
    }
    Out += formatf(" [depth %d%s]\n", N.depth(),
                   N.FlattenableShape ? ", flattenable shape" : "");
    render(N.Children, Indent + 1, Out);
  }
}

} // namespace

std::vector<LoopNestNode> analysis::findLoopNests(const Program &P) {
  std::vector<LoopNestNode> Roots;
  collectLoops(P.body(), Roots);
  return Roots;
}

std::string
analysis::renderLoopNests(const std::vector<LoopNestNode> &Roots) {
  std::string Out;
  render(Roots, 0, Out);
  return Out;
}
