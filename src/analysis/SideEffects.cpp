//===- analysis/SideEffects.cpp -------------------------------*- C++ -*-===//

#include "analysis/SideEffects.h"

#include "ir/Walk.h"

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

bool analysis::exprHasSideEffects(const Expr &E, const Program &P) {
  bool Impure = false;
  forEachExpr(E, [&](const Expr &Sub) {
    if (const auto *C = dyn_cast<CallExpr>(&Sub)) {
      const ExternDecl *D = P.lookupExtern(C->callee());
      if (!D || !D->Pure)
        Impure = true;
    }
  });
  return Impure;
}

bool analysis::bodyCallsImpure(const Body &B, const Program &P) {
  bool Impure = false;
  forEachStmt(B, [&](const Stmt &S) {
    if (const auto *C = dyn_cast<CallStmt>(&S)) {
      const ExternDecl *D = P.lookupExtern(C->callee());
      if (!D || !D->Pure)
        Impure = true;
    }
    forEachExprInStmt(S, [&](const Expr &E) {
      if (const auto *C = dyn_cast<CallExpr>(&E)) {
        const ExternDecl *D = P.lookupExtern(C->callee());
        if (!D || !D->Pure)
          Impure = true;
      }
    });
  });
  return Impure;
}

std::set<std::string> analysis::namesWritten(const Body &B) {
  std::set<std::string> Out;
  forEachStmt(B, [&](const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S)) {
      if (const auto *V = dyn_cast<VarRef>(&A->target()))
        Out.insert(V->name());
      else if (const auto *AR = dyn_cast<ArrayRef>(&A->target()))
        Out.insert(AR->name());
    } else if (const auto *D = dyn_cast<DoStmt>(&S)) {
      Out.insert(D->indexVar());
    } else if (const auto *F = dyn_cast<ForallStmt>(&S)) {
      Out.insert(F->indexVar());
    }
  });
  return Out;
}

std::set<std::string> analysis::namesRead(const Expr &E) {
  std::set<std::string> Out;
  forEachExpr(E, [&](const Expr &Sub) {
    if (const auto *V = dyn_cast<VarRef>(&Sub))
      Out.insert(V->name());
    else if (const auto *A = dyn_cast<ArrayRef>(&Sub))
      Out.insert(A->name());
  });
  return Out;
}

std::set<std::string> analysis::namesRead(const Body &B) {
  std::set<std::string> Out;
  forEachStmt(B, [&](const Stmt &S) {
    forEachExprInStmt(S, [&](const Expr &E) {
      if (const auto *V = dyn_cast<VarRef>(&E)) {
        Out.insert(V->name());
      } else if (const auto *A = dyn_cast<ArrayRef>(&E)) {
        // The array name itself counts as read only for loads; for an
        // assignment target only the subscripts are reads. forEachExpr
        // visits the target including its name; we cannot distinguish
        // here, so be conservative: count it as read.
        Out.insert(A->name());
      }
    });
  });
  return Out;
}
