//===- analysis/Profitability.h - Eq. 1/2 cost prediction ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicts the benefit of loop flattening from a vector of inner trip
/// counts, evaluating the paper's closed forms exactly:
///
///   TIME_MIMD = max_p  sum_i L_p^i          (Eq. 1, = flattened SIMD)
///   TIME_SIMD = sum_i  max_p L_p^i          (Eq. 2, unflattened SIMD)
///
/// Sec. 6: "we can relatively safely assume profitability whenever the
/// inner loop bounds may vary across the processors" - the predicted
/// speedup is bounded by max/avg of the trip counts, and degenerates to
/// 1 at zero variance.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_ANALYSIS_PROFITABILITY_H
#define SIMDFLAT_ANALYSIS_PROFITABILITY_H

#include "machine/Machine.h"

#include <cstdint>
#include <span>

namespace simdflat {
namespace analysis {

/// Step-count predictions for one workload/partitioning.
struct ProfitEstimate {
  /// Eq. 1: steps of the MIMD schedule == flattened SIMD schedule.
  int64_t FlattenedSteps = 0;
  /// Eq. 2: steps of the unflattened (SIMDized) schedule.
  int64_t UnflattenedSteps = 0;
  /// UnflattenedSteps / FlattenedSteps (1.0 when both are 0).
  double Speedup = 1.0;
  /// max_i L_i / avg_i L_i: the paper's upper bound on the speedup
  /// (Sec. 5.5: "the given Lu/Lf ratios are bounded by the
  /// pCntmax/pCntavg ratios").
  double MaxOverAvg = 1.0;
};

/// Evaluates Eq. 1 and Eq. 2 for outer iterations with inner trip counts
/// \p TripCounts distributed over \p NumProcs processors under
/// \p PartLayout. Processors with no iterations contribute 0.
ProfitEstimate estimateProfit(std::span<const int64_t> TripCounts,
                              int64_t NumProcs,
                              machine::Layout PartLayout);

/// Step count of an MSIMD machine (Philippsen & Tichy, cited in Sec. 7):
/// \p NumProcs lanes partitioned into \p Groups clusters, each with its
/// own program counter. Every cluster runs the *unflattened* schedule
/// over its own lanes (sum of within-cluster maxima); clusters proceed
/// independently, so the machine finishes after the slowest cluster.
/// Groups == 1 degenerates to Eq. 2 (pure SIMD); Groups == NumProcs to
/// Eq. 1 (MIMD). Lanes are clustered contiguously; \p NumProcs must be
/// divisible by \p Groups.
int64_t estimateMsimdSteps(std::span<const int64_t> TripCounts,
                           int64_t NumProcs, int64_t Groups,
                           machine::Layout PartLayout);

} // namespace analysis
} // namespace simdflat

#endif // SIMDFLAT_ANALYSIS_PROFITABILITY_H
