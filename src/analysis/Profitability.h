//===- analysis/Profitability.h - Eq. 1/2 cost prediction ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicts the benefit of loop flattening from a vector of inner trip
/// counts, evaluating the paper's closed forms exactly:
///
///   TIME_MIMD = max_p  sum_i L_p^i          (Eq. 1, = flattened SIMD)
///   TIME_SIMD = sum_i  max_p L_p^i          (Eq. 2, unflattened SIMD)
///
/// Sec. 6: "we can relatively safely assume profitability whenever the
/// inner loop bounds may vary across the processors" - the predicted
/// speedup is bounded by max/avg of the trip counts, and degenerates to
/// 1 at zero variance.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_ANALYSIS_PROFITABILITY_H
#define SIMDFLAT_ANALYSIS_PROFITABILITY_H

#include "interp/RunStats.h"
#include "machine/Machine.h"

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace simdflat {
namespace analysis {

/// Step-count predictions for one workload/partitioning.
struct ProfitEstimate {
  /// Eq. 1: steps of the MIMD schedule == flattened SIMD schedule.
  int64_t FlattenedSteps = 0;
  /// Eq. 2: steps of the unflattened (SIMDized) schedule.
  int64_t UnflattenedSteps = 0;
  /// UnflattenedSteps / FlattenedSteps (1.0 when both are 0).
  double Speedup = 1.0;
  /// max_i L_i / avg_i L_i: the paper's upper bound on the speedup
  /// (Sec. 5.5: "the given Lu/Lf ratios are bounded by the
  /// pCntmax/pCntavg ratios").
  double MaxOverAvg = 1.0;
};

/// One view over "how do the inner trip counts look": either an exact
/// span of per-outer-iteration trips (the static callers' shape) or a
/// compact interp::TripHistogram observed by a live run. The histogram
/// form expands into a deterministic representative trip vector (exact
/// small counts verbatim, log2 buckets at their midpoints, downsampled
/// proportionally past a fixed cap) so the Eq. 1/2 evaluation below
/// runs on the identical code path either way.
class TripDistribution {
public:
  /// Exact per-iteration view. The span must outlive the distribution.
  explicit TripDistribution(std::span<const int64_t> TripCounts);
  /// Expands \p H into representative trips (see expandCap()).
  explicit TripDistribution(const interp::TripHistogram &H);

  std::span<const int64_t> trips() const {
    return Owned.empty() ? View : std::span<const int64_t>(Owned);
  }
  int64_t samples() const { return Samples; }
  /// Exact sum/max of the underlying data (not of the expansion).
  int64_t sum() const { return Sum; }
  int64_t max() const { return Max; }
  double mean() const {
    return Samples == 0 ? 0.0
                        : static_cast<double>(Sum) /
                              static_cast<double>(Samples);
  }
  bool empty() const { return Samples == 0; }

  /// Histogram expansions are capped at this many representative
  /// entries; larger sample counts are downsampled proportionally
  /// (every occupied bucket keeps at least one entry, so outliers
  /// survive the cap).
  static constexpr int64_t ExpandCap = 1024;

private:
  std::span<const int64_t> View;
  std::vector<int64_t> Owned;
  int64_t Samples = 0;
  int64_t Sum = 0;
  int64_t Max = 0;
};

/// The three loop-nest builds the pipeline can produce.
enum class Strategy {
  /// Plain SIMDization: inner loops stay nested (Eq. 2 cost).
  Unflattened,
  /// Paper's loop flattening (Eq. 1 cost plus per-step guard overhead).
  Flattened,
  /// Inspector/executor coalescing: one DOALL over the total iteration
  /// space (perfect balance, but inspector setup cost and static
  /// bounds).
  Coalesced,
};

inline const char *strategyName(Strategy S) {
  switch (S) {
  case Strategy::Unflattened:
    return "unflattened";
  case Strategy::Flattened:
    return "flattened";
  case Strategy::Coalesced:
    return "coalesced";
  }
  return "flattened";
}

inline bool strategyFromName(const std::string &Name, Strategy &Out) {
  if (Name == "unflattened") {
    Out = Strategy::Unflattened;
    return true;
  }
  if (Name == "flattened") {
    Out = Strategy::Flattened;
    return true;
  }
  if (Name == "coalesced") {
    Out = Strategy::Coalesced;
    return true;
  }
  return false;
}

/// Tunable cost-model constants for chooseStrategy. Defaults are
/// deliberately round numbers pinned by golden tests - change them and
/// the deterministic StrategyChoice goldens change with them.
struct StrategyCosts {
  /// Multiplier on the flattened schedule's steps: the price of the
  /// per-iteration switch/guard the flattening transform introduces.
  double FlattenOverhead = 1.25;
  /// Inspector cost per outer iteration (prefix-sum pass) charged to
  /// the coalesced schedule.
  double CoalesceInspectorPerOuter = 2.0;
  /// Coalescing is structurally bounded (statically dimensioned
  /// inspector arrays): it is ineligible when the observed outer count
  /// exceeds MaxOuter or the observed total exceeds MaxTotal. Zero
  /// disables the bound.
  int64_t CoalesceMaxOuter = 0;
  int64_t CoalesceMaxTotal = 0;
  /// Safety margin on the total bound: totals above
  /// Margin * CoalesceMaxTotal are ineligible even if they currently
  /// fit, so drift toward the trap boundary disqualifies coalescing
  /// before it traps.
  double CoalesceTotalMargin = 0.75;
};

/// The ranked verdict for one nest. Deterministic: the same
/// distribution, processor count, layout and costs always produce the
/// same ranking (ties break toward Flattened, then Unflattened, then
/// Coalesced - the static pipeline's historical order).
struct StrategyChoice {
  /// Ranked[0], the strategy to build.
  Strategy Primary = Strategy::Flattened;
  /// All three strategies, best model cost first.
  std::array<Strategy, 3> Ranked = {Strategy::Flattened,
                                    Strategy::Unflattened,
                                    Strategy::Coalesced};
  /// Model step cost per strategy, indexed by static_cast<int>(S).
  /// Ineligible strategies carry an infinite score.
  std::array<double, 3> Score = {0.0, 0.0, 0.0};
  /// Relative margin of the winner over the runner-up in [0, 1]:
  /// (runnerUp - best) / runnerUp. 0 means a coin flip (or an empty
  /// distribution, where the static default wins by fiat).
  double Confidence = 0.0;
  /// The Eq. 1/2 numbers the scores were derived from.
  ProfitEstimate Estimate;

  double scoreOf(Strategy S) const {
    return Score[static_cast<size_t>(S)];
  }
};

/// Evaluates Eq. 1 and Eq. 2 for outer iterations with inner trip counts
/// \p TripCounts distributed over \p NumProcs processors under
/// \p PartLayout. Processors with no iterations contribute 0.
ProfitEstimate estimateProfit(std::span<const int64_t> TripCounts,
                              int64_t NumProcs,
                              machine::Layout PartLayout);

/// Distribution overload: evaluates the same closed forms on the
/// distribution's (possibly expanded) trip view.
ProfitEstimate estimateProfit(const TripDistribution &Dist, int64_t NumProcs,
                              machine::Layout PartLayout);

/// Ranks the three strategies for a nest whose inner trips follow
/// \p Dist on \p NumProcs lanes. Deterministic (goldens pin it). An
/// empty distribution returns the static default (Flattened primary,
/// zero confidence).
StrategyChoice chooseStrategy(const TripDistribution &Dist, int64_t NumProcs,
                              machine::Layout PartLayout,
                              const StrategyCosts &Costs = {});

/// The profiled nest whose trip distribution drives a strategy
/// decision: the deepest one with samples (its per-activation trips
/// are the inner lengths the Eq. 1/2 evaluation consumes). Ties break
/// by sample count, then name, for determinism. Null when nothing was
/// profiled.
const interp::NestTripStats *
dominantTripNest(const std::vector<interp::NestTripStats> &Nests);

/// Step count of an MSIMD machine (Philippsen & Tichy, cited in Sec. 7):
/// \p NumProcs lanes partitioned into \p Groups clusters, each with its
/// own program counter. Every cluster runs the *unflattened* schedule
/// over its own lanes (sum of within-cluster maxima); clusters proceed
/// independently, so the machine finishes after the slowest cluster.
/// Groups == 1 degenerates to Eq. 2 (pure SIMD); Groups == NumProcs to
/// Eq. 1 (MIMD). Lanes are clustered contiguously; \p NumProcs must be
/// divisible by \p Groups.
int64_t estimateMsimdSteps(std::span<const int64_t> TripCounts,
                           int64_t NumProcs, int64_t Groups,
                           machine::Layout PartLayout);

} // namespace analysis
} // namespace simdflat

#endif // SIMDFLAT_ANALYSIS_PROFITABILITY_H
