//===- md/NBForce.h - Nonbonded force kernels (Sec. 5) ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR builders for the GROMOS nonbonded-force kernel of Sec. 5 and the
/// runtime pieces the experiments need.
///
/// Program variants (all use arrays dimensioned for NMax atoms, filled
/// for the actual nAtoms, exactly like the paper's "provision for
/// maximal problem sizes"):
///
///  * nbforceF77 - Fig. 13, the F77(D) source with a DOALL over atoms.
///    Feed it to transform::flattenNest + transform::simdize to derive
///    the Fig. 15 flattened SIMD version automatically, or to
///    transform::simdize alone for the Fig. 14 unflattened version.
///  * nbforceL1u / nbforceL2u - the two hand-tuned unflattened variants
///    the paper measures (Sec. 5.3): L1u restricts work to the active
///    memory layers 1:Lrs (paying a per-layer activity check, modeled by
///    the LayerCheck extern whose cost the harness sets), L2u sweeps all
///    maxLrs declared layers. The `sweep` control variable selects how
///    many atoms-slots each pr iteration touches; on a machine whose
///    virtual-processor model cannot prune (the CM-2), the harness sets
///    L1u's sweep to NMax as well.
///
/// The `Force(a1, a2)` extern computes a Lennard-Jones + Coulomb pair
/// force magnitude from the molecule's coordinates; its cycle cost is
/// the machine-calibrated dominant term (Sec. 5.1: the kernel is ~90% of
/// simulation cost).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_MD_NBFORCE_H
#define SIMDFLAT_MD_NBFORCE_H

#include "interp/Extern.h"
#include "interp/Store.h"
#include "ir/Program.h"
#include "machine/Machine.h"
#include "md/PairList.h"

namespace simdflat {
namespace md {

/// Fig. 13: the sequential F77 kernel with a parallelizable outer loop.
///
/// \code
///   DOALL at1 = 1, nAtoms
///     DO pr = 1, pCnt(at1)
///       at2 = partners(at1, pr)
///       F(at1) = F(at1) + Force(at1, at2)
///     ENDDO
///   ENDDO
/// \endcode
ir::Program nbforceF77(int64_t NMax, int64_t MaxPCnt);

/// The unflattened layer-explicit SIMD variants (Sec. 5.3). Control
/// inputs at run time: `nAtoms`, `sweep` (how many atom slots each pr
/// iteration processes: N for a pruning machine's L1u, NMax otherwise).
/// L1u additionally calls `LayerCheck()` once per pr iteration; bind its
/// cost to Costs.LayerCheck * layers swept.
ir::Program nbforceL1u(int64_t NMax, int64_t MaxPCnt);
ir::Program nbforceL2u(int64_t NMax, int64_t MaxPCnt);

/// Derives the flattened SIMD kernel (Fig. 15) from nbforceF77 via
/// flattenNest(DoneTest, min-one-trip) + simdize under \p Layout.
ir::Program nbforceFlattenedSimd(int64_t NMax, int64_t MaxPCnt,
                                 machine::Layout Layout);

/// Derives the Fig. 14 unflattened SIMD kernel from nbforceF77 via
/// simdize under \p Layout.
ir::Program nbforceUnflattenedSimd(int64_t NMax, int64_t MaxPCnt,
                                   machine::Layout Layout);

/// Binds the `Force` extern (LJ + Coulomb magnitude over \p Mol, zero
/// for self-pairs) at \p ForceCost cycles per vector call, and the
/// `LayerCheck` extern at \p LayerCheckCost cycles. The molecule must
/// outlive the registry.
void bindForceExterns(interp::ExternRegistry &Reg, const Molecule &Mol,
                      double ForceCost, double LayerCheckCost);

/// Computes the scalar LJ + Coulomb pair force magnitude between
/// 1-based atoms \p A1 and \p A2 (0 for self-pairs); exposed for tests
/// and the native-engine comparison.
double pairForce(const Molecule &Mol, int64_t A1, int64_t A2);

/// Fills a store with the kernel inputs: nAtoms, pCnt, partners (and
/// sweep if the variable exists).
void setNBForceInputs(interp::DataStore &Store, const PairList &PL,
                      int64_t NMax, int64_t MaxPCnt, int64_t SweepAtoms);

} // namespace md
} // namespace simdflat

#endif // SIMDFLAT_MD_NBFORCE_H
