//===- md/Molecule.cpp ----------------------------------------*- C++ -*-===//

#include "md/Molecule.h"

#include "support/Random.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

using namespace simdflat;
using namespace simdflat::md;

double Molecule::dist2(int64_t I, int64_t J) const {
  const Atom &A = atom(I), &B = atom(J);
  double DX = A.X - B.X, DY = A.Y - B.Y, DZ = A.Z - B.Z;
  return DX * DX + DY * DY + DZ * DZ;
}

namespace {

/// Hash grid used for the excluded-volume checks while growing a chain.
class ExclusionGrid {
public:
  explicit ExclusionGrid(double Cell) : Cell(Cell) {}

  void insert(double X, double Y, double Z) {
    Points.push_back({X, Y, Z});
    Cells[keyOf(X, Y, Z)].push_back(Points.size() - 1);
  }

  /// Squared distance from (X,Y,Z) to the nearest inserted point,
  /// considering the 27 surrounding cells (exact for distances < Cell).
  double nearest2(double X, double Y, double Z) const {
    double Best = std::numeric_limits<double>::infinity();
    int64_t CX = coord(X), CY = coord(Y), CZ = coord(Z);
    for (int64_t DX = -1; DX <= 1; ++DX)
      for (int64_t DY = -1; DY <= 1; ++DY)
        for (int64_t DZ = -1; DZ <= 1; ++DZ) {
          auto It = Cells.find(key(CX + DX, CY + DY, CZ + DZ));
          if (It == Cells.end())
            continue;
          for (size_t Idx : It->second) {
            const P &Q = Points[Idx];
            double Dx = Q.X - X, Dy = Q.Y - Y, Dz = Q.Z - Z;
            Best = std::min(Best, Dx * Dx + Dy * Dy + Dz * Dz);
          }
        }
    return Best;
  }

private:
  struct P {
    double X, Y, Z;
  };
  double Cell;
  std::vector<P> Points;
  std::unordered_map<int64_t, std::vector<size_t>> Cells;

  int64_t coord(double V) const {
    return static_cast<int64_t>(std::floor(V / Cell));
  }
  static int64_t key(int64_t X, int64_t Y, int64_t Z) {
    // Pack three 21-bit signed coordinates.
    auto M = [](int64_t V) { return (V + (1 << 20)) & 0x1FFFFF; };
    return (M(X) << 42) | (M(Y) << 21) | M(Z);
  }
  int64_t keyOf(double X, double Y, double Z) const {
    return key(coord(X), coord(Y), coord(Z));
  }
};

/// Generates one globular subunit: a bond-length chain confined to a
/// sphere of radius \p Radius around (CX, 0, 0), with excluded-volume
/// rejection so the fill is protein-like rather than clumpy. The chain
/// folds back toward the center when it hits the surface.
void growSubunit(Rng &R, std::vector<Atom> &Out, int64_t Count,
                 double Radius, const SodParams &Par, double CX) {
  ExclusionGrid Grid(std::max(Par.MinSeparation, 1.0));
  double X = CX, Y = 0.0, Z = 0.0;
  double Min2 = Par.MinSeparation * Par.MinSeparation;
  for (int64_t I = 0; I < Count; ++I) {
    Atom A;
    A.X = X;
    A.Y = Y;
    A.Z = Z;
    A.Charge = (I % 3 == 0) ? 0.2 : ((I % 3 == 1) ? -0.15 : -0.05);
    Out.push_back(A);
    // The grid intentionally excludes the current chain head: proposals
    // are one bond away from it by construction, and including it would
    // make every proposal look like a separation violation.

    double BestX = X, BestY = Y, BestZ = Z, BestScore = -1.0;
    for (int T = 0; T < Par.MaxTries; ++T) {
      // Uniform random direction.
      double DX, DY, DZ, Norm2;
      do {
        DX = R.uniformReal(-1.0, 1.0);
        DY = R.uniformReal(-1.0, 1.0);
        DZ = R.uniformReal(-1.0, 1.0);
        Norm2 = DX * DX + DY * DY + DZ * DZ;
      } while (Norm2 > 1.0 || Norm2 < 1e-6);
      double Scale = Par.BondLength / std::sqrt(Norm2);
      double NX = X + DX * Scale, NY = Y + DY * Scale, NZ = Z + DZ * Scale;
      // Stay inside the subunit sphere.
      double RX = NX - CX;
      if (RX * RX + NY * NY + NZ * NZ > Radius * Radius)
        continue;
      double Sep2 = Grid.nearest2(NX, NY, NZ);
      if (Sep2 >= Min2) {
        BestX = NX;
        BestY = NY;
        BestZ = NZ;
        BestScore = Sep2;
        break;
      }
      if (Sep2 > BestScore) {
        BestScore = Sep2;
        BestX = NX;
        BestY = NY;
        BestZ = NZ;
      }
    }
    if (BestScore < 0.0) {
      // Every proposal left the sphere: fold straight back inward.
      double OX = X - CX;
      double ONorm = std::sqrt(OX * OX + Y * Y + Z * Z);
      if (ONorm < 1e-9) {
        BestX = X + Par.BondLength;
        BestY = Y;
        BestZ = Z;
      } else {
        BestX = X - OX / ONorm * Par.BondLength;
        BestY = Y - Y / ONorm * Par.BondLength;
        BestZ = Z - Z / ONorm * Par.BondLength;
      }
    }
    Grid.insert(X, Y, Z);
    X = BestX;
    Y = BestY;
    Z = BestZ;
  }
}

} // namespace

Molecule Molecule::syntheticSOD(SodParams Params) {
  assert(Params.NumAtoms >= 2 && "molecule too small");
  Rng R(Params.Seed);
  int64_t Half = Params.NumAtoms / 2;
  // Subunit radius from the target density: (3V / 4pi)^(1/3).
  double Volume = static_cast<double>(Half) / Params.Density;
  double Radius = std::cbrt(3.0 * Volume / (4.0 * M_PI));
  std::vector<Atom> Atoms;
  Atoms.reserve(static_cast<size_t>(Params.NumAtoms));
  // Two touching subunits along the x axis (the dimer interface).
  growSubunit(R, Atoms, Half, Radius, Params, -Radius * 0.95);
  growSubunit(R, Atoms, Params.NumAtoms - Half, Radius, Params,
              Radius * 0.95);
  return Molecule(std::move(Atoms));
}
