//===- md/NBForce.cpp -----------------------------------------*- C++ -*-===//

#include "md/NBForce.h"

#include "ir/Builder.h"
#include "support/Error.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"

#include <cassert>
#include <cmath>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::md;

ir::Program md::nbforceF77(int64_t NMax, int64_t MaxPCnt) {
  Program P("NBFORCE");
  P.addVar("nAtoms", ScalarKind::Int);
  P.addVar("at1", ScalarKind::Int);
  P.addVar("at2", ScalarKind::Int);
  P.addVar("pr", ScalarKind::Int);
  P.addVar("pCnt", ScalarKind::Int, {NMax}, Dist::Distributed);
  P.addVar("partners", ScalarKind::Int, {NMax, MaxPCnt}, Dist::Distributed);
  P.addVar("F", ScalarKind::Real, {NMax}, Dist::Distributed);
  P.addExtern("Force", ScalarKind::Real, /*Pure=*/true);
  Builder B(P);

  std::vector<ExprPtr> ForceArgs;
  ForceArgs.push_back(B.var("at1"));
  ForceArgs.push_back(B.var("at2"));
  Body Inner = Builder::body(
      B.set("at2", B.at("partners", B.var("at1"), B.var("pr"))),
      B.assign(B.at("F", B.var("at1")),
               B.add(B.at("F", B.var("at1")),
                     B.callFn("Force", std::move(ForceArgs)))));

  Body Outer = Builder::body(
      B.doLoop("pr", B.lit(1), B.at("pCnt", B.var("at1")),
               std::move(Inner)));
  P.body().push_back(B.doLoop("at1", B.lit(1), B.var("nAtoms"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));
  return P;
}

/// Shared scaffold for the two hand-tuned unflattened variants.
static Program makeLayered(const char *Name, int64_t NMax, int64_t MaxPCnt,
                           bool WithLayerCheck) {
  Program P(Name);
  P.setDialect(Dialect::F90Simd);
  P.addVar("nAtoms", ScalarKind::Int);
  P.addVar("sweep", ScalarKind::Int);
  P.addVar("maxP", ScalarKind::Int);
  P.addVar("pr", ScalarKind::Int);
  P.addVar("a", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("pCnt", ScalarKind::Int, {NMax}, Dist::Distributed);
  P.addVar("partners", ScalarKind::Int, {NMax, MaxPCnt}, Dist::Distributed);
  P.addVar("F", ScalarKind::Real, {NMax}, Dist::Distributed);
  P.addExtern("Force", ScalarKind::Real, /*Pure=*/true);
  P.addExtern("LayerCheck", ScalarKind::Int, /*Pure=*/true,
              /*IsSubroutine=*/true);
  Builder B(P);

  std::vector<ExprPtr> ForceArgs;
  ForceArgs.push_back(B.var("a"));
  ForceArgs.push_back(B.at("partners", B.var("a"), B.var("pr")));
  Body ForallBody = Builder::body(
      B.assign(B.at("F", B.var("a")),
               B.add(B.at("F", B.var("a")),
                     B.callFn("Force", std::move(ForceArgs)))));
  StmtPtr Sweep = B.forall(
      "a", B.lit(1), B.var("sweep"),
      B.le(B.var("pr"), B.at("pCnt", B.var("a"))), std::move(ForallBody));

  Body PrBody;
  if (WithLayerCheck)
    PrBody.push_back(B.callSub("LayerCheck", {}));
  PrBody.push_back(std::move(Sweep));

  P.body().push_back(B.set("maxP", B.maxVal("pCnt")));
  P.body().push_back(
      B.doLoop("pr", B.lit(1), B.var("maxP"), std::move(PrBody)));
  return P;
}

ir::Program md::nbforceL1u(int64_t NMax, int64_t MaxPCnt) {
  return makeLayered("NBFORCE_L1U", NMax, MaxPCnt, /*WithLayerCheck=*/true);
}

ir::Program md::nbforceL2u(int64_t NMax, int64_t MaxPCnt) {
  return makeLayered("NBFORCE_L2U", NMax, MaxPCnt, /*WithLayerCheck=*/false);
}

ir::Program md::nbforceFlattenedSimd(int64_t NMax, int64_t MaxPCnt,
                                     machine::Layout Layout) {
  Program F77 = nbforceF77(NMax, MaxPCnt);
  transform::FlattenOptions FOpts;
  FOpts.AssumeInnerMinOneTrip = true; // pCnt(i) >= 1 (Fig. 15 caption)
  FOpts.DistributeOuter = Layout;
  transform::FlattenResult FR = transform::flattenNest(F77, FOpts);
  if (!FR.Changed)
    reportFatalError("nbforce: flattening failed: " + FR.Reason);
  transform::SimdizeOptions SOpts;
  SOpts.DoAllLayout = Layout;
  Program Simd = transform::simdize(F77, SOpts);
  Simd.setName("NBFORCE_FLAT");
  return Simd;
}

ir::Program md::nbforceUnflattenedSimd(int64_t NMax, int64_t MaxPCnt,
                                       machine::Layout Layout) {
  Program F77 = nbforceF77(NMax, MaxPCnt);
  transform::SimdizeOptions SOpts;
  SOpts.DoAllLayout = Layout;
  Program Simd = transform::simdize(F77, SOpts);
  Simd.setName("NBFORCE_UNFLAT");
  return Simd;
}

double md::pairForce(const Molecule &Mol, int64_t A1, int64_t A2) {
  if (A1 == A2)
    return 0.0; // self-pair padding (ensureMinOnePartner)
  assert(A1 >= 1 && A1 <= Mol.size() && A2 >= 1 && A2 <= Mol.size() &&
         "atom id out of range");
  double R2 = Mol.dist2(A1 - 1, A2 - 1);
  if (R2 < 0.25)
    R2 = 0.25; // clamp chain-bonded contacts
  const double Sigma2 = 3.0 * 3.0;
  const double Eps = 0.2;
  double S2 = Sigma2 / R2;
  double S6 = S2 * S2 * S2;
  double R = std::sqrt(R2);
  double LJ = 24.0 * Eps * (2.0 * S6 * S6 - S6) / R;
  double Q1 = Mol.atom(A1 - 1).Charge, Q2 = Mol.atom(A2 - 1).Charge;
  double Coulomb = 332.0636 * Q1 * Q2 / R2;
  return LJ + Coulomb;
}

void md::bindForceExterns(interp::ExternRegistry &Reg, const Molecule &Mol,
                          double ForceCost, double LayerCheckCost) {
  Reg.bind("Force",
           [&Mol](std::span<const interp::ScalVal> Args) {
             assert(Args.size() == 2 && "Force takes two atom ids");
             return interp::ScalVal::makeReal(
                 pairForce(Mol, Args[0].I, Args[1].I));
           },
           ForceCost);
  Reg.bind("LayerCheck",
           [](std::span<const interp::ScalVal>) {
             return interp::ScalVal::makeInt(0);
           },
           LayerCheckCost);
}

void md::setNBForceInputs(interp::DataStore &Store, const PairList &PL,
                          int64_t NMax, int64_t MaxPCnt,
                          int64_t SweepAtoms) {
  Store.setInt("nAtoms", PL.numAtoms());
  Store.setIntArray("pCnt", PL.paddedPCnt(NMax));
  Store.setIntArray("partners", PL.rectangularPartners(NMax, MaxPCnt));
  if (Store.program().lookupVar("sweep"))
    Store.setInt("sweep", SweepAtoms);
}
