//===- md/Molecule.h - Synthetic protein geometry --------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stand-in for the paper's test molecule: bovine superoxide dismutase
/// (SOD), N = 6968 atoms, "a catalytic enzyme composed of two identical
/// subunits" (Sec. 5.4). The original pairlist data came from GROMOS
/// and is not available, so we synthesize a geometrically comparable
/// molecule: two touching globular subunits, each a bond-length chain
/// compacted into a sphere at protein-like atom density. Atom indices
/// follow the chain, giving the index-space locality a real PDB file has
/// - which is what makes the j > i half-counted pairlist's max/avg
/// ratio land in the paper's 2.6-3.3 band (Fig. 18).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_MD_MOLECULE_H
#define SIMDFLAT_MD_MOLECULE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simdflat {
namespace md {

/// One atom position (Angstroms) and partial charge.
struct Atom {
  double X = 0.0, Y = 0.0, Z = 0.0;
  double Charge = 0.0;
};

/// Parameters of the synthetic SOD surrogate.
struct SodParams {
  int64_t NumAtoms = 6968; ///< Sec. 5.4
  uint64_t Seed = 1992;
  /// Target mean atom density (atoms per cubic Angstrom). Calibrated so
  /// the pairs-per-atom curve tracks the paper's Fig. 18 (avg ~11/75/
  /// 216/437 vs the paper's ~10/80/243/510 at 4/8/12/16 A; max at 16 A
  /// 1525 vs 1504).
  double Density = 0.085;
  /// Chain step length (Angstroms); protein-bond-like.
  double BondLength = 1.4;
  /// Excluded-volume radius: proposed steps landing closer than this to
  /// an existing atom are rejected (approximate self-avoidance). Keeps
  /// the local density protein-like instead of random-walk-clumpy.
  double MinSeparation = 2.4;
  /// Direction proposals per step before accepting the best rejected
  /// candidate (prevents deadlock when the sphere fills up).
  int MaxTries = 30;
};

/// An immutable collection of atoms.
class Molecule {
public:
  explicit Molecule(std::vector<Atom> Atoms) : Atoms(std::move(Atoms)) {}

  int64_t size() const { return static_cast<int64_t>(Atoms.size()); }
  const Atom &atom(int64_t I) const {
    return Atoms[static_cast<size_t>(I)];
  }
  const std::vector<Atom> &atoms() const { return Atoms; }

  /// Squared distance between atoms \p I and \p J.
  double dist2(int64_t I, int64_t J) const;

  /// Builds the two-subunit synthetic SOD molecule.
  static Molecule syntheticSOD(SodParams Params = SodParams());

private:
  std::vector<Atom> Atoms;
};

} // namespace md
} // namespace simdflat

#endif // SIMDFLAT_MD_MOLECULE_H
