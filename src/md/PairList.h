//===- md/PairList.h - Cutoff neighbor lists -------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GROMOS-style nonbonded pairlist of Sec. 5.1: "for atom i, the
/// atoms close enough to i are precomputed into an array
/// partners(i, 1:pCnt(i))". Pairs are half-counted (each pair appears
/// once, on its lower-index atom), so pCnt's max/avg ratio reflects both
/// geometry and index order - the quantity Fig. 18 plots. Built with a
/// cell list (O(N) for fixed cutoff); verified against the brute-force
/// O(N^2) build in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_MD_PAIRLIST_H
#define SIMDFLAT_MD_PAIRLIST_H

#include "md/Molecule.h"

namespace simdflat {
namespace md {

/// A half-counted neighbor list.
struct PairList {
  /// Per atom: number of partners j > i within the cutoff.
  std::vector<int64_t> PCnt;
  /// Flattened partners: entries Offsets[i] .. Offsets[i] + PCnt[i] - 1.
  std::vector<int64_t> Partners;
  /// Prefix offsets into Partners (size N + 1).
  std::vector<int64_t> Offsets;

  int64_t numAtoms() const { return static_cast<int64_t>(PCnt.size()); }
  /// Total pair count.
  int64_t total() const { return Offsets.empty() ? 0 : Offsets.back(); }
  int64_t maxPCnt() const;
  double avgPCnt() const;
  /// 1-based partner \p K (1..PCnt[i]) of 0-based atom \p I.
  int64_t partner(int64_t I, int64_t K) const {
    return Partners[static_cast<size_t>(Offsets[static_cast<size_t>(I)] +
                                        K - 1)];
  }

  /// Gives every atom at least one partner by adding a self-pair where
  /// pCnt would be zero (the force routine returns 0 for self-pairs).
  /// The paper's Fig. 15 kernel "takes into account that pCnt(i) >= 1
  /// for all i"; GROMOS guarantees this, a raw half-counted list does
  /// not (the last atom has no higher-index partner). Returns the
  /// number of atoms padded.
  int64_t ensureMinOnePartner();

  /// Rectangular (NMax x MaxPCnt) row-major padding of Partners for the
  /// Fortran `partners` array; missing entries are 0.
  std::vector<int64_t> rectangularPartners(int64_t NMax,
                                           int64_t MaxPCnt) const;
  /// pCnt padded with zeros to NMax entries.
  std::vector<int64_t> paddedPCnt(int64_t NMax) const;
};

/// Builds the pairlist with a cell list of cell size \p CutoffAngstrom.
PairList buildPairList(const Molecule &Mol, double CutoffAngstrom);

/// Reference O(N^2) build for verification.
PairList buildPairListBruteForce(const Molecule &Mol,
                                 double CutoffAngstrom);

} // namespace md
} // namespace simdflat

#endif // SIMDFLAT_MD_PAIRLIST_H
