//===- md/PairList.cpp ----------------------------------------*- C++ -*-===//

#include "md/PairList.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace simdflat;
using namespace simdflat::md;

int64_t PairList::maxPCnt() const {
  int64_t M = 0;
  for (int64_t C : PCnt)
    M = std::max(M, C);
  return M;
}

double PairList::avgPCnt() const {
  if (PCnt.empty())
    return 0.0;
  return static_cast<double>(total()) / static_cast<double>(PCnt.size());
}

int64_t PairList::ensureMinOnePartner() {
  int64_t Padded = 0;
  std::vector<int64_t> NewPartners;
  std::vector<int64_t> NewOffsets(1, 0);
  NewPartners.reserve(Partners.size() + 16);
  for (int64_t I = 0; I < numAtoms(); ++I) {
    if (PCnt[static_cast<size_t>(I)] == 0) {
      NewPartners.push_back(I + 1); // self-pair (1-based)
      PCnt[static_cast<size_t>(I)] = 1;
      ++Padded;
    } else {
      for (int64_t K = 1; K <= PCnt[static_cast<size_t>(I)]; ++K)
        NewPartners.push_back(partner(I, K));
    }
    NewOffsets.push_back(static_cast<int64_t>(NewPartners.size()));
  }
  Partners = std::move(NewPartners);
  Offsets = std::move(NewOffsets);
  return Padded;
}

std::vector<int64_t> PairList::rectangularPartners(int64_t NMax,
                                                   int64_t MaxPCnt) const {
  assert(NMax >= numAtoms() && "NMax smaller than the molecule");
  assert(MaxPCnt >= maxPCnt() && "MaxPCnt smaller than the largest row");
  std::vector<int64_t> Out(static_cast<size_t>(NMax * MaxPCnt), 0);
  for (int64_t I = 0; I < numAtoms(); ++I)
    for (int64_t K = 1; K <= PCnt[static_cast<size_t>(I)]; ++K)
      Out[static_cast<size_t>(I * MaxPCnt + (K - 1))] = partner(I, K);
  return Out;
}

std::vector<int64_t> PairList::paddedPCnt(int64_t NMax) const {
  assert(NMax >= numAtoms() && "NMax smaller than the molecule");
  std::vector<int64_t> Out(static_cast<size_t>(NMax), 0);
  std::copy(PCnt.begin(), PCnt.end(), Out.begin());
  return Out;
}

PairList md::buildPairList(const Molecule &Mol, double CutoffAngstrom) {
  assert(CutoffAngstrom > 0.0 && "cutoff must be positive");
  int64_t N = Mol.size();
  PairList PL;
  PL.PCnt.assign(static_cast<size_t>(N), 0);
  PL.Offsets.assign(1, 0);
  if (N == 0)
    return PL;

  // Cell grid keyed by integer cell coordinates.
  double Cell = CutoffAngstrom;
  auto CellOf = [&](const Atom &A) {
    return std::make_tuple(static_cast<int64_t>(std::floor(A.X / Cell)),
                           static_cast<int64_t>(std::floor(A.Y / Cell)),
                           static_cast<int64_t>(std::floor(A.Z / Cell)));
  };
  std::map<std::tuple<int64_t, int64_t, int64_t>, std::vector<int64_t>>
      Cells;
  for (int64_t I = 0; I < N; ++I)
    Cells[CellOf(Mol.atom(I))].push_back(I);

  double Cut2 = CutoffAngstrom * CutoffAngstrom;
  std::vector<int64_t> Row;
  for (int64_t I = 0; I < N; ++I) {
    Row.clear();
    auto [CX, CY, CZ] = CellOf(Mol.atom(I));
    for (int64_t DX = -1; DX <= 1; ++DX)
      for (int64_t DY = -1; DY <= 1; ++DY)
        for (int64_t DZ = -1; DZ <= 1; ++DZ) {
          auto It = Cells.find({CX + DX, CY + DY, CZ + DZ});
          if (It == Cells.end())
            continue;
          for (int64_t J : It->second)
            if (J > I && Mol.dist2(I, J) <= Cut2)
              Row.push_back(J + 1); // 1-based partner ids
        }
    std::sort(Row.begin(), Row.end());
    PL.PCnt[static_cast<size_t>(I)] = static_cast<int64_t>(Row.size());
    PL.Partners.insert(PL.Partners.end(), Row.begin(), Row.end());
    PL.Offsets.push_back(static_cast<int64_t>(PL.Partners.size()));
  }
  return PL;
}

PairList md::buildPairListBruteForce(const Molecule &Mol,
                                     double CutoffAngstrom) {
  int64_t N = Mol.size();
  double Cut2 = CutoffAngstrom * CutoffAngstrom;
  PairList PL;
  PL.PCnt.assign(static_cast<size_t>(N), 0);
  PL.Offsets.assign(1, 0);
  for (int64_t I = 0; I < N; ++I) {
    for (int64_t J = I + 1; J < N; ++J)
      if (Mol.dist2(I, J) <= Cut2)
        PL.Partners.push_back(J + 1);
    PL.Offsets.push_back(static_cast<int64_t>(PL.Partners.size()));
    PL.PCnt[static_cast<size_t>(I)] =
        PL.Offsets[static_cast<size_t>(I + 1)] -
        PL.Offsets[static_cast<size_t>(I)];
  }
  return PL;
}
