! The paper's Sec. 5 nonbonded-force kernel (Fig. 13) in flattenc's
! mini-Fortran. Try:
!   flattenc --analyze nbforce.f
!   flattenc --assume-min-one nbforce.f        (emits Fig. 15)
!   flattenc --no-flatten nbforce.f            (emits Fig. 14)
PROGRAM NBFORCE
EXTERN REAL FUNCTION Force
INTEGER nAtoms
DISTRIBUTED INTEGER pCnt(8192)
DISTRIBUTED INTEGER partners(8192, 256)
DISTRIBUTED REAL F(8192)
INTEGER at1
INTEGER at2
INTEGER pr
BEGIN
  DOALL at1 = 1, nAtoms
    DO pr = 1, pCnt(at1)
      at2 = partners(at1, pr)
      F(at1) = F(at1) + Force(at1, at2)
    ENDDO
  ENDDO
END
