//===- examples/md_nbforce.cpp - Molecular dynamics example ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
// The paper's Sec. 5 case study at example scale: a synthetic protein,
// a GROMOS-style cutoff pairlist, and the nonbonded-force kernel run in
// all three loop versions on a DECmpp-like machine model. Demonstrates
// the md:: substrate plus the full flattening pipeline on a real
// numeric kernel (forces are checked against a direct C++ evaluation).
//
//   $ ./examples/md_nbforce
//
//===----------------------------------------------------------------------===//

#include "bench/NBForceHarness.h"
#include "interp/SimdInterp.h"
#include "ir/Printer.h"
#include "md/NBForce.h"

#include <cmath>
#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::md;

int main() {
  // A smaller molecule than the paper's SOD so the example runs in a
  // blink; same generator, same physics.
  SodParams Params;
  Params.NumAtoms = 1024;
  Molecule Mol = Molecule::syntheticSOD(Params);
  const double Cutoff = 6.0;
  PairList PL = buildPairList(Mol, Cutoff);
  PL.ensureMinOnePartner();
  std::printf("molecule: %lld atoms; pairlist at %.1f A: max %lld "
              "avg %.1f partners/atom\n\n",
              static_cast<long long>(Mol.size()), Cutoff,
              static_cast<long long>(PL.maxPCnt()), PL.avgPCnt());

  const int64_t NMax = 1024, MaxP = PL.maxPCnt();
  machine::MachineConfig M = machine::MachineConfig::decmpp(128);
  ExternRegistry Reg;
  bindForceExterns(Reg, Mol, /*ForceCost=*/250.0, /*LayerCheckCost=*/25.0);

  // Reference forces straight from C++.
  std::vector<double> Want(static_cast<size_t>(NMax), 0.0);
  for (int64_t I = 0; I < PL.numAtoms(); ++I)
    for (int64_t K = 1; K <= PL.PCnt[static_cast<size_t>(I)]; ++K)
      Want[static_cast<size_t>(I)] +=
          pairForce(Mol, I + 1, PL.partner(I, K));

  std::printf("the flattened kernel the compiler derives (Fig. 15):\n%s\n",
              ir::printBody(
                  nbforceFlattenedSimd(NMax, MaxP, M.DataLayout).body())
                  .c_str());

  struct Row {
    const char *Name;
    ir::Program Prog;
    int64_t Sweep;
  };
  Row Rows[] = {
      {"L1u (unflattened, active layers)", nbforceL1u(NMax, MaxP),
       PL.numAtoms()},
      {"L2u (unflattened, all layers)", nbforceL2u(NMax, MaxP), NMax},
      {"Lf  (flattened)",
       nbforceFlattenedSimd(NMax, MaxP, M.DataLayout), NMax},
  };

  std::printf("%-36s %12s %12s %10s\n", "version", "force steps",
              "model secs", "lane util");
  bool ForcesOK = true;
  double SecondsL1 = 0, SecondsLf = 0;
  for (Row &R : Rows) {
    RunOptions Opts;
    Opts.WorkCalls = {"Force"};
    SimdInterp Interp(R.Prog, M, &Reg, Opts);
    setNBForceInputs(Interp.store(), PL, NMax, MaxP, R.Sweep);
    SimdRunResult RR = Interp.run().value();
    std::vector<double> F = Interp.store().getRealArray("F");
    for (size_t I = 0; I < F.size(); ++I)
      ForcesOK &= std::fabs(F[I] - Want[I]) < 1e-9;
    std::printf("%-36s %12lld %12.4f %9.0f%%\n", R.Name,
                static_cast<long long>(RR.Stats.WorkSteps),
                RR.Stats.Seconds, 100.0 * RR.Stats.workUtilization());
    if (R.Name[1] == '1')
      SecondsL1 = RR.Stats.Seconds;
    if (R.Name[1] == 'f')
      SecondsLf = RR.Stats.Seconds;
  }
  std::printf("\nforces identical across all versions: %s\n",
              ForcesOK ? "yes" : "NO");
  std::printf("flattening speedup over L1u: %.2fx (bounded by "
              "pCntmax/pCntavg = %.2f)\n",
              SecondsL1 / SecondsLf,
              static_cast<double>(PL.maxPCnt()) / PL.avgPCnt());
  return ForcesOK ? 0 : 1;
}
