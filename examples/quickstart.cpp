//===- examples/quickstart.cpp - simdflat in five minutes ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
// Builds the paper's Sec. 3 EXAMPLE loop nest, shows what the SIMD
// control-flow restriction costs, applies loop flattening, and verifies
// the flattened program reaches the MIMD bound - the paper's Figs. 1-7
// in one runnable file.
//
//   $ ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "interp/SimdInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::ir;

int main() {
  // --- 1. Write the F77 loop nest (Fig. 1). --------------------------
  // The outer loop is parallel (DOALL); the inner trip count L(i)
  // varies per outer iteration - the SIMD-hostile pattern.
  Program P("EXAMPLE");
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {8}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {8, 4}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.var("K"),
      Builder::body(B.doLoop(
          "j", B.lit(1), B.at("L", B.var("i")),
          Builder::body(B.assign(B.at("X", B.var("i"), B.var("j")),
                                 B.mul(B.var("i"), B.var("j")))))),
      nullptr, /*IsParallel=*/true));
  std::printf("The F77 source (Fig. 1):\n%s\n",
              printBody(P.body()).c_str());

  // --- 2. The naive SIMD version (Fig. 5) wastes lane slots. ---------
  auto RunOn2Lanes = [](Program &Simd, const char *What) {
    machine::MachineConfig M;
    M.Name = "two-lane-simd";
    M.Processors = 2;
    M.Gran = 2;
    M.DataLayout = machine::Layout::Block;
    interp::RunOptions Opts;
    Opts.WorkTargets = {"X"};
    interp::SimdInterp Interp(Simd, M, nullptr, Opts);
    Interp.store().setInt("K", 8);
    std::vector<int64_t> L = {4, 1, 2, 1, 1, 3, 1, 3};
    Interp.store().setIntArray("L", L);
    interp::SimdRunResult R = Interp.run().value();
    std::printf("%s: %lld steps, %.0f%% of lane slots useful\n", What,
                static_cast<long long>(R.Stats.WorkSteps),
                100.0 * R.Stats.workUtilization());
    return R.Stats.WorkSteps;
  };

  transform::SimdizeOptions SOpts;
  SOpts.DoAllLayout = machine::Layout::Block;
  Program Naive = transform::simdize(P, SOpts);
  std::printf("Naive SIMDized program (Fig. 5):\n%s\n",
              printBody(Naive.body()).c_str());
  int64_t Unflat = RunOn2Lanes(Naive, "unflattened");

  // --- 3. Flatten (Fig. 12), distribute, SIMDize (Fig. 7). -----------
  transform::FlattenOptions FOpts;
  FOpts.AssumeInnerMinOneTrip = true; // L(i) >= 1 in this workload
  FOpts.DistributeOuter = machine::Layout::Block;
  transform::FlattenResult FR = transform::flattenNest(P, FOpts);
  if (!FR.Changed) {
    std::printf("flattening failed: %s\n", FR.Reason.c_str());
    return 1;
  }
  std::printf("\nFlattened at the '%s' level (Fig. 12 shape):\n%s\n",
              transform::flattenLevelName(FR.Applied),
              printBody(P.body()).c_str());
  Program Flat = transform::simdize(P);
  std::printf("Flattened SIMD program (Fig. 7):\n%s\n",
              printBody(Flat.body()).c_str());
  int64_t Flattened = RunOn2Lanes(Flat, "flattened  ");

  // --- 4. The paper's headline numbers. -------------------------------
  std::printf("\nEq. 2 (sum of maxima):  %lld steps\n"
              "Eq. 1 (max of sums):    %lld steps  <- loop flattening "
              "reaches the MIMD bound\n",
              static_cast<long long>(Unflat),
              static_cast<long long>(Flattened));
  return Unflat == 12 && Flattened == 8 ? 0 : 1;
}
