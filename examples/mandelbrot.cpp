//===- examples/mandelbrot.cpp - Irregular escape-time kernel --*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
// Renders the Mandelbrot set with the escape-time kernel executed on the
// SIMD machine simulator - first naively SIMDized, then flattened - and
// prints the ASCII image plus the step counts. This is the Sec. 7
// related-work application (Tomboulian & Pappas's indirect-addressing
// trick is a special case of loop flattening).
//
//   $ ./examples/mandelbrot
//
//===----------------------------------------------------------------------===//

#include "interp/SimdInterp.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"
#include "workloads/Mandelbrot.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int main() {
  MandelbrotSpec Spec;
  Spec.Width = 72;
  Spec.Height = 28;
  Spec.MaxIter = 96;

  machine::MachineConfig M;
  M.Name = "simd-32";
  M.Processors = 32;
  M.Gran = 32;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions Opts;
  Opts.WorkTargets = {"tmp"};

  // Unflattened pipeline.
  Program PU = mandelbrotF77(Spec);
  transform::SimdizeOptions SOpts;
  SOpts.DoAllLayout = machine::Layout::Cyclic;
  Program SU = transform::simdize(PU, SOpts);
  SimdInterp IU(SU, M, nullptr, Opts);
  IU.store().setInt("maxIter", Spec.MaxIter);
  SimdRunResult RU = IU.run().value();

  // Flattened pipeline.
  Program PF = mandelbrotF77(Spec);
  transform::FlattenOptions FOpts;
  FOpts.AssumeInnerMinOneTrip = true;
  FOpts.DistributeOuter = machine::Layout::Cyclic;
  transform::FlattenResult FR = transform::flattenNest(PF, FOpts);
  if (!FR.Changed) {
    std::printf("flattening failed: %s\n", FR.Reason.c_str());
    return 1;
  }
  Program SF = transform::simdize(PF);
  SimdInterp IF_(SF, M, nullptr, Opts);
  IF_.store().setInt("maxIter", Spec.MaxIter);
  SimdRunResult RF = IF_.run().value();

  std::vector<int64_t> It = IF_.store().getIntArray("IT");
  bool Same = It == IU.store().getIntArray("IT");

  // ASCII rendering from the simulator's output.
  const char Shades[] = " .:-=+*#%@";
  for (int64_t Y = 0; Y < Spec.Height; ++Y) {
    for (int64_t X = 0; X < Spec.Width; ++X) {
      int64_t V = It[static_cast<size_t>(Y * Spec.Width + X)];
      size_t Idx = V >= Spec.MaxIter
                       ? sizeof(Shades) - 2
                       : static_cast<size_t>(V * 9 / Spec.MaxIter);
      std::putchar(Shades[Idx]);
    }
    std::putchar('\n');
  }

  std::printf("\ncomputed on a %lld-lane SIMD machine (both versions "
              "agree: %s)\n",
              static_cast<long long>(M.Gran), Same ? "yes" : "NO");
  std::printf("unflattened: %6lld steps (%2.0f%% lanes useful)\n"
              "flattened:   %6lld steps (%2.0f%% lanes useful) -> "
              "%.2fx fewer steps\n",
              static_cast<long long>(RU.Stats.WorkSteps),
              100.0 * RU.Stats.workUtilization(),
              static_cast<long long>(RF.Stats.WorkSteps),
              100.0 * RF.Stats.workUtilization(),
              static_cast<double>(RU.Stats.WorkSteps) /
                  static_cast<double>(RF.Stats.WorkSteps));
  return Same ? 0 : 1;
}
