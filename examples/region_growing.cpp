//===- examples/region_growing.cpp - Image-processing workload -*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
// The paper's opening citation (Willebeek-LeMair & Reeves): region
// growing on a SIMD machine is "dominated by the largest region in the
// image." This example segments a synthetic image, shows the region
// size histogram, and runs the growth kernel unflattened vs flattened.
//
//   $ ./examples/region_growing
//
//===----------------------------------------------------------------------===//

#include "interp/SimdInterp.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"
#include "workloads/RegionGrow.h"

#include <algorithm>
#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int main() {
  RegionGrowSpec Spec;
  Spec.Width = 120;
  Spec.Height = 80;
  Spec.NumRegions = 32;
  std::vector<int64_t> Sizes = regionSizes(Spec);
  int64_t MaxSize = *std::max_element(Sizes.begin(), Sizes.end());

  std::printf("segmented a %lldx%lld image into %lld regions\n\n",
              static_cast<long long>(Spec.Width),
              static_cast<long long>(Spec.Height),
              static_cast<long long>(Spec.NumRegions));
  std::printf("region size histogram (each # = 20 pixels):\n");
  for (size_t R = 0; R < Sizes.size(); ++R) {
    std::printf("  region %2zu %5lld ", R + 1,
                static_cast<long long>(Sizes[R]));
    for (int64_t I = 0; I < Sizes[R] / 20; ++I)
      std::putchar('#');
    std::putchar('\n');
  }

  machine::MachineConfig M;
  M.Name = "simd-16";
  M.Processors = 16;
  M.Gran = 16;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions Opts;
  Opts.WorkTargets = {"GROWN"};

  auto Run = [&](bool Flatten) {
    Program P = regionGrowF77(Spec.NumRegions, MaxSize);
    if (Flatten) {
      transform::FlattenOptions FOpts;
      FOpts.AssumeInnerMinOneTrip = true; // every region has >= 1 pixel
      FOpts.DistributeOuter = machine::Layout::Cyclic;
      transform::flattenNest(P, FOpts);
      P = transform::simdize(P);
    } else {
      transform::SimdizeOptions SOpts;
      SOpts.DoAllLayout = machine::Layout::Cyclic;
      P = transform::simdize(P, SOpts);
    }
    SimdInterp Interp(P, M, nullptr, Opts);
    Interp.store().setInt("nRegions", Spec.NumRegions);
    Interp.store().setIntArray("SIZE", Sizes);
    SimdRunResult R = Interp.run().value();
    return std::make_pair(R.Stats.WorkSteps,
                          Interp.store().getIntArray("GROWN"));
  };

  auto [StepsU, GrownU] = Run(false);
  auto [StepsF, GrownF] = Run(true);
  bool Same = GrownU == GrownF;

  std::printf("\ngrowth kernel on a 16-lane SIMD machine:\n");
  std::printf("  unflattened: %lld steps (inner loop padded to each "
              "lane group's largest region)\n",
              static_cast<long long>(StepsU));
  std::printf("  flattened:   %lld steps -> %.2fx\n",
              static_cast<long long>(StepsF),
              static_cast<double>(StepsU) /
                  static_cast<double>(StepsF));
  std::printf("  results identical: %s\n", Same ? "yes" : "NO");
  return Same ? 0 : 1;
}
