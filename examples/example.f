! The paper's Sec. 3 EXAMPLE (Fig. 1), in flattenc's mini-Fortran.
! Try:
!   flattenc --emit=flat --assume-min-one example.f
!   flattenc --assume-min-one --run --lanes=2 \
!            --set K=8 --set-array L=4,1,2,1,1,3,1,3 example.f
PROGRAM EXAMPLE
INTEGER K
DISTRIBUTED INTEGER L(8)
DISTRIBUTED INTEGER X(8, 4)
INTEGER i
INTEGER j
BEGIN
  DOALL i = 1, K
    DO j = 1, L(i)
      X(i, j) = i * j
    ENDDO
  ENDDO
END
