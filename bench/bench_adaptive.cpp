//===- bench/bench_adaptive.cpp --------------------------------*- C++ -*-===//
//
// Adaptive strategy selection vs the three static builds. Each scenario
// streams a deterministic request schedule; the static arms compile the
// nest once under a forced StrategyPolicy and execute every request on
// the simulator, while the adaptive arm submits the same schedule to an
// Adaptive serve::Server (probe runs and respecializations included in
// its bill). The gated metric is simulated machine cycles - the cost
// model's currency, where one SIMD step costs one cycle no matter how
// many lanes sit masked - and the headline ratio pins the adaptive
// promise: never much worse than the best static strategy on stable
// distributions, strictly better than every static strategy once the
// distribution shifts mid-stream.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "frontend/Parser.h"
#include "interp/SimdInterp.h"
#include "serve/Server.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

using namespace simdflat;

namespace {

// The inner body carries three wide stores so body work dominates the
// per-iteration loop machinery - the regime the Sec. 6 cost model
// assumes. With a near-empty body the coalesced executor's
// index-reconstruction overhead swamps the step savings and no
// transformation can beat the untransformed nest in measured cycles.
constexpr const char *NestSource =
    "PROGRAM WIDE\n"
    "INTEGER K\n"
    "DISTRIBUTED INTEGER L(8)\n"
    "DISTRIBUTED INTEGER X(8, 64)\n"
    "INTEGER i\n"
    "INTEGER j\n"
    "BEGIN\n"
    "  DOALL i = 1, K\n"
    "    DO j = 1, L(i)\n"
    "      X(i, j) = i * (j + K) * (j + i) - j * i * i + (i + j) * (K - i)\n"
    "      X(i, j) = (i + j) * (K + j) * (j - i) + i * j * K - (j + K) * (i + K)\n"
    "      X(i, j) = i * j + (i + j + K) * (j - i + K) * (i * j - K) - j * (i + K) * (j + K)\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n";
constexpr int64_t Lanes = 4;

const std::vector<int64_t> UniformTrips = {6, 6, 6, 6, 6, 6, 6, 6};
const std::vector<int64_t> HotTrips = {60, 1, 1, 1, 1, 1, 1, 1};

struct Scenario {
  const char *Name;
  std::vector<const std::vector<int64_t> *> Schedule;
};

/// Simulated machine cycles to serve \p Schedule with the nest
/// compiled once under \p Policy (the static compile-once/run-many
/// arm). Negative on a trap (a static strategy that cannot serve the
/// stream). When \p Hist is set, the dominant nest's trip histogram of
/// every run is merged into it (meaningful on the unflattened arm,
/// whose inner serial loop observes the true source trips).
double runStaticArm(const ir::Program &Src,
                    const transform::StrategyPolicy &Policy,
                    const std::vector<const std::vector<int64_t> *>
                        &Schedule,
                    interp::TripHistogram *Hist = nullptr) {
  transform::PipelineOptions PO;
  PO.Strategy = Policy;
  auto Compiled = transform::compileForSimd(Src, PO, nullptr);
  if (!Compiled)
    return -1;
  machine::MachineConfig M;
  M.Name = "bench-adaptive";
  M.Processors = Lanes;
  M.Gran = Lanes;
  double Total = 0.0;
  for (const std::vector<int64_t> *Trips : Schedule) {
    interp::RunOptions RO;
    RO.Fuel = 1'000'000;
    interp::SimdInterp Interp(*Compiled, M, nullptr, RO);
    Interp.store().setInt("K", 8);
    Interp.store().setIntArray("L", *Trips);
    interp::RunOutcome<interp::SimdRunResult> Out = Interp.run();
    if (!Out)
      return -1.0;
    Total += Out->Stats.Cycles;
    if (Hist) {
      const interp::NestTripStats *Dom = nullptr;
      for (const interp::NestTripStats &Nest : Out->Stats.TripNests)
        if (!Dom || Nest.Hist.Samples > Dom->Hist.Samples)
          Dom = &Nest;
      if (Dom)
        Hist->merge(Dom->Hist);
    }
  }
  return Total;
}

/// Simulated machine cycles billed by an Adaptive server for the same
/// schedule: probe runs, decided runs, and respecialized runs all
/// included. Negative if any request fails to serve.
double runAdaptiveArm(
    const std::vector<const std::vector<int64_t> *> &Schedule,
    int64_t &Decisions, int64_t &Respecializations) {
  serve::ServerOptions SO;
  SO.Workers = 1; // sequential: the bill is deterministic
  SO.QueueCapacity = Schedule.size() + 8;
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 4;
  // Probe every 4th request: fast enough drift detection that even the
  // smoke schedule (8 post-shift requests) respecializes in time, while
  // the stable-distribution probe overhead stays inside the 15% gate.
  SO.AdaptiveProbeEvery = 4;
  serve::Server S(SO);
  double Total = 0.0;
  uint64_t Id = 0;
  for (const std::vector<int64_t> *Trips : Schedule) {
    serve::Request R;
    R.Id = ++Id;
    R.Source = NestSource;
    R.Ints["K"] = 8;
    R.IntArrays["L"] = *Trips;
    R.Lanes = Lanes;
    R.Fuel = 1'000'000;
    serve::Reply Rep = S.submit(std::move(R)).get();
    if (Rep.Out != serve::Outcome::Served)
      return -1.0;
    Total += Rep.Tele.CyclesSpent;
  }
  serve::ServerStats St = S.stats();
  if (!St.consistent() || !St.tenantsConsistent())
    return -1.0;
  Decisions = St.AdaptiveDecisions;
  Respecializations = St.Respecializations;
  return Total;
}

} // namespace

int main(int argc, char **argv) {
  bench::BenchReporter Rep("adaptive", argc, argv);
  bool Ok = true;

  frontend::ParseResult PR = frontend::parseProgram(NestSource);
  if (!PR.ok()) {
    std::fprintf(stderr, "bench_adaptive: fixture does not parse:\n%s",
                 PR.Diags.renderAll().c_str());
    return Rep.finish(1);
  }
  const ir::Program &Src = *PR.Prog;

  const int N = Rep.smoke() ? 16 : 32;
  // Drift detection latency is measured in requests (the detector needs
  // enough post-shift probe mass to move the cumulative distribution),
  // so the drifting schedule keeps its full length even under --smoke.
  const int ND = 32;
  std::vector<Scenario> Scenarios;
  {
    Scenario Uniform{"uniform", {}};
    Scenario Hot{"hot_outlier", {}};
    Scenario Shift{"drifting", {}};
    for (int I = 0; I < N; ++I) {
      Uniform.Schedule.push_back(&UniformTrips);
      Hot.Schedule.push_back(&HotTrips);
    }
    for (int I = 0; I < ND; ++I)
      Shift.Schedule.push_back(I < ND / 2 ? &UniformTrips : &HotTrips);
    Scenarios = {Uniform, Hot, Shift};
  }

  struct Arm {
    const char *Name;
    transform::StrategyPolicy Policy;
  };
  const Arm Statics[] = {
      {"unflattened", transform::StrategyPolicy::unflattened()},
      {"flattened", transform::StrategyPolicy::flattened()},
      {"coalesced", transform::StrategyPolicy::coalesced(64, 4096)},
  };

  std::printf("%-12s %12s %12s %12s %12s  adaptive/best\n", "scenario",
              "unflattened", "flattened", "coalesced", "adaptive");
  for (const Scenario &Sc : Scenarios) {
    double Best = std::numeric_limits<double>::max();
    double Worst = 0.0;
    double StaticTotals[3] = {0.0, 0.0, 0.0};
    interp::TripHistogram Observed;
    for (int A = 0; A < 3; ++A) {
      StaticTotals[A] =
          runStaticArm(Src, Statics[A].Policy, Sc.Schedule,
                       A == 0 ? &Observed : nullptr);
      Ok = Ok && StaticTotals[A] > 0;
      if (StaticTotals[A] > 0) {
        Best = std::min(Best, StaticTotals[A]);
        Worst = std::max(Worst, StaticTotals[A]);
      }
      Rep.record(std::string(Sc.Name) + "/static_" + Statics[A].Name,
                 "model_cycles", StaticTotals[A], "cycles");
    }
    int64_t Decisions = 0, Respec = 0;
    double Adaptive = runAdaptiveArm(Sc.Schedule, Decisions, Respec);
    Ok = Ok && Adaptive > 0;
    double Ratio = Best > 0 ? Adaptive / Best : 0.0;
    Rep.record(std::string(Sc.Name) + "/adaptive", "model_cycles",
               Adaptive, "cycles");
    Rep.record(std::string(Sc.Name) + "/adaptive", "vs_best_static",
               Ratio, "ratio", /*Gate=*/true,
               bench::Direction::LowerIsBetter);
    Rep.record(std::string(Sc.Name) + "/adaptive", "decisions",
               (double)Decisions, "decisions");
    Rep.record(std::string(Sc.Name) + "/adaptive", "respecializations",
               (double)Respec, "respecializations");
    Rep.recordTripHistogram(std::string(Sc.Name) + "/observed", Observed);

    // The adaptive promise, pinned: on a stable distribution the probe
    // overhead stays under 15% of the best static bill; on the shifted
    // stream adaptive must beat every static arm outright.
    if (std::string(Sc.Name) == "drifting")
      Ok = Ok && Adaptive < Best;
    else
      Ok = Ok && Ratio <= 1.15;
    // Adaptive must never lose to the worst static choice - the cost of
    // guessing wrong is what the selection layer exists to avoid.
    Ok = Ok && Adaptive < Worst;

    std::printf("%-12s %12.0f %12.0f %12.0f %12.0f  %.3f\n", Sc.Name,
                StaticTotals[0], StaticTotals[1], StaticTotals[2],
                Adaptive, Ratio);
  }

  Rep.meta("requests_per_scenario", (int64_t)N);
  Rep.meta("lanes", Lanes);
  Rep.setPassed(Ok);
  std::printf("%s\n", Ok ? "PASS" : "FAIL");
  return Rep.finish(Ok ? 0 : 1);
}
