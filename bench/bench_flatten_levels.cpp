//===- bench/bench_flatten_levels.cpp --------------------------*- C++ -*-===//
//
// Design-choice ablation: the three flattening levels of Sec. 4. The
// general form (Fig. 10) buys full conservatism (impure guards,
// zero-trip inner loops) with guard flags and a catch-up loop; Fig. 11
// drops them when control is pure and trips >= 1; Fig. 12 additionally
// replaces the guard with a done test. This bench quantifies what each
// restriction saves on the SIMD machine.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Pipeline.h"
#include "workloads/PaperKernels.h"
#include "workloads/TripCounts.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

int main(int argc, char **argv) {
  bench::BenchReporter Reporter("flatten_levels", argc, argv);
  ExampleSpec Spec;
  Spec.K = Reporter.smoke() ? 256 : 2048;
  Spec.L = generateTripCounts(TripDist::Geometric, Spec.K, 10, 77);
  Reporter.meta("rows", Spec.K);
  Reporter.meta("trip_dist", "geometric");

  machine::MachineConfig M;
  M.Name = "ablate";
  M.Processors = 128;
  M.Gran = 128;
  M.DataLayout = machine::Layout::Cyclic;

  std::printf("Flattening-level ablation: EXAMPLE, K = %lld geometric "
              "rows, 128 lanes\n\n",
              static_cast<long long>(Spec.K));

  TextTable T;
  T.setHeader({"level", "body steps", "vector instrs", "cycles",
               "vs done-test"});
  double DoneCycles = 0.0;
  struct Row {
    FlattenLevel Level;
    const char *Name;
    const char *Key;
  };
  bool AllRan = true;
  for (auto [Level, Name, Key] :
       {Row{FlattenLevel::DoneTest, "done-test (Fig. 12)", "done_test"},
        Row{FlattenLevel::Optimized, "optimized (Fig. 11)", "optimized"},
        Row{FlattenLevel::General, "general (Fig. 10)", "general"}}) {
    Program P = makeExample(Spec);
    PipelineOptions PO;
    PO.ForceLevel = Level;
    PO.AssumeInnerMinOneTrip = true;
    PipelineReport Rep;
    Program Simd = compileForSimd(P, PO, &Rep).value();
    if (!Rep.Flattened) {
      std::printf("%s rejected: %s\n", Name,
                  Rep.FlattenSkipReason.c_str());
      AllRan = false;
      continue;
    }
    RunOptions Opts;
    Opts.WorkTargets = {"X"};
    Opts.Eng = Reporter.engine();
    SimdInterp Interp(Simd, M, nullptr, Opts);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    SimdRunResult R = Interp.run().value();
    if (Level == FlattenLevel::DoneTest)
      DoneCycles = R.Stats.Cycles;
    T.addRow({Name, std::to_string(R.Stats.WorkSteps),
              std::to_string(R.Stats.Instructions),
              formatf("%.0f", R.Stats.Cycles),
              formatf("%.2fx", R.Stats.Cycles / DoneCycles)});
    Reporter.recordRunStats(Key, R.Stats);
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf(
      "\nReading: the general form's guard flags and catch-up control "
      "cost extra vector instructions per iteration; the Sec. 4 "
      "conditions buy them back. All three compute identical stores "
      "(verified in the test suite).\n");
  Reporter.setPassed(AllRan);
  return Reporter.finish(0);
}
