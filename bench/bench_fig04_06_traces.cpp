//===- bench/bench_fig04_06_traces.cpp -------------------------*- C++ -*-===//
//
// Reproduces Figures 4 and 6: execution traces of the Sec. 3 EXAMPLE
// (K = 8, L = 4,1,2,1,1,3,1,3, P = 2, blockwise rows) under the MIMD
// schedule (Eq. 1: 8 steps) and the naive SIMDized schedule (Eq. 2:
// 12 steps with idle slots), plus the flattened SIMD schedule that
// recovers the 8-step MIMD bound. Everything is derived automatically
// from the F77 source by the simdflat passes.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "interp/MimdInterp.h"
#include "interp/TraceRender.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"
#include "workloads/PaperKernels.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;



int main(int argc, char **argv) {
  bench::BenchReporter Rep("fig04_06_traces", argc, argv);
  ExampleSpec Spec = paperExampleSpec();
  Rep.meta("kernel", "EXAMPLE");
  Rep.meta("lanes", int64_t{2});
  std::printf("EXAMPLE (Fig. 1): K = 8, L = 4,1,2,1,1,3,1,3; P = 2, "
              "blockwise rows\n\n");

  machine::MachineConfig M;
  M.Name = "two-lane";
  M.Processors = 2;
  M.Gran = 2;
  M.DataLayout = machine::Layout::Block;

  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  Opts.Watch = {"i", "j"};
  Opts.Eng = Rep.engine();

  // ---- Figure 4: MIMD trace (Eq. 1). -------------------------------
  {
    Program P = makeExample(Spec);
    machine::MachineConfig Sparc = machine::MachineConfig::sparc2();
    MimdInterp Interp(P, Sparc, nullptr, 2, machine::Layout::Block, Opts);
    MimdRunResult R = Interp.run([&](DataStore &S) {
      S.setInt("K", Spec.K);
      S.setIntArray("L", Spec.L);
    }).value();
    std::printf("Figure 4 - MIMD execution trace (global row numbers; "
                "the paper renames proc 2's rows to 1..4):\n");
    std::fputs(renderMimdTrace(R.PerProcTrace).c_str(), stdout);
    std::printf("  TIME_MIMD = %lld steps (paper: 8)\n\n",
                static_cast<long long>(R.TimeSteps));
    Rep.record("fig4/mimd", "time_steps",
               static_cast<double>(R.TimeSteps), "steps");
  }

  // ---- Figure 6: unflattened SIMD trace (Eq. 2). -------------------
  int64_t UnflatSteps = 0;
  {
    Program P = makeExample(Spec);
    transform::SimdizeOptions SOpts;
    SOpts.DoAllLayout = machine::Layout::Block;
    Program Simd = transform::simdize(P, SOpts);
    SimdInterp Interp(Simd, M, nullptr, Opts);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    SimdRunResult R = Interp.run().value();
    std::printf("Figure 6 - unflattened SIMD trace ('-' = processor "
                "masked out / idle):\n");
    std::fputs(renderSimdTrace(R.Tr).c_str(), stdout);
    std::printf("  TIME_SIMD = %lld steps (paper: 12), utilization "
                "%.0f%%\n\n",
                static_cast<long long>(R.Stats.WorkSteps),
                100.0 * R.Stats.workUtilization());
    Rep.recordRunStats("fig6/simd_unflattened", R.Stats);
    UnflatSteps = R.Stats.WorkSteps;
  }

  // ---- Flattened SIMD trace: back to the Fig. 4 schedule. ----------
  {
    Program P = makeExample(Spec);
    transform::FlattenOptions FOpts;
    FOpts.AssumeInnerMinOneTrip = true;
    FOpts.DistributeOuter = machine::Layout::Block;
    transform::FlattenResult FR = transform::flattenNest(P, FOpts);
    if (!FR.Changed) {
      std::printf("flattening failed: %s\n", FR.Reason.c_str());
      return 1;
    }
    Program Simd = transform::simdize(P);
    SimdInterp Interp(Simd, M, nullptr, Opts);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    SimdRunResult R = Interp.run().value();
    std::printf("Flattened SIMD trace (every processor busy every "
                "step):\n");
    std::fputs(renderSimdTrace(R.Tr).c_str(), stdout);
    std::printf("  TIME_SIMD^flat = %lld steps (paper: 8), utilization "
                "%.0f%%\n\n",
                static_cast<long long>(R.Stats.WorkSteps),
                100.0 * R.Stats.workUtilization());
    Rep.recordRunStats("simd_flattened", R.Stats);
    bool Pass = R.Stats.WorkSteps == 8 && UnflatSteps == 12;
    std::printf("%s\n", Pass ? "PASS: 12 steps unflattened vs 8 "
                               "flattened, exactly the paper's numbers"
                             : "FAIL: step counts deviate from the "
                               "paper");
    Rep.setPassed(Pass);
    return Rep.finish(Pass ? 0 : 1);
  }
}
