//===- bench/bench_bodycost_ablation.cpp -----------------------*- C++ -*-===//
//
// The second axis of the Sec. 6 profitability model. The variance
// ablation fixes the body and varies trip-count spread; this one fixes
// the spread and varies the BODY's cost: flattening trades fewer body
// steps for a couple of control operations per step, so the cycle-level
// win grows with body cost and can invert for near-free bodies ("we can
// relatively safely assume profitability whenever the inner loop bounds
// may vary" - true for step counts; cycles also need the body to
// outweigh two flag manipulations).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "interp/SimdInterp.h"
#include "ir/Builder.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Pipeline.h"
#include "workloads/TripCounts.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

/// EXAMPLE-shaped nest whose body calls an extern Work() routine.
Program makeWorkNest(int64_t K, int64_t MaxL) {
  Program P("BODYCOST");
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("Acc", ScalarKind::Real, {K}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addExtern("Work", ScalarKind::Real, /*Pure=*/true);
  Builder B(P);
  (void)MaxL;
  std::vector<ExprPtr> Args;
  Args.push_back(B.var("i"));
  Args.push_back(B.var("j"));
  Body Inner = Builder::body(B.assign(
      B.at("Acc", B.var("i")),
      B.add(B.at("Acc", B.var("i")), B.callFn("Work", std::move(Args)))));
  Body Outer = Builder::body(
      B.doLoop("j", B.lit(1), B.at("L", B.var("i")), std::move(Inner)));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));
  return P;
}

} // namespace

int main(int argc, char **argv) {
  bench::BenchReporter Rep("bodycost_ablation", argc, argv);
  const int64_t K = Rep.smoke() ? 256 : 1024;
  std::vector<int64_t> L =
      generateTripCounts(TripDist::Geometric, K, 8, 11);
  Rep.meta("rows", K);

  machine::MachineConfig M;
  M.Name = "bodycost";
  M.Processors = 64;
  M.Gran = 64;
  M.DataLayout = machine::Layout::Cyclic;

  std::printf("Body-cost ablation: K = %lld geometric rows (mean 8), "
              "64 lanes\n\n",
              static_cast<long long>(K));

  Program F77 = makeWorkNest(K, 0);
  TextTable T;
  T.setHeader({"Work() cycles", "unflat cycles", "flat cycles",
               "speedup"});
  double Crossover = -1.0, PrevCost = 0.0, PrevSpeedup = 0.0;
  for (double Cost : {0.0, 2.0, 8.0, 32.0, 128.0, 512.0}) {
    double Cycles[2];
    for (bool Flatten : {false, true}) {
      transform::PipelineOptions PO;
      PO.Flatten = Flatten;
      PO.AssumeInnerMinOneTrip = true;
      Program Simd = transform::compileForSimd(F77, PO).value();
      ExternRegistry Reg;
      Reg.bind("Work",
               [](std::span<const ScalVal>) {
                 return ScalVal::makeReal(1.0);
               },
               Cost);
      SimdInterp Interp(Simd, M, &Reg, {});
      Interp.store().setInt("K", K);
      Interp.store().setIntArray("L", L);
      Cycles[Flatten] = Interp.run().value().Stats.Cycles;
    }
    double Speedup = Cycles[0] / Cycles[1];
    if (Crossover < 0.0 && Speedup >= 1.0 && PrevSpeedup > 0.0 &&
        PrevSpeedup < 1.0)
      Crossover = PrevCost;
    PrevCost = Cost;
    PrevSpeedup = Speedup;
    T.addRow({formatf("%.0f", Cost), formatf("%.0f", Cycles[0]),
              formatf("%.0f", Cycles[1]), formatf("%.2fx", Speedup)});
    std::string Case = formatf("work_cost=%.0f", Cost);
    Rep.record(Case, "unflattened_cycles", Cycles[0], "cycles");
    Rep.record(Case, "flattened_cycles", Cycles[1], "cycles");
    Rep.record(Case, "cycle_speedup", Speedup, "ratio", /*Gate=*/true,
               bench::Direction::HigherIsBetter);
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf(
      "\nReading: the step-count win is fixed by the trip variance; the "
      "cycle win grows with the body's cost as the flattened control "
      "overhead amortizes%s.\n",
      Crossover >= 0.0
          ? formatf(" (crossover between %.0f and the next tier)",
                    Crossover)
                .c_str()
          : "");
  Rep.setPassed(true);
  return Rep.finish(0);
}
