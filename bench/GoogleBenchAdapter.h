//===- bench/GoogleBenchAdapter.h - BenchReporter x google-benchmark -----===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue for the two google-benchmark binaries: a ConsoleReporter subclass
/// that mirrors every finished run into a BenchReporter, and a shared
/// main() body. Wall-clock-derived numbers (real time, rate counters)
/// are recorded ungated; plain user counters (e.g. lane_slots) are
/// deterministic schedule outputs and gate perf_compare.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_BENCH_GOOGLEBENCHADAPTER_H
#define SIMDFLAT_BENCH_GOOGLEBENCHADAPTER_H

#include "bench/BenchReporter.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace simdflat {
namespace bench {

/// Forwards console output unchanged and records each per-iteration run
/// into the BenchReporter.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  explicit RecordingReporter(BenchReporter &Rep) : Rep(Rep) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    benchmark::ConsoleReporter::ReportRuns(Reports);
    for (const Run &R : Reports) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      std::string Case = R.benchmark_name();
      Rep.record(Case, "real_time_ns", R.GetAdjustedRealTime(), "ns",
                 /*Gate=*/false);
      for (const auto &[Name, Counter] : R.counters) {
        bool WallDerived =
            (Counter.flags & benchmark::Counter::kIsRate) != 0;
        Rep.record(Case, Name, Counter.value,
                   WallDerived ? "per_s" : "",
                   /*Gate=*/!WallDerived);
      }
    }
  }

private:
  BenchReporter &Rep;
};

/// Runs google-benchmark with BenchReporter's leftover argv; smoke mode
/// shortens each measurement (1.7.x flag form: a plain double).
inline int runGoogleBenchmarks(BenchReporter &Rep) {
  std::vector<char *> Args(Rep.argv(), Rep.argv() + Rep.argc());
  std::string MinTime = "--benchmark_min_time=0.01";
  if (Rep.smoke())
    Args.push_back(MinTime.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data())) {
    Rep.setPassed(false);
    return Rep.finish(1);
  }
  RecordingReporter Recorder(Rep);
  size_t Ran = benchmark::RunSpecifiedBenchmarks(&Recorder);
  benchmark::Shutdown();
  Rep.setPassed(Ran > 0);
  return Rep.finish(Ran > 0 ? 0 : 1);
}

} // namespace bench
} // namespace simdflat

#endif // SIMDFLAT_BENCH_GOOGLEBENCHADAPTER_H
