//===- bench/bench_variance_ablation.cpp -----------------------*- C++ -*-===//
//
// Ablation for the paper's closing claim: "the relative performance
// difference between conventional and flattened F90simd programs will
// depend on the variance of the cost of the inner loops." Sweeps
// trip-count distributions (constant -> zipf) and lane counts,
// evaluating Eq. 1/2 exactly and verifying one configuration against
// the SIMD machine simulator.
//
//===----------------------------------------------------------------------===//

#include "analysis/Profitability.h"
#include "bench/BenchReporter.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"
#include "workloads/PaperKernels.h"
#include "workloads/TripCounts.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

/// Runs the EXAMPLE kernel through the full pipeline on a Gran-lane
/// machine and returns (unflattened steps, flattened steps).
std::pair<int64_t, int64_t> simulate(const ExampleSpec &Spec,
                                     int64_t Lanes,
                                     Engine Eng) {
  machine::MachineConfig M;
  M.Name = "ablation";
  M.Processors = Lanes;
  M.Gran = Lanes;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  Opts.Eng = Eng;

  Program PU = makeExample(Spec);
  transform::SimdizeOptions SOpts;
  SOpts.DoAllLayout = machine::Layout::Cyclic;
  Program SU = transform::simdize(PU, SOpts);
  SimdInterp IU(SU, M, nullptr, Opts);
  IU.store().setInt("K", Spec.K);
  IU.store().setIntArray("L", Spec.L);
  int64_t StepsU = IU.run().value().Stats.WorkSteps;

  Program PF = makeExample(Spec);
  transform::FlattenOptions FOpts;
  FOpts.AssumeInnerMinOneTrip = true;
  FOpts.DistributeOuter = machine::Layout::Cyclic;
  transform::flattenNest(PF, FOpts);
  Program SF = transform::simdize(PF);
  SimdInterp IF_(SF, M, nullptr, Opts);
  IF_.store().setInt("K", Spec.K);
  IF_.store().setIntArray("L", Spec.L);
  int64_t StepsF = IF_.run().value().Stats.WorkSteps;
  return {StepsU, StepsF};
}

} // namespace

int main(int argc, char **argv) {
  bench::BenchReporter Rep("variance_ablation", argc, argv);
  const int64_t K = Rep.smoke() ? 1024 : 4096, Mean = 16;
  Rep.meta("rows", K);
  Rep.meta("mean_trips", Mean);
  std::printf("Variance ablation: EXAMPLE with K = %lld rows, mean inner "
              "trip count %lld\n\n",
              static_cast<long long>(K), static_cast<long long>(Mean));

  TextTable T;
  T.setHeader({"distribution", "cv", "P=64", "P=256", "P=1024",
               "bound(max/avg)"});
  bool Monotone = true;
  double PrevSpeedup = -1.0;
  for (TripDist D : AllTripDists) {
    std::vector<int64_t> L = generateTripCounts(D, K, Mean, 2024);
    Summary S;
    for (int64_t V : L)
      S.add(static_cast<double>(V));
    double CV = S.mean() == 0.0 ? 0.0 : S.stddev() / S.mean();
    std::vector<std::string> Row = {tripDistName(D), formatf("%.2f", CV)};
    double Bound = 0.0, SpeedupAt256 = 0.0;
    for (int64_t P : {64, 256, 1024}) {
      ProfitEstimate E = estimateProfit(L, P, machine::Layout::Cyclic);
      Row.push_back(formatf("%.2fx", E.Speedup));
      Bound = E.MaxOverAvg;
      if (P == 256)
        SpeedupAt256 = E.Speedup;
      Rep.record(formatf("%s/P=%lld", tripDistName(D),
                         static_cast<long long>(P)),
                 "predicted_speedup", E.Speedup, "ratio", /*Gate=*/true,
                 bench::Direction::HigherIsBetter);
    }
    Row.push_back(formatf("%.2f", Bound));
    T.addRow(Row);
    if (D == TripDist::Constant && SpeedupAt256 != 1.0)
      Monotone = false;
    PrevSpeedup = SpeedupAt256;
  }
  (void)PrevSpeedup;
  std::fputs(T.render().c_str(), stdout);

  // Cross-check one cell against the machine simulator (small K so the
  // interpreter run stays fast).
  std::printf("\nSimulator cross-check (K = 512, P = 64, geometric):\n");
  ExampleSpec Spec;
  Spec.K = 512;
  Spec.L = generateTripCounts(TripDist::Geometric, Spec.K, 12, 7);
  auto [StepsU, StepsF] = simulate(Spec, 64, Rep.engine());
  ProfitEstimate E = estimateProfit(Spec.L, 64, machine::Layout::Cyclic);
  std::printf("  simulated: unflattened %lld, flattened %lld\n",
              static_cast<long long>(StepsU),
              static_cast<long long>(StepsF));
  std::printf("  predicted: unflattened %lld (Eq. 2), flattened %lld "
              "(Eq. 1)\n",
              static_cast<long long>(E.UnflattenedSteps),
              static_cast<long long>(E.FlattenedSteps));
  bool Match = StepsU == E.UnflattenedSteps && StepsF == E.FlattenedSteps;
  std::printf("%s\n", Match && Monotone
                          ? "PASS: simulator matches the closed forms; "
                            "zero variance gives speedup 1"
                          : "FAIL: prediction mismatch");
  Rep.record("crosscheck/K=512/P=64/geometric", "unflattened_steps",
             static_cast<double>(StepsU), "steps");
  Rep.record("crosscheck/K=512/P=64/geometric", "flattened_steps",
             static_cast<double>(StepsF), "steps");
  Rep.setPassed(Match && Monotone);
  return Rep.finish(Match ? 0 : 1);
}
