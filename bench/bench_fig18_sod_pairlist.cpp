//===- bench/bench_fig18_sod_pairlist.cpp ----------------------*- C++ -*-===//
//
// Reproduces Figure 18: maximum and average number of nonbonded
// interaction partners per atom for the (synthetic) superoxide
// dismutase molecule across cutoff radii. The paper's curve grows
// cubically with the cutoff and has max/avg between ~2.7 and ~3.3; the
// max/avg gap is the upper bound on flattening's benefit (Eq. 1"/2").
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "md/PairList.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>

using namespace simdflat;
using namespace simdflat::md;

int main(int argc, char **argv) {
  bench::BenchReporter Rep("fig18_sod_pairlist", argc, argv);
  Molecule Mol = Molecule::syntheticSOD();
  Rep.meta("molecule", "synthetic-SOD");
  Rep.meta("n_atoms", Mol.size());
  std::printf("Figure 18: nonbonded pairs per atom for the synthetic SOD "
              "molecule (N = %lld)\n\n",
              static_cast<long long>(Mol.size()));

  TextTable T;
  T.setHeader({"cutoff(A)", "pCnt_max", "pCnt_avg", "max/avg"});
  double PrevAvg = 0.0;
  bool Cubic = true;
  for (int C = 2; C <= 20; C += 2) {
    PairList PL = buildPairList(Mol, static_cast<double>(C));
    double Avg = PL.avgPCnt();
    T.addRow({std::to_string(C), std::to_string(PL.maxPCnt()),
              formatf("%.2f", Avg),
              formatf("%.3f", static_cast<double>(PL.maxPCnt()) / Avg)});
    std::string Case = formatf("cutoff=%d", C);
    Rep.record(Case, "pcnt_max", static_cast<double>(PL.maxPCnt()),
               "partners");
    Rep.record(Case, "pcnt_avg", Avg, "partners");
    Rep.record(Case, "max_over_avg",
               static_cast<double>(PL.maxPCnt()) / Avg, "ratio",
               /*Gate=*/true, bench::Direction::HigherIsBetter);
    // Cubic growth check: doubling the cutoff should multiply the
    // average by roughly 8 (less at the largest radii, where the
    // molecule's finite size bends the curve - visible in the paper's
    // plot as well).
    if (C >= 4 && C <= 8 && PrevAvg > 0.0) {
      double Factor = Avg / PrevAvg;
      double Expected = std::pow(static_cast<double>(C) /
                                     (static_cast<double>(C) - 2.0),
                                 3.0);
      if (Factor < 0.5 * Expected || Factor > 1.8 * Expected)
        Cubic = false;
    }
    PrevAvg = Avg;
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\nPaper reference points (real SOD, GROMOS pairlist): "
              "max 33/216/648/1504 and avg 9.9/80/243/510 at "
              "4/8/12/16 A.\n");
  std::printf("%s\n", Cubic ? "PASS: cubic growth in the cutoff radius"
                            : "NOTE: growth deviates from cubic; see "
                              "EXPERIMENTS.md");
  Rep.recordWallTime("wall/build_pairlist/cutoff=8",
                     [&] { buildPairList(Mol, 8.0); });
  Rep.setPassed(Cubic);
  return Rep.finish(0);
}
