//===- bench/BenchReporter.cpp - Shared bench telemetry --------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace simdflat;
using namespace simdflat::bench;

BenchReporter::BenchReporter(std::string Name, int Argc, char **Argv)
    : BenchName(std::move(Name)),
      Start(std::chrono::steady_clock::now()) {
  Smoke = std::getenv("SIMDFLAT_QUICK") != nullptr;
  if (Argc > 0)
    Args.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    if (A == "--smoke") {
      Smoke = true;
    } else if (A == "--json") {
      JsonPath = "BENCH_" + BenchName + ".json";
    } else if (A.rfind("--json=", 0) == 0) {
      JsonPath = std::string(A.substr(std::strlen("--json=")));
      if (JsonPath.empty()) {
        std::fprintf(stderr, "%s: --json= expects a path\n",
                     BenchName.c_str());
        std::exit(2);
      }
    } else if (A.rfind("--engine=", 0) == 0) {
      std::string V(A.substr(std::strlen("--engine=")));
      if (!interp::engineFromName(V, Eng)) {
        std::fprintf(stderr,
                     "%s: --engine= expects tree|bytecode|hostsimd\n",
                     BenchName.c_str());
        std::exit(2);
      }
    } else {
      // Not ours (e.g. a --benchmark_* flag): hand it back to the bench.
      Args.push_back(Argv[I]);
    }
  }
}

void BenchReporter::meta(const std::string &Key, const std::string &V) {
  Meta.emplace_back(Key, json::Value(V));
}

void BenchReporter::meta(const std::string &Key, int64_t V) {
  Meta.emplace_back(Key, json::Value(V));
}

void BenchReporter::record(const std::string &Case,
                           const std::string &Metric, double Value,
                           const std::string &Unit, bool Gate,
                           Direction Better) {
  Metrics.push_back({Case, Metric, Value, Unit, Gate, Better});
}

void BenchReporter::recordRunStats(const std::string &Case,
                                   const interp::RunStats &S) {
  record(Case, "work_steps", static_cast<double>(S.WorkSteps), "steps");
  record(Case, "instructions", static_cast<double>(S.Instructions),
         "instrs");
  record(Case, "cycles", S.Cycles, "cycles");
  record(Case, "model_seconds", S.Seconds, "s");
  record(Case, "comm_accesses", static_cast<double>(S.CommAccesses),
         "accesses");
  record(Case, "work_utilization", S.workUtilization(), "ratio",
         /*Gate=*/true, Direction::HigherIsBetter);
}

void BenchReporter::recordLaneStats(const std::string &Case,
                                    const native::LaneStats &S) {
  record(Case, "steps", static_cast<double>(S.Steps), "steps");
  record(Case, "active_lane_slots",
         static_cast<double>(S.ActiveLaneSlots), "slots");
  record(Case, "total_lane_slots", static_cast<double>(S.TotalLaneSlots),
         "slots");
  record(Case, "utilization", S.utilization(), "ratio", /*Gate=*/true,
         Direction::HigherIsBetter);
}

void BenchReporter::recordTripHistogram(const std::string &Case,
                                        const interp::TripHistogram &H) {
  record(Case, "trip_hist_samples", static_cast<double>(H.Samples),
         "samples", /*Gate=*/false);
  record(Case, "trip_hist_sum", static_cast<double>(H.Sum), "trips",
         /*Gate=*/false);
  record(Case, "trip_hist_max", static_cast<double>(H.Max), "trips",
         /*Gate=*/false);
  record(Case, "trip_hist_mean", H.mean(), "trips", /*Gate=*/false);
  for (size_t I = 0; I < H.Exact.size(); ++I)
    if (H.Exact[I] != 0)
      record(Case, "trip_hist_exact_" + std::to_string(I),
             static_cast<double>(H.Exact[I]), "samples", /*Gate=*/false);
  for (size_t I = 0; I < H.Log2.size(); ++I)
    if (H.Log2[I] != 0)
      record(Case, "trip_hist_log2_" + std::to_string(I),
             static_cast<double>(H.Log2[I]), "samples", /*Gate=*/false);
}

double BenchReporter::timeSecondsMedian(const std::function<void()> &Fn,
                                        int Warmup, int Repeats) {
  if (Smoke) {
    Warmup = std::min(Warmup, 1);
    Repeats = 1;
  }
  Repeats = std::max(Repeats, 1);
  for (int I = 0; I < Warmup; ++I)
    Fn();
  std::vector<double> Times;
  Times.reserve(static_cast<size_t>(Repeats));
  for (int I = 0; I < Repeats; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
  }
  std::sort(Times.begin(), Times.end());
  size_t Mid = Times.size() / 2;
  return Times.size() % 2 == 1
             ? Times[Mid]
             : 0.5 * (Times[Mid - 1] + Times[Mid]);
}

double BenchReporter::recordWallTime(const std::string &Case,
                                     const std::function<void()> &Fn,
                                     int Warmup, int Repeats) {
  double S = timeSecondsMedian(Fn, Warmup, Repeats);
  record(Case, "wall_seconds", S, "s", /*Gate=*/false);
  return S;
}

json::Value BenchReporter::toJson() const {
  json::Value Doc = json::Value::object();
  Doc.set("schema", "simdflat-bench-v1");
  Doc.set("bench", BenchName);
  Doc.set("smoke", Smoke);
  Doc.set("passed", Passed);
  json::Value M = json::Value::object();
  for (const auto &[K, V] : Meta)
    M.set(K, V);
  // Always present, never overridable by meta(): the engine tag is
  // what lets perf_compare refuse cross-engine comparisons.
  M.set("engine", interp::engineName(Eng));
  Doc.set("meta", std::move(M));
  json::Value Arr = json::Value::array();
  for (const BenchMetric &X : Metrics) {
    json::Value E = json::Value::object();
    E.set("case", X.Case);
    E.set("metric", X.Metric);
    E.set("value", X.Value);
    E.set("unit", X.Unit);
    E.set("gate", X.Gate);
    E.set("better", X.Better == Direction::LowerIsBetter ? "lower"
                                                         : "higher");
    Arr.push(std::move(E));
  }
  Doc.set("metrics", std::move(Arr));
  return Doc;
}

int BenchReporter::finish(int ExitCode) {
  if (Finished)
    return ExitCode;
  Finished = true;
  if (ExitCode != 0)
    Passed = false;
  double Total = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  record("total", "total_wall_seconds", Total, "s", /*Gate=*/false);
  if (JsonPath.empty())
    return ExitCode;
  if (!json::writeFile(JsonPath, toJson())) {
    std::fprintf(stderr, "%s: cannot write '%s'\n", BenchName.c_str(),
                 JsonPath.c_str());
    return 2;
  }
  std::fprintf(stderr, "%s: wrote %s (%zu metrics)\n", BenchName.c_str(),
               JsonPath.c_str(), Metrics.size());
  return ExitCode;
}
