//===- bench/bench_serve.cpp -----------------------------------*- C++ -*-===//
//
// Serving-core characterization: compile-once/run-many economics and
// the degraded modes, measured against an in-process serve::Server.
// The gated metrics are deterministic by construction - sequential
// submission to a single worker makes cache hit counts, shed counts and
// fallback counts exact model outputs, and the per-request instruction
// charge comes from the simulator - while end-to-end throughput of a
// concurrent burst is recorded ungated (wall-clock, CI hardware
// varies).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "serve/Server.h"
#include "support/Table.h"

#include <cstdio>
#include <future>
#include <string>
#include <vector>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

constexpr const char *ExampleSource =
    "PROGRAM EX\n"
    "INTEGER K\n"
    "DISTRIBUTED INTEGER L(8)\n"
    "DISTRIBUTED INTEGER X(8, 4)\n"
    "INTEGER i\n"
    "INTEGER j\n"
    "BEGIN\n"
    "  DOALL i = 1, K\n"
    "    DO j = 1, L(i)\n"
    "      X(i, j) = i * j\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n";

Request exampleRequest() {
  Request R;
  R.Source = ExampleSource;
  R.Ints["K"] = 8;
  R.IntArrays["L"] = {4, 1, 2, 1, 1, 3, 1, 3};
  R.Lanes = 4;
  R.Fuel = 100'000;
  return R;
}

/// A family of distinct scalar programs (distinct canonical keys), used
/// to drive cache churn deterministically.
Request scalarRequest(int Variant) {
  Request R;
  R.Source = "PROGRAM VAR" + std::to_string(Variant) +
             "\nINTEGER a\nINTEGER b\nBEGIN\n  b = a * 3 + " +
             std::to_string(Variant) + "\nEND\n";
  R.Ints["a"] = 7;
  R.Lanes = 1;
  R.Fuel = 1000;
  return R;
}

Reply waitReply(std::future<Reply> F) { return F.get(); }

} // namespace

int main(int argc, char **argv) {
  bench::BenchReporter Rep("serve", argc, argv);
  bool Ok = true;

  // --- Compile-once/run-many: hit rate over a fixed request mix. -----
  // One worker, sequential waits: every count below is deterministic.
  {
    ServerOptions SO;
    SO.Workers = 1;
    SO.CacheCapacity = 16;
    Server S(SO);
    const int Distinct = 4;
    const int Total = Rep.smoke() ? 16 : 32;
    int64_t ServedCount = 0;
    for (int I = 0; I < Total; ++I) {
      Reply Rep1 = waitReply(S.submit(scalarRequest(I % Distinct)));
      if (Rep1.Out == Outcome::Served)
        ++ServedCount;
    }
    ServerStats St = S.stats();
    double HitRate = (double)St.CacheHits / Total;
    Ok = Ok && ServedCount == Total && St.consistent() &&
         St.CacheMisses == Distinct;
    Rep.meta("hit_rate_requests", (int64_t)Total);
    Rep.record("cache", "served", (double)ServedCount, "requests");
    Rep.record("cache", "hit_rate", HitRate, "ratio", /*Gate=*/true,
               bench::Direction::HigherIsBetter);
    Rep.record("cache", "compiles", (double)St.CacheMisses, "compiles");
    std::printf("cache      %2d distinct over %2d requests: hit rate "
                "%.3f, %lld compiles\n",
                Distinct, Total, HitRate,
                (long long)St.CacheMisses);
  }

  // --- Per-request simulator charge of the paper example. ------------
  {
    Server S;
    Reply R = waitReply(S.submit(exampleRequest()));
    Ok = Ok && R.Out == Outcome::Served;
    Rep.record("example", "fuel_spent", (double)R.Tele.FuelSpent,
               "instructions");
    std::printf("example    served, %lld instructions charged\n",
                (long long)R.Tele.FuelSpent);
  }

  // --- Degraded mode: total primary failure, breaker + fallback. -----
  {
    ServerOptions SO;
    SO.Workers = 1;
    SO.Faults.CompileFailures = 1'000'000;
    SO.CompileRetries = 0;
    SO.Breaker.FailureThreshold = 2;
    SO.Breaker.OpenBudget = 4;
    Server S(SO);
    const int N = 6;
    int64_t ViaFallback = 0;
    for (int I = 0; I < N; ++I) {
      Reply R = waitReply(S.submit(exampleRequest()));
      if (R.Out == Outcome::Served && R.Tele.Fallback)
        ++ViaFallback;
    }
    ServerStats St = S.stats();
    Ok = Ok && ViaFallback == N && St.BreakerOpens >= 1;
    Rep.record("degraded", "fallback_serves", (double)St.FallbackServes,
               "requests");
    Rep.record("degraded", "breaker_opens", (double)St.BreakerOpens,
               "opens");
    std::printf("degraded   %lld/%d served via fallback, breaker opened "
                "%lld time(s)\n",
                (long long)St.FallbackServes, N,
                (long long)St.BreakerOpens);
  }

  // --- Admission control: over-budget requests shed exactly. ---------
  {
    ServerOptions SO;
    SO.MaxFuel = 1000;
    Server S(SO);
    const int N = 5;
    int64_t ShedCount = 0;
    for (int I = 0; I < N; ++I) {
      Request R = exampleRequest();
      R.Fuel = SO.MaxFuel * 2;
      if (waitReply(S.submit(std::move(R))).Out == Outcome::Shed)
        ++ShedCount;
    }
    Ok = Ok && ShedCount == N;
    Rep.record("admission", "over_budget_shed", (double)ShedCount,
               "requests");
    std::printf("admission  %lld/%d over-budget requests shed\n",
                (long long)ShedCount, N);
  }

  // --- Tenant fairness under a 10x-skewed offered load. --------------
  // A frozen quota clock makes the token buckets pure counters: each
  // tenant is admitted exactly its burst, then refused with a retry
  // hint. The hot tenant offers 10x the victim's load; the gate pins
  // that the victim is served in full and sheds nothing - the skew is
  // absorbed entirely by the hot tenant's own quota envelope.
  {
    ServerOptions SO;
    SO.Workers = 1;
    SO.QuotaClock = [] { return (int64_t)0; };
    TenantQuota Hot;
    Hot.RatePerSec = 1;
    Hot.Burst = 4;
    SO.TenantQuotas["hot"] = Hot;
    TenantQuota Victim;
    Victim.RatePerSec = 1;
    Victim.Burst = 8;
    SO.TenantQuotas["victim"] = Victim;
    Server S(SO);
    for (int V = 0; V < 8; ++V) {
      for (int H = 0; H < 10; ++H) {
        Request R = scalarRequest(0);
        R.Tenant = "hot";
        (void)waitReply(S.submit(std::move(R)));
      }
      Request R = scalarRequest(0);
      R.Tenant = "victim";
      (void)waitReply(S.submit(std::move(R)));
    }
    ServerStats St = S.stats();
    const TenantStats &HotSt = St.Tenants["hot"];
    const TenantStats &VicSt = St.Tenants["victim"];
    Ok = Ok && VicSt.shed() == 0 && VicSt.Served == 8 &&
         HotSt.Admitted == 4 && HotSt.shed() == 76 && St.consistent() &&
         St.tenantsConsistent();
    Rep.record("fairness", "victim_served", (double)VicSt.Served,
               "requests", /*Gate=*/true,
               bench::Direction::HigherIsBetter);
    Rep.record("fairness", "victim_shed", (double)VicSt.shed(),
               "requests");
    Rep.record("fairness", "hot_admitted", (double)HotSt.Admitted,
               "requests");
    Rep.record("fairness", "hot_shed", (double)HotSt.shed(), "requests",
               /*Gate=*/true, bench::Direction::HigherIsBetter);
    std::printf("fairness   victim %lld/8 served, %lld shed; hot "
                "%lld admitted, %lld shed\n",
                (long long)VicSt.Served, (long long)VicSt.shed(),
                (long long)HotSt.Admitted, (long long)HotSt.shed());
  }

  // --- Byte-budgeted cache under multi-tenant churn. -----------------
  // Every entry's cost is pinned at 3000 bytes (fault hook), twelve
  // distinct programs arrive as tenant pairs a,a,b,b,c,c,...: each
  // tenant's second program busts its own 3000-byte occupancy cap
  // (6 tenant evictions), each returning tenant busts the 8192-byte
  // global budget (4 byte evictions), and exactly two entries stay
  // resident. All three counters are exact model outputs.
  {
    ServerOptions SO;
    SO.Workers = 1;
    SO.CacheCapacity = 64;
    SO.CacheMaxBytes = 8192;
    SO.CacheTenantMaxBytes = 3000;
    SO.Faults.InflateCostBytes = 3000;
    Server S(SO);
    static const char *const CacheTenants[] = {"a", "a", "b",
                                               "b", "c", "c"};
    int64_t ServedCount = 0;
    for (int I = 0; I < 12; ++I) {
      Request R = scalarRequest(100 + I);
      R.Tenant = CacheTenants[I % 6];
      if (waitReply(S.submit(std::move(R))).Out == Outcome::Served)
        ++ServedCount;
    }
    ServerStats St = S.stats();
    Ok = Ok && ServedCount == 12 && St.CacheTenantEvictions == 6 &&
         St.CacheByteEvictions == 4 && St.CacheBytesResident == 6000;
    Rep.record("cache_bytes", "tenant_evictions",
               (double)St.CacheTenantEvictions, "evictions");
    Rep.record("cache_bytes", "byte_evictions",
               (double)St.CacheByteEvictions, "evictions");
    Rep.record("cache_bytes", "bytes_resident",
               (double)St.CacheBytesResident, "bytes");
    std::printf("cache_bytes %lld tenant + %lld byte evictions, %lld "
                "bytes resident\n",
                (long long)St.CacheTenantEvictions,
                (long long)St.CacheByteEvictions,
                (long long)St.CacheBytesResident);
  }

  // --- Throughput of a concurrent warm-cache burst (ungated). --------
  {
    const int Burst = Rep.smoke() ? 32 : 128;
    ServerOptions SO;
    SO.Workers = 4;
    SO.QueueCapacity = (size_t)Burst + 8;
    Server S(SO);
    // Warm the cache so the burst measures serving, not compilation.
    (void)waitReply(S.submit(exampleRequest()));
    double Seconds = Rep.timeSecondsMedian(
        [&] {
          std::vector<std::future<Reply>> Pending;
          Pending.reserve(Burst);
          for (int I = 0; I < Burst; ++I)
            Pending.push_back(S.submit(exampleRequest()));
          for (auto &F : Pending)
            (void)F.get();
        },
        /*Warmup=*/1, /*Repeats=*/Rep.smoke() ? 1 : 3);
    double Rps = Seconds > 0 ? Burst / Seconds : 0;
    Rep.record("burst", "wall_seconds", Seconds, "s", /*Gate=*/false);
    Rep.record("burst", "requests_per_second", Rps, "req/s",
               /*Gate=*/false, bench::Direction::HigherIsBetter);
    std::printf("burst      %d warm requests on 4 workers: %.1f req/s "
                "(ungated)\n",
                Burst, Rps);
  }

  Rep.setPassed(Ok);
  std::printf("%s\n", Ok ? "PASS" : "FAIL");
  return Rep.finish(Ok ? 0 : 1);
}
