//===- bench/bench_fig19_scaling.cpp ---------------------------*- C++ -*-===//
//
// Reproduces Figure 19: running time vs number of processors, log-log,
// for both machine models, all three loop versions and two cutoff radii
// (8 A and 16 A; the paper plots four). Emits the plot series as text
// plus a coarse ASCII log-log rendering. Key shapes to observe:
// near-linear scaling, the flattened line strictly below the
// unflattened ones, and the lines converging as Gran approaches N
// (one atom per lane leaves nothing to flatten).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "bench/NBForceHarness.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace simdflat;
using namespace simdflat::bench;

int main(int argc, char **argv) {
  BenchReporter Rep("fig19_scaling", argc, argv);
  bool Quick = quickMode() || Rep.smoke();
  NBForceExperiment E;
  E.setEngine(Rep.engine());
  std::vector<double> Cutoffs = Quick
                                    ? std::vector<double>{8.0}
                                    : std::vector<double>{8.0, 16.0};
  std::vector<int64_t> Procs = Quick
                                   ? std::vector<int64_t>{2048, 8192}
                                   : std::vector<int64_t>{1024, 2048, 4096,
                                                          8192};

  std::printf("Figure 19: running time vs processors (log-log series)\n\n");

  for (bool IsCm2 : {true, false}) {
    const char *Name = IsCm2 ? "CM-2" : "DECmpp-12000";
    std::printf("%s\n", Name);
    TextTable T;
    std::vector<std::string> Header = {"P"};
    for (double C : Cutoffs)
      for (const char *V : {"L1u", "L2u", "Lf"})
        Header.push_back(formatf("%s@%gA", V, C));
    T.setHeader(Header);

    // Collect for the ASCII plot: series[cutoff][version][procIdx].
    std::vector<std::vector<std::vector<double>>> Series(
        Cutoffs.size(),
        std::vector<std::vector<double>>(3));

    for (int64_t P : Procs) {
      machine::MachineConfig M = IsCm2 ? NBForceExperiment::cm2(P)
                                       : NBForceExperiment::decmpp(P);
      std::vector<std::string> Row = {std::to_string(P)};
      for (size_t CI = 0; CI < Cutoffs.size(); ++CI) {
        int VI = 0;
        for (LoopVersion V :
             {LoopVersion::L1u, LoopVersion::L2u, LoopVersion::Lf}) {
          NBRunResult R = E.run(V, M, Cutoffs[CI]);
          Row.push_back(formatf("%.3f", R.Seconds));
          Series[CI][static_cast<size_t>(VI++)].push_back(R.Seconds);
          Rep.record(formatf("%s/P=%lld/cutoff=%g/%s", Name,
                             static_cast<long long>(P), Cutoffs[CI],
                             loopVersionName(V)),
                     "model_seconds", R.Seconds, "s");
        }
      }
      T.addRow(Row);
    }
    std::fputs(T.render().c_str(), stdout);

    // Coarse ASCII log-log plot for the first cutoff.
    std::printf("\n  log-log, cutoff %g A ('1'=L1u '2'=L2u 'f'=Lf):\n",
                Cutoffs[0]);
    double Lo = 1e30, Hi = 0;
    for (const auto &S : Series[0])
      for (double V : S) {
        Lo = std::min(Lo, V);
        Hi = std::max(Hi, V);
      }
    const int Rows = 12, Cols = 48;
    std::vector<std::string> Canvas(Rows, std::string(Cols, ' '));
    auto Put = [&](double X01, double Y01, char Ch) {
      int R = Rows - 1 -
              static_cast<int>(Y01 * (Rows - 1) + 0.5);
      int C = static_cast<int>(X01 * (Cols - 1) + 0.5);
      Canvas[static_cast<size_t>(R)][static_cast<size_t>(C)] = Ch;
    };
    const char Marks[3] = {'1', '2', 'f'};
    for (size_t VI = 0; VI < 3; ++VI) {
      for (size_t PI = 0; PI < Procs.size(); ++PI) {
        double X = Procs.size() == 1
                       ? 0.0
                       : static_cast<double>(PI) /
                             static_cast<double>(Procs.size() - 1);
        double Y = (std::log(Series[0][VI][PI]) - std::log(Lo)) /
                   (std::log(Hi) - std::log(Lo) + 1e-12);
        Put(X, Y, Marks[VI]);
      }
    }
    std::printf("  %8.3fs +%s+\n", Hi, std::string(Cols, '-').c_str());
    for (const std::string &Line : Canvas)
      std::printf("  %9s |%s|\n", "", Line.c_str());
    std::printf("  %8.3fs +%s+\n", Lo, std::string(Cols, '-').c_str());
    std::printf("  %11s P=%lld ... P=%lld\n\n", "",
                static_cast<long long>(Procs.front()),
                static_cast<long long>(Procs.back()));
  }

  // Shape check: Lf below both unflattened versions at every point
  // except possibly Gran >= N (nothing left to flatten).
  bool Pass = true;
  for (bool IsCm2 : {true, false}) {
    for (int64_t P : Procs) {
      machine::MachineConfig M = IsCm2 ? NBForceExperiment::cm2(P)
                                       : NBForceExperiment::decmpp(P);
      if (M.Gran >= 6968)
        continue;
      for (double C : Cutoffs) {
        double L1 = E.run(LoopVersion::L1u, M, C).Seconds;
        double Lf = E.run(LoopVersion::Lf, M, C).Seconds;
        Pass = Pass && Lf < L1;
      }
    }
  }
  std::printf("%s\n",
              Pass ? "PASS: the flattened series lies below the "
                     "unflattened ones wherever Gran < N"
                   : "NOTE: see EXPERIMENTS.md");
  Rep.setPassed(Pass);
  return Rep.finish(0);
}
