//===- bench/bench_spmv.cpp ------------------------------------*- C++ -*-===//
//
// Extension experiment: CSR sparse matrix-vector multiply, the irregular
// kernel behind the Krylov-solver work the paper cites (refs [2, 19]).
// Unlike NBFORCE, the body gathers x(col(k)) across lanes, so this also
// shows what flattening does NOT fix: communication volume is identical
// in both schedules ("the communication requirements are not changed by
// our transformation", Sec. 5.6).
//
//===----------------------------------------------------------------------===//

#include "analysis/Profitability.h"
#include "bench/BenchReporter.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "transform/Pipeline.h"
#include "workloads/SpMV.h"

#include <algorithm>
#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int main(int argc, char **argv) {
  bench::BenchReporter Rep("spmv", argc, argv);
  SpMVSpec Spec;
  Spec.Rows = Spec.Cols = Rep.smoke() ? 128 : 512;
  Spec.MeanRowNnz = 8;
  CsrMatrix M = makeSparseMatrix(Spec);
  Rep.meta("rows", M.Rows);
  Rep.meta("nnz", M.nnz());
  std::vector<int64_t> Lens = M.rowLengths();
  Summary S;
  for (int64_t V : Lens)
    S.add(static_cast<double>(V));
  std::printf("SpMV: %lldx%lld CSR, %lld nonzeros; row lengths min %.0f "
              "avg %.1f max %.0f\n\n",
              static_cast<long long>(M.Rows),
              static_cast<long long>(M.Cols),
              static_cast<long long>(M.nnz()), S.min(), S.mean(),
              S.max());

  std::vector<double> X(static_cast<size_t>(M.Cols), 1.0);
  for (size_t I = 0; I < X.size(); ++I)
    X[I] = 0.125 * static_cast<double>(I % 16) - 1.0;
  std::vector<double> Want = M.multiply(X);

  int64_t MaxRows = M.Rows, MaxNnz = M.nnz();
  Program F77 = spmvF77(MaxRows, MaxNnz);

  TextTable T;
  T.setHeader({"lanes", "version", "steps", "speedup", "util",
               "comm/nnz"});
  bool AllCorrect = true;
  std::vector<int64_t> LaneGrid =
      Rep.smoke() ? std::vector<int64_t>{32, 128}
                  : std::vector<int64_t>{32, 128, 512};
  for (int64_t Lanes : LaneGrid) {
    machine::MachineConfig MC;
    MC.Name = "spmv";
    MC.Processors = Lanes;
    MC.Gran = Lanes;
    MC.DataLayout = machine::Layout::Cyclic;
    int64_t StepsU = 0;
    for (bool Flatten : {false, true}) {
      transform::PipelineOptions PO;
      PO.Flatten = Flatten;
      PO.AssumeInnerMinOneTrip = true;
      Program Simd = transform::compileForSimd(F77, PO).value();
      RunOptions Opts;
      Opts.WorkTargets = {"y"};
      Opts.Eng = Rep.engine();
      SimdInterp Interp(Simd, MC, nullptr, Opts);
      Interp.store().setInt("nRows", M.Rows);
      {
        std::vector<int64_t> RowPtr(static_cast<size_t>(MaxRows + 1), 0);
        std::copy(M.RowPtr.begin(), M.RowPtr.end(), RowPtr.begin());
        Interp.store().setIntArray("rowPtr", RowPtr);
        Interp.store().setIntArray("col", M.Col);
        Interp.store().setRealArray("val", M.Val);
        Interp.store().setRealArray("x", X);
      }
      SimdRunResult R = Interp.run().value();
      std::vector<double> Y = Interp.store().getRealArray("y");
      for (int64_t Row = 0; Row < M.Rows; ++Row)
        AllCorrect &= std::abs(Y[static_cast<size_t>(Row)] -
                               Want[static_cast<size_t>(Row)]) < 1e-9;
      if (!Flatten)
        StepsU = R.Stats.WorkSteps;
      T.addRow({Flatten ? "" : std::to_string(Lanes),
                Flatten ? "flattened" : "unflattened",
                std::to_string(R.Stats.WorkSteps),
                Flatten ? formatf("%.2fx",
                                  static_cast<double>(StepsU) /
                                      static_cast<double>(
                                          R.Stats.WorkSteps))
                        : std::string("1.00x"),
                formatf("%.0f%%", 100.0 * R.Stats.workUtilization()),
                formatf("%.2f", static_cast<double>(R.Stats.CommAccesses) /
                                    static_cast<double>(M.nnz()))});
      Rep.recordRunStats(formatf("lanes=%lld/%s",
                                 static_cast<long long>(Lanes),
                                 Flatten ? "flattened" : "unflattened"),
                         R.Stats);
    }
    T.addSeparator();
  }
  std::fputs(T.render().c_str(), stdout);
  analysis::ProfitEstimate E =
      analysis::estimateProfit(Lens, 128, machine::Layout::Cyclic);
  std::printf("\nEq. 1/2 at 128 lanes: flattened %lld, unflattened %lld "
              "(bound max/avg = %.2f)\n",
              static_cast<long long>(E.FlattenedSteps),
              static_cast<long long>(E.UnflattenedSteps), E.MaxOverAvg);
  std::printf("%s\n", AllCorrect
                          ? "PASS: results equal the C++ oracle; "
                            "communication per nonzero is schedule-"
                            "independent"
                          : "FAIL");
  Rep.record("total", "bound_max_over_avg", E.MaxOverAvg, "ratio",
             /*Gate=*/true, bench::Direction::HigherIsBetter);
  Rep.setPassed(AllCorrect);
  return Rep.finish(AllCorrect ? 0 : 1);
}
