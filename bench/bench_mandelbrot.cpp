//===- bench/bench_mandelbrot.cpp ------------------------------*- C++ -*-===//
//
// The Sec. 7 related-work workload (Tomboulian & Pappas, Frontiers '90):
// Mandelbrot escape iteration on a SIMD machine. Per-pixel iteration
// counts are wildly skewed, so the naive SIMDized schedule wastes most
// lane slots; flattening (the generalization of their indirect-
// addressing trick) recovers near-full utilization.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"
#include "workloads/Mandelbrot.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int main(int argc, char **argv) {
  bench::BenchReporter Rep("mandelbrot", argc, argv);
  MandelbrotSpec Spec;
  Spec.Width = Rep.smoke() ? 32 : 64;
  Spec.Height = Rep.smoke() ? 24 : 48;
  Spec.MaxIter = Rep.smoke() ? 64 : 128;
  Rep.meta("width", Spec.Width);
  Rep.meta("height", Spec.Height);
  Rep.meta("max_iter", Spec.MaxIter);
  std::printf("Mandelbrot %lldx%lld, max %lld iterations\n\n",
              static_cast<long long>(Spec.Width),
              static_cast<long long>(Spec.Height),
              static_cast<long long>(Spec.MaxIter));

  std::vector<int64_t> Want = mandelbrotIterations(Spec);

  TextTable T;
  T.setHeader({"lanes", "unflat steps", "flat steps", "speedup",
               "unflat util", "flat util"});
  bool AllCorrect = true, AllFaster = true;
  std::vector<int64_t> LaneGrid = Rep.smoke()
                                      ? std::vector<int64_t>{16, 64}
                                      : std::vector<int64_t>{16, 64, 256};
  for (int64_t Lanes : LaneGrid) {
    machine::MachineConfig M;
    M.Name = "simd";
    M.Processors = Lanes;
    M.Gran = Lanes;
    M.DataLayout = machine::Layout::Cyclic;
    RunOptions Opts;
    Opts.WorkTargets = {"tmp"};
    Opts.Eng = Rep.engine();

    Program PU = mandelbrotF77(Spec);
    transform::SimdizeOptions SOpts;
    SOpts.DoAllLayout = machine::Layout::Cyclic;
    Program SU = transform::simdize(PU, SOpts);
    SimdInterp IU(SU, M, nullptr, Opts);
    IU.store().setInt("maxIter", Spec.MaxIter);
    SimdRunResult RU = IU.run().value();
    AllCorrect &= IU.store().getIntArray("IT") == Want;

    Program PF = mandelbrotF77(Spec);
    transform::FlattenOptions FOpts;
    FOpts.AssumeInnerMinOneTrip = true;
    FOpts.DistributeOuter = machine::Layout::Cyclic;
    transform::flattenNest(PF, FOpts);
    Program SF = transform::simdize(PF);
    SimdInterp IF_(SF, M, nullptr, Opts);
    IF_.store().setInt("maxIter", Spec.MaxIter);
    SimdRunResult RF = IF_.run().value();
    AllCorrect &= IF_.store().getIntArray("IT") == Want;
    AllFaster &= RF.Stats.WorkSteps < RU.Stats.WorkSteps;

    T.addRow({std::to_string(Lanes),
              std::to_string(RU.Stats.WorkSteps),
              std::to_string(RF.Stats.WorkSteps),
              formatf("%.2fx", static_cast<double>(RU.Stats.WorkSteps) /
                                   static_cast<double>(RF.Stats.WorkSteps)),
              formatf("%.0f%%", 100.0 * RU.Stats.workUtilization()),
              formatf("%.0f%%", 100.0 * RF.Stats.workUtilization())});
    std::string Case = formatf("lanes=%lld", static_cast<long long>(Lanes));
    Rep.recordRunStats(Case + "/unflattened", RU.Stats);
    Rep.recordRunStats(Case + "/flattened", RF.Stats);
    Rep.record(Case, "step_speedup",
               static_cast<double>(RU.Stats.WorkSteps) /
                   static_cast<double>(RF.Stats.WorkSteps),
               "ratio", /*Gate=*/true, bench::Direction::HigherIsBetter);
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\n%s\n",
              AllCorrect && AllFaster
                  ? "PASS: identical escape counts, flattening strictly "
                    "fewer steps"
                  : "FAIL");
  Rep.setPassed(AllCorrect && AllFaster);
  return Rep.finish(AllCorrect && AllFaster ? 0 : 1);
}
