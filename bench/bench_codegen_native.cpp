//===- bench/bench_codegen_native.cpp --------------------------*- C++ -*-===//
//
// The native codegen tier against the bytecode engine on the paper's
// evaluation workloads: Mandelbrot escape iteration (divergent WHERE),
// region growing (data-dependent inner trips), and CSR SpMV
// (gather-bound). Both engines execute the same lowered exec::Program
// with the same masked-commit discipline, so every model counter must
// be identical - those are the gated metrics. The JIT compile happens
// once per workload via prepareNative before any clock starts, mirroring
// how serve keeps compiles off the hot path; the timed region is pure
// execution. The wall-clock ratio bytecode/native is then required to
// clear NATIVE_MIN_SPEEDUP on mandelbrot and spmv (region_grow rides
// along ungated: its 16-lane grid is too small to amortize the ABI
// boundary). measured_over_model records wall seconds against the
// Sec. 6 cost model's predicted seconds so the emitted loops' real
// overhead stays visible next to the model's claim.
//
// Builds without a JIT (SIMDFLAT_ENABLE_JIT=OFF) or hosts without a
// toolchain skip with a message and exit 0: absence of a compiler is a
// configuration, not a regression.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "codegen/NativeEngine.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Pipeline.h"
#include "workloads/Mandelbrot.h"
#include "workloads/RegionGrow.h"
#include "workloads/SpMV.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

/// Wall-clock speedup bytecode/native each gated workload must clear.
constexpr double NATIVE_MIN_SPEEDUP = 1.3;

struct Workload {
  std::string Name;
  transform::CompiledSimdProgram Compiled;
  std::function<void(DataStore &)> Seed;
  int64_t Lanes = 64;
  std::string WorkTarget;
  /// Whether the wall-clock speedup gate applies (mandelbrot, spmv).
  bool GateSpeedup = false;
  /// Optional output check run once per engine; returns true when the
  /// results are right.
  std::function<bool(DataStore &)> Check;
};

machine::MachineConfig machineFor(int64_t Lanes) {
  machine::MachineConfig M;
  M.Name = "native";
  M.Processors = Lanes;
  M.Gran = Lanes;
  M.DataLayout = machine::Layout::Cyclic;
  return M;
}

SimdRunResult runOnce(const Workload &W, Engine Eng, bool *CheckOk) {
  RunOptions Opts;
  Opts.Eng = Eng;
  Opts.WorkTargets = {W.WorkTarget};
  SimdInterp I(W.Compiled.Prog, machineFor(W.Lanes), nullptr, Opts);
  I.setCompiled(W.Compiled.Code);
  W.Seed(I.store());
  SimdRunResult R = I.run().value();
  if (CheckOk)
    *CheckOk = !W.Check || W.Check(I.store());
  return R;
}

bool sameStats(const RunStats &A, const RunStats &B) {
  return A.WorkSteps == B.WorkSteps && A.Instructions == B.Instructions &&
         A.WorkActiveLanes == B.WorkActiveLanes &&
         A.WorkTotalLanes == B.WorkTotalLanes &&
         A.CommAccesses == B.CommAccesses && A.Cycles == B.Cycles &&
         A.Seconds == B.Seconds;
}

} // namespace

int main(int argc, char **argv) {
  bench::BenchReporter Rep("codegen_native", argc, argv);
  Rep.setEngine(Engine::Native);
  Rep.meta("native_available", codegen::nativeAvailable() ? int64_t(1)
                                                          : int64_t(0));
  bool Smoke = Rep.smoke();

  if (!codegen::nativeAvailable()) {
    std::printf("SKIP: native codegen unavailable (SIMDFLAT_ENABLE_JIT "
                "off or no host compiler); nothing to gate\n");
    return Rep.finish(0);
  }

  auto compileOrDie = [](const ir::Program &P,
                         transform::PipelineOptions PO) {
    auto C = transform::compileForSimdExec(P, PO);
    if (!C) {
      std::fprintf(stderr, "codegen_native: %s\n",
                   C.error().render().c_str());
      std::exit(1);
    }
    return std::move(*C);
  };

  std::vector<Workload> Workloads;
  {
    MandelbrotSpec Spec;
    Spec.Width = Smoke ? 32 : 64;
    Spec.Height = Smoke ? 24 : 48;
    Spec.MaxIter = Smoke ? 64 : 128;
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    Workloads.push_back(
        {"mandelbrot", compileOrDie(mandelbrotF77(Spec), PO),
         [Spec](DataStore &S) { S.setInt("maxIter", Spec.MaxIter); },
         64, "tmp", /*GateSpeedup=*/true, nullptr});
  }
  {
    RegionGrowSpec Spec;
    if (Smoke) {
      Spec.Width = 48;
      Spec.Height = 48;
      Spec.NumRegions = 24;
    }
    std::vector<int64_t> Sizes = regionSizes(Spec);
    int64_t MaxSize = *std::max_element(Sizes.begin(), Sizes.end());
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    Workloads.push_back(
        {"region_grow",
         compileOrDie(regionGrowF77(Spec.NumRegions, MaxSize), PO),
         [Spec, Sizes](DataStore &S) {
           S.setInt("nRegions", Spec.NumRegions);
           S.setIntArray("SIZE", Sizes);
         },
         16, "GROWN", /*GateSpeedup=*/false, nullptr});
  }
  {
    SpMVSpec Spec;
    Spec.Rows = Spec.Cols = Smoke ? 128 : 256;
    Spec.MeanRowNnz = 8;
    CsrMatrix M = makeSparseMatrix(Spec);
    std::vector<double> X(static_cast<size_t>(M.Cols), 1.0);
    for (size_t I = 0; I < X.size(); ++I)
      X[I] = 0.125 * static_cast<double>(I % 16) - 1.0;
    std::vector<double> Want = M.multiply(X);
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    int64_t MaxRows = M.Rows, MaxNnz = M.nnz();
    std::vector<int64_t> RowPtr(static_cast<size_t>(MaxRows + 1), 0);
    std::copy(M.RowPtr.begin(), M.RowPtr.end(), RowPtr.begin());
    Workloads.push_back(
        {"spmv", compileOrDie(spmvF77(MaxRows, MaxNnz), PO),
         [M, RowPtr, X](DataStore &S) {
           S.setInt("nRows", M.Rows);
           S.setIntArray("rowPtr", RowPtr);
           S.setIntArray("col", M.Col);
           S.setRealArray("val", M.Val);
           S.setRealArray("x", X);
         },
         64, "y", /*GateSpeedup=*/true,
         [M, Want](DataStore &S) {
           std::vector<double> Y = S.getRealArray("y");
           for (int64_t Row = 0; Row < M.Rows; ++Row)
             if (std::abs(Y[static_cast<size_t>(Row)] -
                          Want[static_cast<size_t>(Row)]) >= 1e-9)
               return false;
           return true;
         }});
  }

  TextTable T;
  T.setHeader({"workload", "bytecode s", "native s", "speedup", "gate",
               "wall/model"});
  bool Ok = true;
  for (const Workload &W : Workloads) {
    // Compile + load outside every clock, exactly like serve's
    // single-flight prepare keeps compiles off the hot path.
    if (!codegen::prepareNative(*W.Compiled.Code, W.Compiled.Prog,
                                machineFor(W.Lanes))) {
      std::fprintf(stderr,
                   "codegen_native: %s: prepareNative failed with a "
                   "toolchain present\n",
                   W.Name.c_str());
      Ok = false;
      continue;
    }

    bool ByteOk = true, NativeOk = true;
    SimdRunResult ByteR = runOnce(W, Engine::Bytecode, &ByteOk);
    SimdRunResult NativeR = runOnce(W, Engine::Native, &NativeOk);
    if (NativeR.EngineUsed != Engine::Native) {
      std::fprintf(stderr,
                   "codegen_native: %s: degraded to %s after a "
                   "successful prepare\n",
                   W.Name.c_str(), engineName(NativeR.EngineUsed));
      Ok = false;
    }
    if (!sameStats(ByteR.Stats, NativeR.Stats)) {
      std::fprintf(
          stderr, "codegen_native: %s: engines disagree on model counters\n",
          W.Name.c_str());
      Ok = false;
    }
    if (!ByteOk || !NativeOk) {
      std::fprintf(stderr, "codegen_native: %s: wrong results (%s)\n",
                   W.Name.c_str(), !NativeOk ? "native" : "bytecode");
      Ok = false;
    }

    double ByteS = Rep.timeSecondsMedian(
        [&] { runOnce(W, Engine::Bytecode, nullptr); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double NativeS = Rep.timeSecondsMedian(
        [&] { runOnce(W, Engine::Native, nullptr); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double Speedup = NativeS > 0.0 ? ByteS / NativeS : 0.0;
    bool GatePassed = !W.GateSpeedup || Speedup >= NATIVE_MIN_SPEEDUP;
    if (!GatePassed) {
      std::fprintf(stderr,
                   "codegen_native: %s: native %.2fx bytecode, gate "
                   "needs %.2fx\n",
                   W.Name.c_str(), Speedup, NATIVE_MIN_SPEEDUP);
      Ok = false;
    }
    // Wall time against the cost model's prediction for the same run:
    // the emitted loops' real overhead next to the model's claim.
    double MeasuredOverModel =
        NativeR.Stats.Seconds > 0.0 ? NativeS / NativeR.Stats.Seconds : 0.0;

    T.addRow({W.Name, formatf("%.4f", ByteS), formatf("%.4f", NativeS),
              formatf("%.2fx", Speedup),
              W.GateSpeedup ? (GatePassed ? "pass" : "FAIL") : "-",
              formatf("%.3f", MeasuredOverModel)});
    Rep.recordRunStats(W.Name, NativeR.Stats);
    Rep.record(W.Name, "bytecode_wall_seconds", ByteS, "s",
               /*Gate=*/false);
    Rep.record(W.Name, "native_wall_seconds", NativeS, "s",
               /*Gate=*/false);
    Rep.record(W.Name, "native_over_bytecode", Speedup, "ratio",
               /*Gate=*/false, bench::Direction::HigherIsBetter);
    Rep.record(W.Name, "measured_over_model", MeasuredOverModel, "ratio",
               /*Gate=*/false);
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\n%s (gate: native >= %.1fx bytecode on mandelbrot and "
              "spmv)\n",
              Ok ? "PASS: native matches bytecode on every model counter "
                   "and clears the speedup gate"
                 : "FAIL: native diverges or misses the speedup gate",
              NATIVE_MIN_SPEEDUP);
  Rep.setPassed(Ok);
  return Rep.finish(Ok ? 0 : 1);
}
