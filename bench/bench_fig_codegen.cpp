//===- bench/bench_fig_codegen.cpp -----------------------------*- C++ -*-===//
//
// Prints every transformation stage of the paper's code figures, derived
// automatically by the simdflat passes from the F77 sources:
// Fig. 1 (EXAMPLE), Fig. 8 (normalized), Fig. 9 (guard flags),
// Figs. 10/11/12 (the three flattening levels), Fig. 5 (SIMDized
// unflattened), Fig. 7 (SIMDized flattened), and the NBFORCE pipeline
// Fig. 13 -> Fig. 14 / Fig. 15.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "ir/Printer.h"
#include "md/NBForce.h"
#include "transform/Flatten.h"
#include "transform/GuardIntro.h"
#include "transform/Normalize.h"
#include "transform/Simdize.h"
#include "workloads/PaperKernels.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

simdflat::bench::BenchReporter *Rep = nullptr;

void show(const char *Title, const Program &P) {
  std::string Text = printBody(P.body());
  std::printf("---- %s ----\n%s\n", Title, Text.c_str());
  // Printed-size telemetry per figure: a cheap drift detector for the
  // printer and the transformation output (ungated; codegen changes are
  // legitimate, the trajectory just makes them visible).
  int64_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n';
  Rep->record(Title, "printed_lines", static_cast<double>(Lines),
              "lines", /*Gate=*/false);
}

} // namespace

int main(int argc, char **argv) {
  simdflat::bench::BenchReporter Reporter("fig_codegen", argc, argv);
  Rep = &Reporter;
  ExampleSpec Spec = paperExampleSpec();

  show("Fig. 1: EXAMPLE (F77D source)", makeExample(Spec));

  {
    Program P = makeExample(Spec);
    NormalizeOptions NOpts;
    NOpts.SkipParallel = false;
    normalizeLoops(P, NOpts);
    show("Fig. 8: after loop normalization", P);
    introduceGuards(P);
    show("Fig. 9: after guard introduction", P);
  }

  for (auto [Level, Title] :
       {std::pair{FlattenLevel::General,
                  "Fig. 10: general flattening (conservative)"},
        std::pair{FlattenLevel::Optimized,
                  "Fig. 11: optimized flattening (pure control, >=1 trip)"},
        std::pair{FlattenLevel::DoneTest,
                  "Fig. 12: done-test flattening"}}) {
    Program P = makeExample(Spec);
    FlattenOptions Opts;
    Opts.Force = Level;
    Opts.AssumeInnerMinOneTrip = Level != FlattenLevel::General;
    FlattenResult R = flattenNest(P, Opts);
    if (!R.Changed) {
      std::printf("---- %s ----\nREJECTED: %s\n\n", Title,
                  R.Reason.c_str());
      continue;
    }
    show(Title, P);
  }

  {
    Program P = makeExample(Spec);
    SimdizeOptions SOpts;
    SOpts.DoAllLayout = machine::Layout::Block;
    Program Simd = simdize(P, SOpts);
    show("Fig. 5: naive SIMDized EXAMPLE (F90simd)", Simd);
  }
  {
    Program P = makeExample(Spec);
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = true;
    Opts.DistributeOuter = machine::Layout::Cyclic;
    flattenNest(P, Opts);
    Program Simd = simdize(P);
    show("Fig. 7: flattened SIMDized EXAMPLE (F90simd)", Simd);
  }

  show("Fig. 13: NBFORCE (F77D source)", md::nbforceF77(8192, 256));
  show("Fig. 14: NBFORCE SIMDized, unflattened",
       md::nbforceUnflattenedSimd(8192, 256, machine::Layout::Cyclic));
  show("Fig. 15: NBFORCE flattened + SIMDized",
       md::nbforceFlattenedSimd(8192, 256, machine::Layout::Cyclic));
  return Reporter.finish(0);
}
