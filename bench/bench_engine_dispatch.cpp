//===- bench/bench_engine_dispatch.cpp -------------------------*- C++ -*-===//
//
// Measures what the lowered execution cores buy over the tree-walk
// interpreter on three interpreter-bound workloads (EXAMPLE, Mandelbrot
// escape iteration, region growing), each compiled once through the
// full flattening pipeline and then executed repeatedly under all three
// engines (tree, bytecode, hostsimd). The model counters (steps,
// cycles, utilization) must be identical across engines - they are the
// gated metrics perf_compare diffs across commits - while the
// wall-clock ratios tree/bytecode and tree/hostsimd are the measured
// dispatch speedups (ungated: CI hardware varies).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "exec/Lower.h"
#include "interp/MimdInterp.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Pipeline.h"
#include "workloads/Mandelbrot.h"
#include "workloads/PaperKernels.h"
#include "workloads/RegionGrow.h"
#include "workloads/TripCounts.h"

#include <algorithm>
#include <cstdio>
#include <functional>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

/// One measured workload: a pipeline-compiled program plus its input
/// seeding and the lane count it runs on.
struct Workload {
  std::string Name;
  transform::CompiledSimdProgram Compiled;
  std::function<void(DataStore &)> Seed;
  int64_t Lanes = 64;
  /// Store target whose writes count as work steps (the same variable
  /// the workload's dedicated bench gates on).
  std::string WorkTarget;
};

machine::MachineConfig machineFor(int64_t Lanes) {
  machine::MachineConfig M;
  M.Name = "dispatch";
  M.Processors = Lanes;
  M.Gran = Lanes;
  M.DataLayout = machine::Layout::Cyclic;
  return M;
}

SimdRunResult runOnce(const Workload &W, Engine Eng) {
  RunOptions Opts;
  Opts.Eng = Eng;
  Opts.WorkTargets = {W.WorkTarget};
  SimdInterp I(W.Compiled.Prog, machineFor(W.Lanes), nullptr, Opts);
  I.setCompiled(W.Compiled.Code);
  W.Seed(I.store());
  return I.run().value();
}

bool sameStats(const RunStats &A, const RunStats &B) {
  return A.WorkSteps == B.WorkSteps && A.Instructions == B.Instructions &&
         A.WorkActiveLanes == B.WorkActiveLanes &&
         A.WorkTotalLanes == B.WorkTotalLanes &&
         A.CommAccesses == B.CommAccesses && A.Cycles == B.Cycles &&
         A.Seconds == B.Seconds;
}

} // namespace

int main(int argc, char **argv) {
  bench::BenchReporter Rep("engine_dispatch", argc, argv);
  bool Smoke = Rep.smoke();

  auto compileOrDie = [](const ir::Program &P,
                         transform::PipelineOptions PO) {
    auto C = transform::compileForSimdExec(P, PO);
    if (!C) {
      std::fprintf(stderr, "engine_dispatch: %s\n",
                   C.error().render().c_str());
      std::exit(1);
    }
    return std::move(*C);
  };

  std::vector<Workload> Workloads;
  {
    ExampleSpec Spec;
    Spec.K = Smoke ? 256 : 1024;
    Spec.L = generateTripCounts(TripDist::Geometric, Spec.K, 12, 7);
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    Workloads.push_back(
        {"example", compileOrDie(makeExample(Spec), PO),
         [Spec](DataStore &S) {
           S.setInt("K", Spec.K);
           S.setIntArray("L", Spec.L);
         },
         64, "X"});
  }
  {
    MandelbrotSpec Spec;
    Spec.Width = Smoke ? 32 : 48;
    Spec.Height = Smoke ? 24 : 32;
    Spec.MaxIter = Smoke ? 64 : 96;
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    Workloads.push_back(
        {"mandelbrot", compileOrDie(mandelbrotF77(Spec), PO),
         [Spec](DataStore &S) { S.setInt("maxIter", Spec.MaxIter); },
         64, "tmp"});
  }
  {
    RegionGrowSpec Spec;
    if (Smoke) {
      Spec.Width = 48;
      Spec.Height = 48;
      Spec.NumRegions = 24;
    }
    std::vector<int64_t> Sizes = regionSizes(Spec);
    int64_t MaxSize = *std::max_element(Sizes.begin(), Sizes.end());
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    Workloads.push_back(
        {"region_grow",
         compileOrDie(regionGrowF77(Spec.NumRegions, MaxSize), PO),
         [Spec, Sizes](DataStore &S) {
           S.setInt("nRegions", Spec.NumRegions);
           S.setIntArray("SIZE", Sizes);
         },
         16, "GROWN"});
  }

  TextTable T;
  T.setHeader({"workload", "tree s", "bytecode s", "hostsimd s",
               "byte x", "hsimd x", "steps"});
  bool StatsMatch = true;
  double WorstSpeedup = 1e9;
  for (const Workload &W : Workloads) {
    // Cross-check first: all engines must report identical model
    // counters, or the timing comparison is meaningless.
    SimdRunResult TreeR = runOnce(W, Engine::Tree);
    SimdRunResult ByteR = runOnce(W, Engine::Bytecode);
    SimdRunResult HostR = runOnce(W, Engine::HostSimd);
    if (!sameStats(TreeR.Stats, ByteR.Stats) ||
        !sameStats(TreeR.Stats, HostR.Stats)) {
      std::fprintf(stderr,
                   "engine_dispatch: %s: engines disagree on model "
                   "counters\n",
                   W.Name.c_str());
      StatsMatch = false;
    }

    double TreeS = Rep.timeSecondsMedian(
        [&] { runOnce(W, Engine::Tree); }, /*Warmup=*/1, /*Repeats=*/5);
    double ByteS = Rep.timeSecondsMedian(
        [&] { runOnce(W, Engine::Bytecode); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double HostS = Rep.timeSecondsMedian(
        [&] { runOnce(W, Engine::HostSimd); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double Speedup = ByteS > 0.0 ? TreeS / ByteS : 0.0;
    double HostSpeedup = HostS > 0.0 ? TreeS / HostS : 0.0;
    WorstSpeedup = std::min(WorstSpeedup, Speedup);

    T.addRow({W.Name, formatf("%.4f", TreeS), formatf("%.4f", ByteS),
              formatf("%.4f", HostS), formatf("%.2fx", Speedup),
              formatf("%.2fx", HostSpeedup),
              std::to_string(ByteR.Stats.WorkSteps)});
    Rep.recordRunStats(W.Name, ByteR.Stats);
    Rep.record(W.Name, "tree_wall_seconds", TreeS, "s", /*Gate=*/false);
    Rep.record(W.Name, "bytecode_wall_seconds", ByteS, "s",
               /*Gate=*/false);
    Rep.record(W.Name, "hostsimd_wall_seconds", HostS, "s",
               /*Gate=*/false);
    Rep.record(W.Name, "dispatch_speedup", Speedup, "ratio",
               /*Gate=*/false, bench::Direction::HigherIsBetter);
    Rep.record(W.Name, "hostsimd_speedup", HostSpeedup, "ratio",
               /*Gate=*/false, bench::Direction::HigherIsBetter);
  }
  std::fputs(T.render().c_str(), stdout);

  // Scalar and MIMD dispatch: the in-place register discipline ported
  // from the SIMD bytecode policy means the scalar policy no longer
  // boxes a ScalVal per instruction, and these rows pin that it pays
  // off outside the SIMD path too. Counters must agree tree vs
  // bytecode (gated); the speedups are measured wall-clock (ungated).
  {
    ExampleSpec Spec;
    Spec.K = Smoke ? 256 : 1024;
    Spec.L = generateTripCounts(TripDist::Geometric, Spec.K, 12, 7);
    ir::Program Scalar = makeExample(Spec);
    auto Seed = [&Spec](DataStore &S) {
      S.setInt("K", Spec.K);
      S.setIntArray("L", Spec.L);
    };
    auto Lowered = std::make_shared<const exec::Program>(
        exec::lower(Scalar, exec::Mode::Scalar));
    machine::MachineConfig M = machineFor(64);

    auto scalarOnce = [&](Engine Eng) {
      RunOptions Opts;
      Opts.Eng = Eng;
      Opts.WorkTargets = {"X"};
      ScalarInterp I(Scalar, M, nullptr, Opts);
      if (Eng == Engine::Bytecode)
        I.setCompiled(Lowered);
      Seed(I.store());
      return I.run().value();
    };
    ScalarRunResult STree = scalarOnce(Engine::Tree);
    ScalarRunResult SByte = scalarOnce(Engine::Bytecode);
    if (!sameStats(STree.Stats, SByte.Stats)) {
      std::fprintf(stderr, "engine_dispatch: scalar: engines disagree "
                           "on model counters\n");
      StatsMatch = false;
    }
    double ScalarTreeS = Rep.timeSecondsMedian(
        [&] { scalarOnce(Engine::Tree); }, /*Warmup=*/1, /*Repeats=*/5);
    double ScalarByteS = Rep.timeSecondsMedian(
        [&] { scalarOnce(Engine::Bytecode); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double ScalarX = ScalarByteS > 0.0 ? ScalarTreeS / ScalarByteS : 0.0;
    Rep.recordRunStats("scalar_example", SByte.Stats);
    Rep.record("scalar_example", "tree_wall_seconds", ScalarTreeS, "s",
               /*Gate=*/false);
    Rep.record("scalar_example", "bytecode_wall_seconds", ScalarByteS,
               "s", /*Gate=*/false);
    Rep.record("scalar_example", "dispatch_speedup", ScalarX, "ratio",
               /*Gate=*/false, bench::Direction::HigherIsBetter);

    auto mimdOnce = [&](Engine Eng) {
      RunOptions Opts;
      Opts.Eng = Eng;
      Opts.WorkTargets = {"X"};
      MimdInterp I(Scalar, M, nullptr, /*NumProcs=*/8,
                   machine::Layout::Cyclic, Opts);
      return I.run(Seed).value();
    };
    MimdRunResult MTree = mimdOnce(Engine::Tree);
    MimdRunResult MByte = mimdOnce(Engine::Bytecode);
    if (MTree.TimeSteps != MByte.TimeSteps ||
        MTree.Seconds != MByte.Seconds) {
      std::fprintf(stderr, "engine_dispatch: mimd: engines disagree on "
                           "model counters\n");
      StatsMatch = false;
    }
    double MimdTreeS = Rep.timeSecondsMedian(
        [&] { mimdOnce(Engine::Tree); }, /*Warmup=*/1, /*Repeats=*/5);
    double MimdByteS = Rep.timeSecondsMedian(
        [&] { mimdOnce(Engine::Bytecode); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double MimdX = MimdByteS > 0.0 ? MimdTreeS / MimdByteS : 0.0;
    Rep.record("mimd_example", "time_steps", (double)MByte.TimeSteps,
               "steps");
    Rep.record("mimd_example", "tree_wall_seconds", MimdTreeS, "s",
               /*Gate=*/false);
    Rep.record("mimd_example", "bytecode_wall_seconds", MimdByteS, "s",
               /*Gate=*/false);
    Rep.record("mimd_example", "dispatch_speedup", MimdX, "ratio",
               /*Gate=*/false, bench::Direction::HigherIsBetter);

    std::printf("\nscalar tree %.4fs bytecode %.4fs (%.2fx); "
                "mimd(8) tree %.4fs bytecode %.4fs (%.2fx)\n",
                ScalarTreeS, ScalarByteS, ScalarX, MimdTreeS, MimdByteS,
                MimdX);
  }

  std::printf("\n%s\n",
              StatsMatch
                  ? formatf("PASS: engines agree on all model counters; "
                            "worst tree/bytecode speedup %.2fx",
                            WorstSpeedup)
                        .c_str()
                  : "FAIL: engine counter divergence");
  Rep.setPassed(StatsMatch);
  return Rep.finish(StatsMatch ? 0 : 1);
}
