//===- bench/bench_hostsimd.cpp --------------------------------*- C++ -*-===//
//
// The host-SIMD backend against the bytecode engine on the three
// workloads the paper's evaluation leans on: Mandelbrot escape
// iteration (divergent WHERE), region growing (data-dependent inner
// trips), and CSR SpMV (gather-bound). Both engines execute the same
// lowered exec::Program over the same MaskStack discipline, so every
// model counter must be identical - those are the gated metrics - and
// the wall-clock ratio bytecode/hostsimd is the measured kernel speedup
// (ungated: CI hardware varies). meta.engine is pinned to "hostsimd"
// and meta.hostsimd_arch records which kernel set (avx2 or portable)
// the binary was configured with, so baselines from different builds
// never silently diff against each other.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "exec/Engine.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Pipeline.h"
#include "workloads/Mandelbrot.h"
#include "workloads/RegionGrow.h"
#include "workloads/SpMV.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

struct Workload {
  std::string Name;
  transform::CompiledSimdProgram Compiled;
  std::function<void(DataStore &)> Seed;
  int64_t Lanes = 64;
  std::string WorkTarget;
  /// Optional output check run once per engine (gather-heavy SpMV keeps
  /// its C++ oracle); returns true when the results are right.
  std::function<bool(DataStore &)> Check;
};

machine::MachineConfig machineFor(int64_t Lanes) {
  machine::MachineConfig M;
  M.Name = "hostsimd";
  M.Processors = Lanes;
  M.Gran = Lanes;
  M.DataLayout = machine::Layout::Cyclic;
  return M;
}

SimdRunResult runOnce(const Workload &W, Engine Eng, bool *CheckOk) {
  RunOptions Opts;
  Opts.Eng = Eng;
  Opts.WorkTargets = {W.WorkTarget};
  SimdInterp I(W.Compiled.Prog, machineFor(W.Lanes), nullptr, Opts);
  I.setCompiled(W.Compiled.Code);
  W.Seed(I.store());
  SimdRunResult R = I.run().value();
  if (CheckOk)
    *CheckOk = !W.Check || W.Check(I.store());
  return R;
}

bool sameStats(const RunStats &A, const RunStats &B) {
  return A.WorkSteps == B.WorkSteps && A.Instructions == B.Instructions &&
         A.WorkActiveLanes == B.WorkActiveLanes &&
         A.WorkTotalLanes == B.WorkTotalLanes &&
         A.CommAccesses == B.CommAccesses && A.Cycles == B.Cycles &&
         A.Seconds == B.Seconds;
}

} // namespace

int main(int argc, char **argv) {
  bench::BenchReporter Rep("hostsimd", argc, argv);
  Rep.setEngine(Engine::HostSimd);
  Rep.meta("hostsimd_arch", exec::hostSimdArch());
  Rep.meta("hostsimd_width", (int64_t)exec::hostSimdWidth());
  bool Smoke = Rep.smoke();

  auto compileOrDie = [](const ir::Program &P,
                         transform::PipelineOptions PO) {
    auto C = transform::compileForSimdExec(P, PO);
    if (!C) {
      std::fprintf(stderr, "hostsimd: %s\n", C.error().render().c_str());
      std::exit(1);
    }
    return std::move(*C);
  };

  std::vector<Workload> Workloads;
  {
    MandelbrotSpec Spec;
    Spec.Width = Smoke ? 32 : 64;
    Spec.Height = Smoke ? 24 : 48;
    Spec.MaxIter = Smoke ? 64 : 128;
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    Workloads.push_back(
        {"mandelbrot", compileOrDie(mandelbrotF77(Spec), PO),
         [Spec](DataStore &S) { S.setInt("maxIter", Spec.MaxIter); },
         64, "tmp", nullptr});
  }
  {
    RegionGrowSpec Spec;
    if (Smoke) {
      Spec.Width = 48;
      Spec.Height = 48;
      Spec.NumRegions = 24;
    }
    std::vector<int64_t> Sizes = regionSizes(Spec);
    int64_t MaxSize = *std::max_element(Sizes.begin(), Sizes.end());
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    Workloads.push_back(
        {"region_grow",
         compileOrDie(regionGrowF77(Spec.NumRegions, MaxSize), PO),
         [Spec, Sizes](DataStore &S) {
           S.setInt("nRegions", Spec.NumRegions);
           S.setIntArray("SIZE", Sizes);
         },
         16, "GROWN", nullptr});
  }
  {
    SpMVSpec Spec;
    Spec.Rows = Spec.Cols = Smoke ? 128 : 256;
    Spec.MeanRowNnz = 8;
    CsrMatrix M = makeSparseMatrix(Spec);
    std::vector<double> X(static_cast<size_t>(M.Cols), 1.0);
    for (size_t I = 0; I < X.size(); ++I)
      X[I] = 0.125 * static_cast<double>(I % 16) - 1.0;
    std::vector<double> Want = M.multiply(X);
    transform::PipelineOptions PO;
    PO.AssumeInnerMinOneTrip = true;
    int64_t MaxRows = M.Rows, MaxNnz = M.nnz();
    std::vector<int64_t> RowPtr(static_cast<size_t>(MaxRows + 1), 0);
    std::copy(M.RowPtr.begin(), M.RowPtr.end(), RowPtr.begin());
    Workloads.push_back(
        {"spmv", compileOrDie(spmvF77(MaxRows, MaxNnz), PO),
         [M, RowPtr, X](DataStore &S) {
           S.setInt("nRows", M.Rows);
           S.setIntArray("rowPtr", RowPtr);
           S.setIntArray("col", M.Col);
           S.setRealArray("val", M.Val);
           S.setRealArray("x", X);
         },
         64, "y",
         [M, Want](DataStore &S) {
           std::vector<double> Y = S.getRealArray("y");
           for (int64_t Row = 0; Row < M.Rows; ++Row)
             if (std::abs(Y[static_cast<size_t>(Row)] -
                          Want[static_cast<size_t>(Row)]) >= 1e-9)
               return false;
           return true;
         }});
  }

  TextTable T;
  T.setHeader({"workload", "bytecode s", "hostsimd s", "speedup",
               "steps", "util"});
  bool Ok = true;
  for (const Workload &W : Workloads) {
    bool ByteOk = true, HostOk = true;
    SimdRunResult ByteR = runOnce(W, Engine::Bytecode, &ByteOk);
    SimdRunResult HostR = runOnce(W, Engine::HostSimd, &HostOk);
    if (!sameStats(ByteR.Stats, HostR.Stats)) {
      std::fprintf(stderr,
                   "hostsimd: %s: engines disagree on model counters\n",
                   W.Name.c_str());
      Ok = false;
    }
    if (!ByteOk || !HostOk) {
      std::fprintf(stderr, "hostsimd: %s: wrong results (%s)\n",
                   W.Name.c_str(), !HostOk ? "hostsimd" : "bytecode");
      Ok = false;
    }

    double ByteS = Rep.timeSecondsMedian(
        [&] { runOnce(W, Engine::Bytecode, nullptr); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double HostS = Rep.timeSecondsMedian(
        [&] { runOnce(W, Engine::HostSimd, nullptr); }, /*Warmup=*/1,
        /*Repeats=*/5);
    double Speedup = HostS > 0.0 ? ByteS / HostS : 0.0;

    T.addRow({W.Name, formatf("%.4f", ByteS), formatf("%.4f", HostS),
              formatf("%.2fx", Speedup),
              std::to_string(HostR.Stats.WorkSteps),
              formatf("%.0f%%", 100.0 * HostR.Stats.workUtilization())});
    Rep.recordRunStats(W.Name, HostR.Stats);
    Rep.record(W.Name, "bytecode_wall_seconds", ByteS, "s",
               /*Gate=*/false);
    Rep.record(W.Name, "hostsimd_wall_seconds", HostS, "s",
               /*Gate=*/false);
    Rep.record(W.Name, "hostsimd_over_bytecode", Speedup, "ratio",
               /*Gate=*/false, bench::Direction::HigherIsBetter);
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\n%s (kernels: %s, width %d)\n",
              Ok ? "PASS: hostsimd matches bytecode on every model "
                   "counter and output"
                 : "FAIL: hostsimd diverges from bytecode",
              exec::hostSimdArch(), exec::hostSimdWidth());
  Rep.setPassed(Ok);
  return Rep.finish(Ok ? 0 : 1);
}
