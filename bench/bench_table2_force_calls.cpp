//===- bench/bench_table2_force_calls.cpp ----------------------*- C++ -*-===//
//
// Reproduces Table 2: the number of calls to the Force routine for the
// flattened (Lf) and unflattened (Lu, multiplied by the memory layer
// count Lrs, exactly as the paper normalizes) versions at different
// data granularities, and the Lu/Lf ratios, which must be bounded by
// the pCntmax/pCntavg ratios of Fig. 18 (Sec. 5.5).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "bench/NBForceHarness.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>
#include <vector>

using namespace simdflat;
using namespace simdflat::bench;

namespace {

/// A pruning (DECmpp-style) machine at granularity \p Gran; Table 2 is
/// granularity-driven, so one machine family suffices (the paper's
/// caption: "Gran is equal to P for the DECmpp and P/8 for the CM-2").
machine::MachineConfig machineAt(int64_t Gran) {
  return NBForceExperiment::decmpp(Gran);
}

} // namespace

int main(int argc, char **argv) {
  BenchReporter Rep("table2_force_calls", argc, argv);
  bool Quick = quickMode() || Rep.smoke();
  NBForceExperiment E;
  E.setEngine(Rep.engine());
  std::vector<double> Cutoffs =
      Quick ? std::vector<double>{4.0, 8.0}
            : std::vector<double>{4.0, 8.0, 12.0, 16.0};
  std::vector<int64_t> Grans =
      Quick
          ? std::vector<int64_t>{1024, 8192}
          : std::vector<int64_t>{128, 256, 512, 1024, 2048, 4096, 8192};
  Rep.meta("molecule", "synthetic-SOD");

  std::printf("Table 2: Force-routine call counts, unflattened (Lu, "
              "scaled by Lrs) vs flattened (Lf)\n\n");

  TextTable T;
  std::vector<std::string> Header = {"Gran"};
  for (double C : Cutoffs) {
    Header.push_back(formatf("Lu@%gA", C));
    Header.push_back(formatf("Lf@%gA", C));
    Header.push_back(formatf("Lu/Lf@%gA", C));
  }
  T.setHeader(Header);

  bool BoundHolds = true;
  for (int64_t G : Grans) {
    machine::MachineConfig M = machineAt(G);
    std::vector<std::string> Row = {std::to_string(G)};
    for (double C : Cutoffs) {
      NBRunResult U = E.run(LoopVersion::L1u, M, C);
      NBRunResult F = E.run(LoopVersion::Lf, M, C);
      double Ratio = static_cast<double>(U.ForceSteps) /
                     static_cast<double>(F.ForceSteps);
      Row.push_back(std::to_string(U.ForceSteps));
      Row.push_back(std::to_string(F.ForceSteps));
      Row.push_back(formatf("%.3f", Ratio));
      std::string Case = formatf("Gran=%lld/cutoff=%g",
                                 static_cast<long long>(G), C);
      Rep.record(Case + "/Lu", "force_calls",
                 static_cast<double>(U.ForceSteps), "calls");
      Rep.record(Case + "/Lf", "force_calls",
                 static_cast<double>(F.ForceSteps), "calls");
      Rep.record(Case, "lu_over_lf", Ratio, "ratio", /*Gate=*/true,
                 Direction::HigherIsBetter);
      const md::PairList &PL = E.pairlist(C);
      double MaxOverAvg =
          static_cast<double>(PL.maxPCnt()) / PL.avgPCnt();
      if (Ratio > MaxOverAvg + 1e-9)
        BoundHolds = false;
    }
    T.addRow(Row);
  }
  std::fputs(T.render().c_str(), stdout);

  std::printf("\npCntmax / pCntavg bounds (Sec. 5.5):\n");
  for (double C : Cutoffs) {
    const md::PairList &PL = E.pairlist(C);
    std::printf("  cutoff %4.1f A: max %5lld  avg %8.2f  max/avg %.3f\n",
                C, static_cast<long long>(PL.maxPCnt()), PL.avgPCnt(),
                static_cast<double>(PL.maxPCnt()) / PL.avgPCnt());
  }
  std::printf("\n%s\n",
              BoundHolds
                  ? "PASS: every Lu/Lf ratio is bounded by pCntmax/pCntavg"
                  : "FAIL: ratio bound violated");

  // At Gran >= N the paper's last row has Lu == Lf == pCntmax: one atom
  // per lane, so flattening cannot help (ratio 1).
  machine::MachineConfig M = machineAt(8192);
  for (double C : Cutoffs) {
    NBRunResult U = E.run(LoopVersion::L1u, M, C);
    NBRunResult F = E.run(LoopVersion::Lf, M, C);
    const md::PairList &PL = E.pairlist(C);
    std::printf("Gran 8192, cutoff %g A: Lu %lld Lf %lld pCntmax %lld "
                "(all three %s)\n",
                C, static_cast<long long>(U.ForceSteps),
                static_cast<long long>(F.ForceSteps),
                static_cast<long long>(PL.maxPCnt()),
                (U.ForceSteps == F.ForceSteps &&
                 F.ForceSteps == PL.maxPCnt())
                    ? "equal, as in the paper's last row"
                    : "differ: see EXPERIMENTS.md");
  }
  Rep.setPassed(BoundHolds);
  return Rep.finish(0);
}
