//===- bench/NBForceHarness.cpp -------------------------------*- C++ -*-===//

#include "bench/NBForceHarness.h"

#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "support/Error.h"

#include <cstdlib>

using namespace simdflat;
using namespace simdflat::bench;
using namespace simdflat::interp;
using namespace simdflat::md;

const char *bench::loopVersionName(LoopVersion V) {
  switch (V) {
  case LoopVersion::L1u:
    return "L1u";
  case LoopVersion::L2u:
    return "L2u";
  case LoopVersion::Lf:
    return "Lf";
  }
  SIMDFLAT_UNREACHABLE("bad LoopVersion");
}

bool bench::quickMode() { return std::getenv("SIMDFLAT_QUICK") != nullptr; }

NBForceExperiment::NBForceExperiment(int64_t NMax)
    : NMax(NMax), Mol(Molecule::syntheticSOD()) {}

const PairList &NBForceExperiment::pairlist(double Cutoff) {
  auto It = Pairlists.find(Cutoff);
  if (It != Pairlists.end())
    return It->second;
  PairList PL = buildPairList(Mol, Cutoff);
  PL.ensureMinOnePartner();
  return Pairlists.emplace(Cutoff, std::move(PL)).first->second;
}

const NBForceExperiment::CachedInputs &
NBForceExperiment::inputs(double Cutoff) {
  auto It = Inputs.find(Cutoff);
  if (It != Inputs.end())
    return It->second;
  const PairList &PL = pairlist(Cutoff);
  CachedInputs CI;
  CI.MaxP = PL.maxPCnt();
  CI.PCnt = PL.paddedPCnt(NMax);
  CI.Partners = PL.rectangularPartners(NMax, CI.MaxP);
  return Inputs.emplace(Cutoff, std::move(CI)).first->second;
}

double
NBForceExperiment::forceCostFor(const machine::MachineConfig &Machine) {
  // Calibration constants (see EXPERIMENTS.md): the 64-bit force
  // routine is many vector instructions on the CM-2's bit-serial PEs
  // behind FPAs, fewer on the DECmpp's 4-bit PEs, and ~1.4k cycles of
  // f77 code on the 28 Mips Sparc.
  if (Machine.Name == "CM-2")
    return 700.0;
  if (Machine.Name == "DECmpp-12000")
    return 250.0;
  return 1350.0; // Sparc-2
}

machine::MachineConfig NBForceExperiment::cm2(int64_t Processors) {
  machine::MachineConfig M = machine::MachineConfig::cm2(Processors);
  // Slicewise section-descriptor overhead per touched layer: large
  // enough that L1u's explicit 1:Lrs sections lose to L2u's whole-array
  // sweeps (Sec. 5.3 observes exactly that on the CM-2).
  M.Costs.LayerCheck = 450.0;
  return M;
}

machine::MachineConfig NBForceExperiment::decmpp(int64_t Processors) {
  machine::MachineConfig M = machine::MachineConfig::decmpp(Processors);
  // Cheap per-layer activity test: L1u wins whenever it actually prunes
  // layers, and loses slightly when Lrs == maxLrs.
  M.Costs.LayerCheck = 25.0;
  return M;
}

NBRunResult NBForceExperiment::run(LoopVersion Version,
                                   const machine::MachineConfig &Machine,
                                   double Cutoff) {
  const PairList &PL = pairlist(Cutoff);
  int64_t MaxP = PL.maxPCnt();

  ir::Program P = [&] {
    switch (Version) {
    case LoopVersion::L1u:
      return nbforceL1u(NMax, MaxP);
    case LoopVersion::L2u:
      return nbforceL2u(NMax, MaxP);
    case LoopVersion::Lf:
      return nbforceFlattenedSimd(NMax, MaxP, Machine.DataLayout);
    }
    SIMDFLAT_UNREACHABLE("bad LoopVersion");
  }();

  // L1u prunes to the active layers unless the virtual-processor model
  // sweeps everything anyway (CM-2, Sec. 5.3); L2u always sweeps the
  // declared maximum.
  int64_t Sweep = NMax;
  if (Version == LoopVersion::L1u && !Machine.VirtualProcessorSweep)
    Sweep = PL.numAtoms();
  int64_t LayersSwept = Machine.layersFor(Sweep);

  ExternRegistry Reg;
  bindForceExterns(Reg, Mol, forceCostFor(Machine),
                   Machine.Costs.LayerCheck *
                       static_cast<double>(LayersSwept));

  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  Opts.Eng = Eng;
  SimdInterp Interp(P, Machine, &Reg, Opts);
  const CachedInputs &CI = inputs(Cutoff);
  Interp.store().setInt("nAtoms", PL.numAtoms());
  Interp.store().setIntArray("pCnt", CI.PCnt);
  Interp.store().setIntArray("partners", CI.Partners);
  if (Interp.store().program().lookupVar("sweep"))
    Interp.store().setInt("sweep", Sweep);
  SimdRunResult R = Interp.run().value();

  NBRunResult Out;
  Out.Seconds = R.Stats.Seconds;
  Out.ForceSteps = R.Stats.WorkSteps;
  Out.Utilization = R.Stats.workUtilization();
  Out.CommAccesses = R.Stats.CommAccesses;
  return Out;
}

NBRunResult NBForceExperiment::runSparc(double Cutoff) {
  const PairList &PL = pairlist(Cutoff);
  int64_t MaxP = PL.maxPCnt();
  ir::Program P = nbforceF77(NMax, MaxP);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  ExternRegistry Reg;
  bindForceExterns(Reg, Mol, forceCostFor(M), 0.0);
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  Opts.Eng = Eng;
  ScalarInterp Interp(P, M, &Reg, Opts);
  setNBForceInputs(Interp.store(), PL, NMax, MaxP, NMax);
  ScalarRunResult R = Interp.run().value();
  NBRunResult Out;
  Out.Seconds = R.Stats.Seconds;
  Out.ForceSteps = R.Stats.WorkSteps;
  Out.Utilization = 1.0;
  return Out;
}
