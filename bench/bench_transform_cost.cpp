//===- bench/bench_transform_cost.cpp --------------------------*- C++ -*-===//
//
// google-benchmark measurement of the compile-time cost of the passes
// themselves (Sec. 6: "the transformation itself is relatively
// straightforward ... there are no parameters to adjust"): microseconds
// to flatten and SIMDize a loop nest, and how the cost scales with the
// number of nests in a program.
//
//===----------------------------------------------------------------------===//

#include "bench/GoogleBenchAdapter.h"
#include "transform/Flatten.h"
#include "transform/GuardIntro.h"
#include "transform/Normalize.h"
#include "transform/Simdize.h"
#include "workloads/PaperKernels.h"

#include <benchmark/benchmark.h>

#include "ir/Builder.h"

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

/// A program with \p Nests independent DOALL/DO nests.
Program makeManyNests(int64_t Nests) {
  Program P("many");
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {64}, Dist::Distributed);
  Builder B(P);
  for (int64_t N = 0; N < Nests; ++N) {
    // Built via append rather than operator+ to dodge a GCC 12 -O2
    // -Wrestrict false positive (PR105651).
    std::string Suffix = std::to_string(N);
    std::string I = "i";
    I += Suffix;
    std::string J = "j";
    J += Suffix;
    std::string X = "X";
    X += Suffix;
    P.addVar(I, ScalarKind::Int);
    P.addVar(J, ScalarKind::Int);
    P.addVar(X, ScalarKind::Int, {64, 64}, Dist::Distributed);
    Body Inner = Builder::body(B.assign(
        B.at(X, B.var(I), B.var(J)), B.mul(B.var(I), B.var(J))));
    Body Outer = Builder::body(
        B.doLoop(J, B.lit(1), B.at("L", B.var(I)), std::move(Inner)));
    P.body().push_back(B.doLoop(I, B.lit(1), B.var("K"),
                                std::move(Outer), nullptr,
                                /*IsParallel=*/true));
  }
  return P;
}

void BM_FlattenNest(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Program P = makeExample(paperExampleSpec());
    State.ResumeTiming();
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = true;
    FlattenResult R = flattenNest(P, Opts);
    benchmark::DoNotOptimize(R.Changed);
  }
}

void BM_Simdize(benchmark::State &State) {
  Program P = makeExample(paperExampleSpec());
  for (auto _ : State) {
    Program S = simdize(P);
    benchmark::DoNotOptimize(S.body().size());
  }
}

void BM_FullPipeline(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Program P = makeExample(paperExampleSpec());
    State.ResumeTiming();
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = true;
    Opts.DistributeOuter = machine::Layout::Cyclic;
    flattenNest(P, Opts);
    Program S = simdize(P);
    benchmark::DoNotOptimize(S.body().size());
  }
}

void BM_NormalizeAndGuards(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Program P = makeExample(paperExampleSpec());
    State.ResumeTiming();
    NormalizeOptions NOpts;
    NOpts.SkipParallel = false;
    normalizeLoops(P, NOpts);
    int N = introduceGuards(P);
    benchmark::DoNotOptimize(N);
  }
}

void BM_FlattenManyNests(benchmark::State &State) {
  int64_t Nests = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    Program P = makeManyNests(Nests);
    State.ResumeTiming();
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = true;
    // Flatten every nest in the program.
    int Flattened = 0;
    while (flattenNest(P, Opts).Changed)
      ++Flattened;
    benchmark::DoNotOptimize(Flattened);
  }
  State.SetItemsProcessed(State.iterations() * Nests);
}

} // namespace

BENCHMARK(BM_FlattenNest);
BENCHMARK(BM_Simdize);
BENCHMARK(BM_FullPipeline);
BENCHMARK(BM_NormalizeAndGuards);
BENCHMARK(BM_FlattenManyNests)->Arg(1)->Arg(8)->Arg(64);

int main(int argc, char **argv) {
  bench::BenchReporter Rep("transform_cost", argc, argv);
  return bench::runGoogleBenchmarks(Rep);
}
