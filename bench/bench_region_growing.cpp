//===- bench/bench_region_growing.cpp --------------------------*- C++ -*-===//
//
// The Sec. 1 motivating workload (Willebeek-LeMair & Reeves on the MPP):
// image region growing, where "the complexity of each iteration in the
// SIMD environment is dominated by the largest region". Region sizes
// come from a synthetic multi-seed BFS segmentation; the growth loops
// run through the full flattening pipeline.
//
//===----------------------------------------------------------------------===//

#include "analysis/Profitability.h"
#include "bench/BenchReporter.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"
#include "workloads/RegionGrow.h"

#include <algorithm>
#include <cstdio>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int main(int argc, char **argv) {
  bench::BenchReporter Rep("region_growing", argc, argv);
  RegionGrowSpec Spec;
  std::vector<int64_t> Sizes = regionSizes(Spec);
  Rep.meta("n_regions", Spec.NumRegions);
  int64_t MaxSize = *std::max_element(Sizes.begin(), Sizes.end());
  Summary S;
  for (int64_t V : Sizes)
    S.add(static_cast<double>(V));
  std::printf("Region growing: %lldx%lld image, %lld regions; region "
              "sizes min %.0f avg %.1f max %.0f\n\n",
              static_cast<long long>(Spec.Width),
              static_cast<long long>(Spec.Height),
              static_cast<long long>(Spec.NumRegions), S.min(), S.mean(),
              S.max());

  TextTable T;
  T.setHeader({"lanes", "unflat steps", "flat steps", "speedup",
               "Eq.2 predict", "Eq.1 predict"});
  bool AllMatch = true;
  std::vector<int64_t> LaneGrid = Rep.smoke()
                                      ? std::vector<int64_t>{8, 16}
                                      : std::vector<int64_t>{8, 16, 48};
  for (int64_t Lanes : LaneGrid) {
    machine::MachineConfig M;
    M.Name = "simd";
    M.Processors = Lanes;
    M.Gran = Lanes;
    M.DataLayout = machine::Layout::Cyclic;
    RunOptions Opts;
    Opts.WorkTargets = {"GROWN"};
    Opts.Eng = Rep.engine();

    Program PU = regionGrowF77(Spec.NumRegions, MaxSize);
    transform::SimdizeOptions SOpts;
    SOpts.DoAllLayout = machine::Layout::Cyclic;
    Program SU = transform::simdize(PU, SOpts);
    SimdInterp IU(SU, M, nullptr, Opts);
    IU.store().setInt("nRegions", Spec.NumRegions);
    IU.store().setIntArray("SIZE", Sizes);
    SimdRunResult RU = IU.run().value();

    Program PF = regionGrowF77(Spec.NumRegions, MaxSize);
    transform::FlattenOptions FOpts;
    FOpts.AssumeInnerMinOneTrip = true;
    FOpts.DistributeOuter = machine::Layout::Cyclic;
    transform::flattenNest(PF, FOpts);
    Program SF = transform::simdize(PF);
    SimdInterp IF_(SF, M, nullptr, Opts);
    IF_.store().setInt("nRegions", Spec.NumRegions);
    IF_.store().setIntArray("SIZE", Sizes);
    SimdRunResult RF = IF_.run().value();

    ProfitEstimate E =
        estimateProfit(Sizes, Lanes, machine::Layout::Cyclic);
    AllMatch &= RU.Stats.WorkSteps == E.UnflattenedSteps &&
                RF.Stats.WorkSteps == E.FlattenedSteps;
    T.addRow({std::to_string(Lanes),
              std::to_string(RU.Stats.WorkSteps),
              std::to_string(RF.Stats.WorkSteps),
              formatf("%.2fx", static_cast<double>(RU.Stats.WorkSteps) /
                                   static_cast<double>(RF.Stats.WorkSteps)),
              std::to_string(E.UnflattenedSteps),
              std::to_string(E.FlattenedSteps)});
    std::string Case = formatf("lanes=%lld", static_cast<long long>(Lanes));
    Rep.recordRunStats(Case + "/unflattened", RU.Stats);
    Rep.recordRunStats(Case + "/flattened", RF.Stats);
    Rep.record(Case, "step_speedup",
               static_cast<double>(RU.Stats.WorkSteps) /
                   static_cast<double>(RF.Stats.WorkSteps),
               "ratio", /*Gate=*/true, bench::Direction::HigherIsBetter);
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\n%s\n", AllMatch ? "PASS: simulated step counts equal the "
                                   "Eq. 1/Eq. 2 closed forms"
                                 : "FAIL: prediction mismatch");
  Rep.setPassed(AllMatch);
  return Rep.finish(AllMatch ? 0 : 1);
}
