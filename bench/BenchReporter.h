//===- bench/BenchReporter.h - Shared bench telemetry ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared observability layer for every bench_* binary. Each bench
/// keeps printing its human-readable table, and additionally:
///
///   --json=<path>  write a machine-readable BENCH_<name>.json with all
///                  recorded metrics (schema: simdflat-bench-v1);
///   --smoke        run a reduced grid (CI-sized), also implied by the
///                  legacy SIMDFLAT_QUICK environment variable.
///
/// Metrics are keyed (case, metric) and carry a `gate` flag: gated
/// metrics are deterministic model outputs (steps, model cycles/seconds,
/// utilization, force calls) that tools/perf_compare diffs across
/// commits and fails on >10% regressions; ungated metrics (wall-clock
/// times) ride along for trend plots but never gate, since CI hardware
/// varies. Wall-clock numbers come from steady_clock with warmup +
/// median-of-N so one descheduled run cannot pollute the trajectory.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_BENCH_BENCHREPORTER_H
#define SIMDFLAT_BENCH_BENCHREPORTER_H

#include "interp/RunStats.h"
#include "native/FlattenedLoop.h"
#include "support/Json.h"

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace simdflat {
namespace bench {

/// Whether a metric improves by going down (times, steps) or up
/// (utilization, speedups).
enum class Direction { LowerIsBetter, HigherIsBetter };

/// One recorded data point.
struct BenchMetric {
  /// Which configuration, e.g. "cm2/P=8192/cutoff=8/Lf".
  std::string Case;
  /// Which quantity, e.g. "model_seconds", "work_steps".
  std::string Metric;
  double Value = 0.0;
  /// Display unit ("s", "steps", "ratio", ...; informational).
  std::string Unit;
  /// Deterministic model output -> perf_compare gates regressions on it.
  bool Gate = true;
  Direction Better = Direction::LowerIsBetter;
};

/// Per-binary telemetry collector. Construct it first thing in main()
/// with argv; it consumes --json/--smoke (leaving everything else for
/// the bench, e.g. google-benchmark flags) and writes the JSON file in
/// finish().
class BenchReporter {
public:
  /// \p BenchName is the binary's short name ("table1_runtime"); the
  /// default JSON filename is BENCH_<BenchName>.json.
  BenchReporter(std::string BenchName, int Argc, char **Argv);

  /// Reduced-grid mode: --smoke or SIMDFLAT_QUICK.
  bool smoke() const { return Smoke; }

  /// Interpreter engine selected by --engine=tree|bytecode|hostsimd
  /// (default bytecode). Benches copy this into RunOptions::Eng; the
  /// value is also written to meta.engine so perf_compare can refuse to
  /// diff runs from different engines.
  interp::Engine engine() const { return Eng; }

  /// Pins the engine tag for benches whose backend is fixed by
  /// construction (e.g. bench_hostsimd) rather than user-selectable;
  /// call before finish() so meta.engine matches what actually ran.
  void setEngine(interp::Engine E) { Eng = E; }

  /// argc/argv with the reporter's own flags removed (argv[0] kept).
  int argc() const { return static_cast<int>(Args.size()); }
  char **argv() { return Args.data(); }

  /// Free-form run metadata (grid sizes, machine names, ...).
  void meta(const std::string &Key, const std::string &Value);
  void meta(const std::string &Key, int64_t Value);

  /// Records one data point.
  void record(const std::string &Case, const std::string &Metric,
              double Value, const std::string &Unit = "",
              bool Gate = true,
              Direction Better = Direction::LowerIsBetter);

  /// Expands interpreter counters into the standard metric set
  /// (work_steps, instructions, cycles, model_seconds, comm_accesses,
  /// work_utilization), all gated.
  void recordRunStats(const std::string &Case, const interp::RunStats &S);

  /// Expands native-driver lane accounting (steps, active/total lane
  /// slots, utilization), all gated.
  void recordLaneStats(const std::string &Case,
                       const native::LaneStats &S);

  /// Expands a per-nest trip histogram into trip_hist_* counters
  /// (samples, sum, max, mean plus occupied buckets). Histogram shape
  /// describes the workload's input distribution, not the build's
  /// performance, so every counter is recorded ungated - and
  /// perf_compare additionally refuses to gate on the trip_hist_ prefix
  /// even if a producer marks one gated.
  void recordTripHistogram(const std::string &Case,
                           const interp::TripHistogram &H);

  /// Wall-clock of \p Fn via steady_clock: \p Warmup untimed calls,
  /// then the median of \p Repeats timed calls, in seconds. Smoke mode
  /// clamps to one warmup and one repeat.
  double timeSecondsMedian(const std::function<void()> &Fn,
                           int Warmup = 1, int Repeats = 5);

  /// timeSecondsMedian + record as an ungated "wall_seconds" metric.
  double recordWallTime(const std::string &Case,
                        const std::function<void()> &Fn, int Warmup = 1,
                        int Repeats = 5);

  /// The bench's own PASS/FAIL verdict (recorded into the JSON).
  void setPassed(bool P) { Passed = P; }

  const std::vector<BenchMetric> &metrics() const { return Metrics; }

  /// The full document (schema simdflat-bench-v1).
  json::Value toJson() const;

  /// Appends total_wall_seconds, writes the JSON file when --json was
  /// given, and returns \p ExitCode (or 2 when the write failed).
  /// Call as `return R.finish(Code);` at the end of main().
  int finish(int ExitCode);

private:
  std::string BenchName;
  std::string JsonPath; // empty: do not write
  interp::Engine Eng = interp::Engine::Bytecode;
  bool Smoke = false;
  bool Passed = true;
  bool Finished = false;
  std::vector<char *> Args;
  std::vector<std::pair<std::string, json::Value>> Meta;
  std::vector<BenchMetric> Metrics;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bench
} // namespace simdflat

#endif // SIMDFLAT_BENCH_BENCHREPORTER_H
