//===- bench/bench_table1_runtime.cpp --------------------------*- C++ -*-===//
//
// Reproduces Table 1: NBFORCE running times (model seconds) on the CM-2
// and DECmpp 12000 machine models for the unflattened (L1u, L2u) and
// flattened (Lf) loop versions, across machine sizes and cutoff radii,
// plus the Sparc-2 sequential reference quoted in Sec. 5.5.
//
// Set SIMDFLAT_QUICK=1 for a reduced grid.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "bench/NBForceHarness.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>
#include <vector>

using namespace simdflat;
using namespace simdflat::bench;

int main(int argc, char **argv) {
  BenchReporter Rep("table1_runtime", argc, argv);
  bool Quick = quickMode() || Rep.smoke();
  NBForceExperiment E;
  E.setEngine(Rep.engine());
  std::vector<double> Cutoffs =
      Quick ? std::vector<double>{4.0, 8.0}
            : std::vector<double>{4.0, 8.0, 12.0, 16.0};
  std::vector<int64_t> Procs = Quick
                                   ? std::vector<int64_t>{8192}
                                   : std::vector<int64_t>{1024, 2048, 4096,
                                                          8192};
  Rep.meta("molecule", "synthetic-SOD");
  Rep.meta("n_atoms", int64_t{6968});

  std::printf("Table 1: NBFORCE running times (model seconds) for the "
              "synthetic SOD molecule (N = 6968)\n");
  std::printf("L1u: unflattened, selecting memory layers; L2u: "
              "unflattened, all layers; Lf: flattened\n\n");

  TextTable T;
  std::vector<std::string> Header = {"machine", "P/Gran"};
  for (double C : Cutoffs)
    for (const char *V : {"L1u", "L2u", "Lf"})
      Header.push_back(formatf("%s@%gA", V, C));
  T.setHeader(Header);

  auto AddRows = [&](const char *Label, bool IsCm2) {
    for (int64_t P : Procs) {
      machine::MachineConfig M = IsCm2 ? NBForceExperiment::cm2(P)
                                       : NBForceExperiment::decmpp(P);
      std::vector<std::string> Row = {
          Label, formatf("%lld/%lld", static_cast<long long>(P),
                         static_cast<long long>(M.Gran))};
      for (double C : Cutoffs) {
        for (LoopVersion V :
             {LoopVersion::L1u, LoopVersion::L2u, LoopVersion::Lf}) {
          NBRunResult R = E.run(V, M, C);
          Row.push_back(formatf("%.3f", R.Seconds));
          Rep.record(formatf("%s/P=%lld/cutoff=%g/%s", Label,
                             static_cast<long long>(P), C,
                             loopVersionName(V)),
                     "model_seconds", R.Seconds, "s");
        }
      }
      T.addRow(Row);
    }
    T.addSeparator();
  };

  AddRows("CM-2", /*IsCm2=*/true);
  AddRows("DECmpp", /*IsCm2=*/false);
  std::fputs(T.render().c_str(), stdout);

  // Sparc reference (the paper reports 4 A and 8 A only; larger cutoffs
  // exceeded the workstation's memory in 1992).
  std::printf("\nSparc-2 sequential reference:\n");
  for (double C : Cutoffs) {
    if (C > 8.0 && Quick)
      continue;
    NBRunResult R = E.runSparc(C);
    std::printf("  cutoff %4.1f A: %8.2f s (%lld force calls)\n", C,
                R.Seconds, static_cast<long long>(R.ForceSteps));
    Rep.record(formatf("sparc2/cutoff=%g", C), "model_seconds",
               R.Seconds, "s");
    Rep.record(formatf("sparc2/cutoff=%g", C), "force_calls",
               static_cast<double>(R.ForceSteps), "calls");
  }
  // Wall-clock of one representative simulated run (ungated; tracks
  // simulator speed, not model output).
  machine::MachineConfig WallM = NBForceExperiment::cm2(8192);
  Rep.recordWallTime("wall/cm2/P=8192/cutoff=8/Lf", [&] {
    E.run(LoopVersion::Lf, WallM, 8.0);
  });

  // Shape checks mirroring the paper's findings. The DECmpp 8192 row is
  // the degenerate Gran >= N case (one atom per lane): there is nothing
  // to flatten, and the paper's own numbers there are a near-tie.
  std::printf("\nShape checks (Gran < N rows):\n");
  bool AllGood = true;
  for (double C : Cutoffs) {
    machine::MachineConfig Cm = NBForceExperiment::cm2(8192);
    machine::MachineConfig Dm = NBForceExperiment::decmpp(1024);
    for (const machine::MachineConfig &M : {Cm, Dm}) {
      double L1 = E.run(LoopVersion::L1u, M, C).Seconds;
      double L2 = E.run(LoopVersion::L2u, M, C).Seconds;
      double Lf = E.run(LoopVersion::Lf, M, C).Seconds;
      bool FlattenedWins = Lf < L1 && Lf < L2;
      std::printf("  %-13s %4.1f A: flattened %s (L1u %.3f, L2u %.3f, "
                  "Lf %.3f)\n",
                  M.Name.c_str(), C, FlattenedWins ? "wins " : "LOSES",
                  L1, L2, Lf);
      AllGood = AllGood && FlattenedWins;
    }
  }
  std::printf("%s\n", AllGood ? "PASS: flattening wins wherever Gran < N, "
                                "as in the paper"
                              : "NOTE: see EXPERIMENTS.md");
  Rep.setPassed(AllGood);
  return Rep.finish(0);
}
