//===- bench/NBForceHarness.h - Shared Table 1/2, Fig. 19 driver *- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared experiment driver for the NBFORCE evaluation (Sec. 5): builds
/// the synthetic SOD molecule once, caches pairlists per cutoff, runs
/// the three loop versions (L1u, L2u, Lf) on a machine model, and
/// returns seconds + Force-step counts. Used by bench_table1_runtime,
/// bench_table2_force_calls and bench_fig19_scaling.
///
/// Machine calibration (documented in EXPERIMENTS.md): per-machine
/// Force-routine cycle costs and layer-check costs are single constants
/// chosen so the simulated seconds land in the paper's magnitude range;
/// every *relative* effect (who wins, crossovers, scaling) comes out of
/// the machine model, not the calibration.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_BENCH_NBFORCEHARNESS_H
#define SIMDFLAT_BENCH_NBFORCEHARNESS_H

#include "interp/RunStats.h"
#include "machine/Machine.h"
#include "md/NBForce.h"

#include <map>
#include <vector>
#include <string>

namespace simdflat {
namespace bench {

/// The three measured loop versions of Table 1.
enum class LoopVersion { L1u, L2u, Lf };

const char *loopVersionName(LoopVersion V);

/// One simulated run.
struct NBRunResult {
  double Seconds = 0.0;
  /// Vector steps that invoked the Force routine (Table 2's counts).
  int64_t ForceSteps = 0;
  /// Lane utilization over force steps.
  double Utilization = 0.0;
  int64_t CommAccesses = 0;
};

/// Cached-molecule experiment driver.
class NBForceExperiment {
public:
  /// \p NMax mirrors the paper's compile-time maximum problem size.
  explicit NBForceExperiment(int64_t NMax = 8192);

  const md::Molecule &molecule() const { return Mol; }
  int64_t nmax() const { return NMax; }

  /// Pairlist for \p Cutoff (built once, min-one-partner enforced).
  const md::PairList &pairlist(double Cutoff);

  /// Interpreter engine every run uses (default bytecode). Benches
  /// forward BenchReporter::engine() so --engine=tree selects the
  /// tree-walk reference.
  void setEngine(interp::Engine E) { Eng = E; }

  /// Runs \p Version on \p Machine at \p Cutoff.
  NBRunResult run(LoopVersion Version,
                  const machine::MachineConfig &Machine, double Cutoff);

  /// Runs the sequential kernel on the Sparc-2 model.
  NBRunResult runSparc(double Cutoff);

  /// Per-machine Force-routine cost in cycles (calibration constants).
  static double forceCostFor(const machine::MachineConfig &Machine);

  /// CM-2 and DECmpp models with the layer-check calibration applied.
  static machine::MachineConfig cm2(int64_t Processors);
  static machine::MachineConfig decmpp(int64_t Processors);

private:
  struct CachedInputs {
    std::vector<int64_t> PCnt;
    std::vector<int64_t> Partners;
    int64_t MaxP = 0;
  };
  const CachedInputs &inputs(double Cutoff);

  int64_t NMax;
  interp::Engine Eng = interp::Engine::Bytecode;
  md::Molecule Mol;
  std::map<double, md::PairList> Pairlists;
  std::map<double, CachedInputs> Inputs;
};

/// True when the SIMDFLAT_QUICK environment variable requests reduced
/// parameter grids.
bool quickMode();

} // namespace bench
} // namespace simdflat

#endif // SIMDFLAT_BENCH_NBFORCEHARNESS_H
