//===- bench/bench_coalesce_vs_flatten.cpp ---------------------*- C++ -*-===//
//
// Sec. 7 related work: loop coalescing (Polychronopoulos '87) vs loop
// flattening. Coalescing achieves perfect load balance by repartitioning
// the iteration space - but needs an O(total) inspector and moves
// iterations away from the data's owners (communication!), whereas
// flattening keeps each processor's iterations and only changes WHEN
// they run ("it does not change which loop iterations a processor
// executes. Instead, it gives it more freedom as to when").
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"
#include "interp/SimdInterp.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Coalesce.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"
#include "workloads/PaperKernels.h"
#include "workloads/TripCounts.h"

#include <cstdio>
#include <numeric>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

int main(int argc, char **argv) {
  bench::BenchReporter Rep("coalesce_vs_flatten", argc, argv);
  ExampleSpec Spec;
  Spec.K = Rep.smoke() ? 256 : 1024;
  Spec.L = generateTripCounts(TripDist::Geometric, Spec.K, 12, 41);
  int64_t Total =
      std::accumulate(Spec.L.begin(), Spec.L.end(), int64_t{0});
  Rep.meta("rows", Spec.K);
  Rep.meta("total_iters", Total);
  std::printf("EXAMPLE with K = %lld rows, %lld total inner iterations "
              "(geometric trip counts)\n\n",
              static_cast<long long>(Spec.K),
              static_cast<long long>(Total));

  TextTable T;
  T.setHeader({"lanes", "version", "work steps", "comm accesses",
               "extra memory"});
  for (int64_t Lanes : {32, 128}) {
    machine::MachineConfig M;
    M.Name = "simd";
    M.Processors = Lanes;
    M.Gran = Lanes;
    M.DataLayout = machine::Layout::Cyclic;
    RunOptions Opts;
    Opts.WorkTargets = {"X"};
    Opts.Eng = Rep.engine();

    auto Run = [&](Program &Simd) {
      SimdInterp Interp(Simd, M, nullptr, Opts);
      Interp.store().setInt("K", Spec.K);
      Interp.store().setIntArray("L", Spec.L);
      return Interp.run().value();
    };

    // Unflattened baseline.
    Program PU = makeExample(Spec);
    transform::SimdizeOptions SOpts;
    SOpts.DoAllLayout = machine::Layout::Cyclic;
    Program SU = transform::simdize(PU, SOpts);
    SimdRunResult RU = Run(SU);

    // Flattened.
    Program PF = makeExample(Spec);
    transform::FlattenOptions FOpts;
    FOpts.AssumeInnerMinOneTrip = true;
    FOpts.DistributeOuter = machine::Layout::Cyclic;
    transform::flattenNest(PF, FOpts);
    Program SF = transform::simdize(PF);
    SimdRunResult RF = Run(SF);

    // Coalesced (inspector/executor).
    Program PC = makeExample(Spec);
    transform::CoalesceResult CR =
        transform::coalesceNest(PC, Spec.K, Total);
    if (!CR.Changed) {
      std::printf("coalescing failed: %s\n", CR.Reason.c_str());
      Rep.setPassed(false);
      return Rep.finish(1);
    }
    Program SC = transform::simdize(PC, SOpts);
    SimdRunResult RC = Run(SC);

    T.addRow({std::to_string(Lanes), "unflattened",
              std::to_string(RU.Stats.WorkSteps),
              std::to_string(RU.Stats.CommAccesses), "0"});
    T.addRow({"", "flattened", std::to_string(RF.Stats.WorkSteps),
              std::to_string(RF.Stats.CommAccesses), "0"});
    T.addRow({"", "coalesced", std::to_string(RC.Stats.WorkSteps),
              std::to_string(RC.Stats.CommAccesses),
              formatf("%lld words", static_cast<long long>(
                                        Total + Spec.K + 1))});
    T.addSeparator();
    std::string Case = formatf("lanes=%lld", static_cast<long long>(Lanes));
    Rep.recordRunStats(Case + "/unflattened", RU.Stats);
    Rep.recordRunStats(Case + "/flattened", RF.Stats);
    Rep.recordRunStats(Case + "/coalesced", RC.Stats);
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf(
      "\nReading: coalescing reaches the balanced ceil(total/P) step "
      "count, but pays inspector memory and per-access communication; "
      "flattening reaches the owner-computes optimum (Eq. 1) with "
      "neither.\n");
  Rep.setPassed(true);
  return Rep.finish(0);
}
