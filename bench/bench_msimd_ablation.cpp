//===- bench/bench_msimd_ablation.cpp --------------------------*- C++ -*-===//
//
// Sec. 7 contrast: Philippsen & Tichy propose *hardware* relief for the
// SIMD control-flow restriction - an MSIMD machine with multiple program
// counters (lane clusters that branch independently). This ablation
// computes, on the NBFORCE workload, how many program counters such a
// machine would need before it matches what loop flattening achieves in
// *software* on a single program counter (flattening reaches the G = P
// limit, i.e. the MIMD bound, by construction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Profitability.h"
#include "bench/BenchReporter.h"
#include "md/PairList.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::md;

int main(int argc, char **argv) {
  bench::BenchReporter Rep("msimd_ablation", argc, argv);
  Molecule Mol = Molecule::syntheticSOD();
  PairList PL = buildPairList(Mol, 8.0);
  PL.ensureMinOnePartner();
  const int64_t Lanes = 1024;
  machine::Layout Lay = machine::Layout::Cyclic;

  ProfitEstimate E = estimateProfit(PL.PCnt, Lanes, Lay);
  std::printf("MSIMD ablation: NBFORCE pCnt at 8 A, %lld lanes (cyclic)\n"
              "flattened SIMD (1 program counter): %lld steps\n\n",
              static_cast<long long>(Lanes),
              static_cast<long long>(E.FlattenedSteps));

  TextTable T;
  T.setHeader({"program counters", "MSIMD steps", "vs flattened"});
  int64_t NeededCounters = -1;
  for (int64_t G = 1; G <= Lanes; G *= 4) {
    int64_t Steps = estimateMsimdSteps(PL.PCnt, Lanes, G, Lay);
    double Ratio = static_cast<double>(Steps) /
                   static_cast<double>(E.FlattenedSteps);
    if (NeededCounters < 0 && Ratio <= 1.05)
      NeededCounters = G;
    T.addRow({std::to_string(G), std::to_string(Steps),
              formatf("%.2fx", Ratio)});
    Rep.record(formatf("G=%lld", static_cast<long long>(G)),
               "msimd_steps", static_cast<double>(Steps), "steps");
  }
  Rep.record("flattened", "steps",
             static_cast<double>(E.FlattenedSteps), "steps");
  std::fputs(T.render().c_str(), stdout);

  bool Sane =
      estimateMsimdSteps(PL.PCnt, Lanes, 1, Lay) == E.UnflattenedSteps &&
      estimateMsimdSteps(PL.PCnt, Lanes, Lanes, Lay) == E.FlattenedSteps;
  std::printf("\nG = 1 equals the unflattened SIMD schedule (Eq. 2) and "
              "G = P equals the MIMD bound (Eq. 1): %s\n",
              Sane ? "verified" : "VIOLATED");
  if (NeededCounters > 0) {
    std::printf("An MSIMD machine needs ~%lld program counters to come "
                "within 5%% of software loop flattening on one.\n",
                static_cast<long long>(NeededCounters));
    Rep.record("total", "counters_to_match_flattening",
               static_cast<double>(NeededCounters), "pcs");
  }
  std::printf("%s\n", Sane ? "PASS" : "FAIL");
  Rep.setPassed(Sane);
  return Rep.finish(Sane ? 0 : 1);
}
