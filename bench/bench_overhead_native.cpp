//===- bench/bench_overhead_native.cpp -------------------------*- C++ -*-===//
//
// google-benchmark measurement of the Sec. 6 profitability claim on a
// modern CPU: "the additional overhead caused by loop flattening is, in
// the worst case, to manipulate two flags and to perform two conditional
// jumps" per iteration. Compares, per body execution:
//
//   nested     - the plain two-level nest;
//   flattened  - the fused single loop (paper's overhead budget);
//   padded<8>  - the unflattened masked lane schedule (Eq. 2 slots);
//   flatlane<8>- the flattened lane schedule (Eq. 1 slots).
//
// The first pair shows the overhead is a few cycles; the second pair
// shows the step-count savings under lane masking.
//
//===----------------------------------------------------------------------===//

#include "bench/GoogleBenchAdapter.h"
#include "native/FlattenedLoop.h"
#include "workloads/TripCounts.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace simdflat;
using namespace simdflat::native;
using namespace simdflat::workloads;

namespace {

constexpr int64_t N = 4096;
constexpr int64_t Mean = 12;

struct Workload {
  std::vector<int64_t> Trips;
  std::vector<double> Data;
  int64_t Total = 0;

  explicit Workload(TripDist D) {
    Trips = generateTripCounts(D, N, Mean, 123);
    for (int64_t T : Trips)
      Total += T;
    Data.assign(static_cast<size_t>(N), 1.0);
  }
};

/// A small but non-trivial body: accumulate into the row's slot.
struct RowAccumulate {
  std::vector<double> &Data;
  void operator()(int64_t O, int64_t I) const {
    Data[static_cast<size_t>(O)] += 1.0 / static_cast<double>(I + 1);
  }
};

void BM_Nested(benchmark::State &State, TripDist D) {
  Workload W(D);
  auto T = [&W](int64_t O) { return W.Trips[static_cast<size_t>(O)]; };
  for (auto _ : State) {
    nestedForEach(N, T, RowAccumulate{W.Data});
    benchmark::DoNotOptimize(W.Data.data());
  }
  State.SetItemsProcessed(State.iterations() * W.Total);
}

void BM_FlattenedScalar(benchmark::State &State, TripDist D) {
  Workload W(D);
  auto T = [&W](int64_t O) { return W.Trips[static_cast<size_t>(O)]; };
  for (auto _ : State) {
    flattenedScalar(N, T, RowAccumulate{W.Data});
    benchmark::DoNotOptimize(W.Data.data());
  }
  State.SetItemsProcessed(State.iterations() * W.Total);
}

void BM_PaddedLanes(benchmark::State &State, TripDist D) {
  Workload W(D);
  auto T = [&W](int64_t O) { return W.Trips[static_cast<size_t>(O)]; };
  int64_t Slots = 0;
  for (auto _ : State) {
    LaneStats S = paddedForEach<8>(N, T, RowAccumulate{W.Data});
    Slots = S.TotalLaneSlots;
    benchmark::DoNotOptimize(W.Data.data());
  }
  State.counters["lane_slots"] =
      benchmark::Counter(static_cast<double>(Slots));
  State.SetItemsProcessed(State.iterations() * W.Total);
}

void BM_FlattenedLanes(benchmark::State &State, TripDist D) {
  Workload W(D);
  auto T = [&W](int64_t O) { return W.Trips[static_cast<size_t>(O)]; };
  int64_t Slots = 0;
  for (auto _ : State) {
    LaneStats S = flattenedForEach<8>(N, T, RowAccumulate{W.Data});
    Slots = S.TotalLaneSlots;
    benchmark::DoNotOptimize(W.Data.data());
  }
  State.counters["lane_slots"] =
      benchmark::Counter(static_cast<double>(Slots));
  State.SetItemsProcessed(State.iterations() * W.Total);
}

} // namespace

BENCHMARK_CAPTURE(BM_Nested, geometric, TripDist::Geometric);
BENCHMARK_CAPTURE(BM_FlattenedScalar, geometric, TripDist::Geometric);
BENCHMARK_CAPTURE(BM_PaddedLanes, geometric, TripDist::Geometric);
BENCHMARK_CAPTURE(BM_FlattenedLanes, geometric, TripDist::Geometric);

BENCHMARK_CAPTURE(BM_Nested, constant, TripDist::Constant);
BENCHMARK_CAPTURE(BM_FlattenedScalar, constant, TripDist::Constant);

BENCHMARK_CAPTURE(BM_PaddedLanes, bimodal, TripDist::Bimodal);
BENCHMARK_CAPTURE(BM_FlattenedLanes, bimodal, TripDist::Bimodal);

int main(int argc, char **argv) {
  bench::BenchReporter Rep("overhead_native", argc, argv);
  Rep.meta("rows", N);
  Rep.meta("mean_trips", Mean);
  return bench::runGoogleBenchmarks(Rep);
}
